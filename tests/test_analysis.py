"""Tests for metrics and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    area_overhead,
    compare,
    figure6_report,
    format_table,
    gradient_reduction,
    percent,
    table1_report,
    temperature_reduction,
    timing_overhead,
    wirelength_overhead,
)
from repro.flow import StrategyOutcome
from repro.thermal import ThermalMap
from repro.timing import TimingReport


def _map(peak, ambient=25.0):
    temps = np.full((4, 4), ambient + 1.0)
    temps[2, 2] = peak
    return ThermalMap(temperatures=temps, ambient=ambient)


class TestMetrics:
    def test_temperature_reduction(self):
        assert temperature_reduction(_map(45.0), _map(41.0)) == pytest.approx(0.2)

    def test_gradient_reduction(self):
        base = _map(45.0)
        flat = ThermalMap(np.full((4, 4), 35.0), ambient=25.0)
        assert gradient_reduction(base, flat) == pytest.approx(1.0)
        assert gradient_reduction(flat, flat) == 0.0

    def test_area_overhead(self, small_placement):
        from repro.core import apply_default_spread

        spread = apply_default_spread(small_placement, 0.2, use_quadratic=False,
                                      detailed=False, add_fillers=False)
        assert area_overhead(small_placement, spread.placement) == pytest.approx(
            spread.actual_overhead
        )

    def test_timing_overhead(self):
        base = TimingReport(500.0, 1000.0, 500.0, None, 3)
        slower = TimingReport(510.0, 1000.0, 490.0, None, 3)
        assert timing_overhead(base, slower) == pytest.approx(0.02)

    def test_wirelength_overhead_zero_for_same_placement(self, small_placement):
        assert wirelength_overhead(small_placement, small_placement) == pytest.approx(0.0)

    def test_compare_bundles_everything(self, small_placement):
        base_map = _map(45.0)
        new_map = _map(43.0)
        metrics = compare(small_placement, base_map, small_placement, new_map)
        assert metrics.temperature_reduction == pytest.approx(0.1)
        assert metrics.area_overhead == pytest.approx(0.0)
        assert metrics.timing_overhead is None
        flat = metrics.as_dict()
        assert np.isnan(flat["timing_overhead"])
        assert flat["peak_rise_baseline"] == pytest.approx(20.0)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all(line.startswith("|") for line in lines[1:])
        assert len(set(len(line) for line in lines[1:])) == 1

    def test_percent(self):
        assert percent(0.161) == "16.1%"
        assert percent(0.2035, digits=2) == "20.35%"

    def _outcome(self, strategy, overhead, reduction, rows=0):
        return StrategyOutcome(
            strategy=strategy,
            requested_overhead=overhead,
            actual_overhead=overhead,
            temperature_reduction=reduction,
            peak_rise=15.0,
            gradient=2.0,
            timing_overhead=0.01,
            inserted_rows=rows,
            core_width=200.0,
            core_height=210.0,
            num_fillers=100,
        )

    def test_figure6_report_contains_all_strategies(self):
        outcomes = [
            self._outcome("default", 0.16, 0.11),
            self._outcome("eri", 0.16, 0.12, rows=20),
            self._outcome("hw", 0.16, 0.115),
        ]
        text = figure6_report(outcomes)
        assert "default" in text and "eri" in text and "hw" in text
        assert "16.0%" in text
        assert "12.0%" in text

    def test_table1_report_rows(self):
        outcomes = [
            self._outcome("default", 0.161, 0.113),
            self._outcome("eri", 0.161, 0.131, rows=20),
        ]
        text = table1_report(outcomes)
        assert "concentrated hotspot" in text.lower()
        assert "200 x 210" in text
        assert "20" in text
