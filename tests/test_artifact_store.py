"""ArtifactStore unit tests: tiers, LRU bounds, and disk corruption.

The on-disk tier must be paranoid: any entry whose payload fails the
sha256 integrity check — truncated, bit-flipped, garbage, or written by
something else entirely — is detected, deleted, reported as a miss, and
transparently recomputed by the flow graph.  Nothing may ever unpickle a
damaged payload.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.flow import ArtifactStore, FlowGraph
from repro.flow.artifacts import _MAGIC


def _entry_path(store: ArtifactStore, stage: str, key: str):
    return store.root / stage / f"{key}.art"


class TestMemoryTier:
    def test_round_trip_and_counters(self):
        store = ArtifactStore()
        assert store.get("synth", "k1") is None
        store.put("synth", "k1", {"value": 1})
        assert store.get("synth", "k1") == {"value": 1}
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.disk_hits == 0
        assert len(store) == 1
        assert ("synth", "k1") in store

    def test_same_key_different_stage_is_distinct(self):
        store = ArtifactStore()
        store.put("synth", "k", "placed")
        store.put("power", "k", "estimated")
        assert store.get("synth", "k") == "placed"
        assert store.get("power", "k") == "estimated"

    def test_lru_bound_evicts_oldest(self):
        store = ArtifactStore(maxsize=2)
        store.put("s", "a", 1)
        store.put("s", "b", 2)
        store.put("s", "c", 3)
        assert store.get("s", "a") is None
        assert store.get("s", "b") == 2
        assert store.get("s", "c") == 3
        assert len(store) == 2

    def test_get_refreshes_lru_order(self):
        store = ArtifactStore(maxsize=2)
        store.put("s", "a", 1)
        store.put("s", "b", 2)
        assert store.get("s", "a") == 1  # "a" becomes most recent
        store.put("s", "c", 3)           # so "b" is the eviction victim
        assert store.get("s", "b") is None
        assert store.get("s", "a") == 1

    def test_maxsize_zero_disables_retention(self):
        store = ArtifactStore(maxsize=0)
        store.put("s", "a", 1)
        assert store.get("s", "a") is None
        assert len(store) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            ArtifactStore(maxsize=-1)


class TestDiskTier:
    def test_disk_round_trip_after_memory_clear(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put("thermal", "k1", {"peak": 12.5})
        store.clear_memory()
        assert store.get("thermal", "k1") == {"peak": 12.5}
        stats = store.stats()
        assert stats.disk_hits == 1
        assert stats.corrupt_evictions == 0
        # The disk hit repopulated the memory tier.
        assert ("thermal", "k1") in store

    def test_fresh_store_reads_previous_store_entries(self, tmp_path):
        ArtifactStore(root=tmp_path).put("sta", "k", (1.0, 2.0))
        second = ArtifactStore(root=tmp_path)
        assert second.get("sta", "k") == (1.0, 2.0)
        assert second.stats().disk_hits == 1

    def test_entry_format_is_magic_sha_payload(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put("power", "k", [1, 2, 3])
        blob = _entry_path(store, "power", "k").read_bytes()
        assert blob.startswith(_MAGIC)
        assert blob[len(_MAGIC) + 64:len(_MAGIC) + 65] == b"\n"
        assert pickle.loads(blob[len(_MAGIC) + 65:]) == [1, 2, 3]


class TestDiskCorruption:
    def _corrupt_and_probe(self, tmp_path, mutate):
        """Write an entry, vandalise it with ``mutate``, probe the store."""
        store = ArtifactStore(root=tmp_path)
        store.put("legalize", "k", {"grid": 40})
        store.clear_memory()
        path = _entry_path(store, "legalize", "k")
        mutate(path)
        return store, path

    @pytest.mark.parametrize("mutate", [
        pytest.param(lambda p: p.write_bytes(p.read_bytes()[:-7]), id="truncated"),
        pytest.param(lambda p: p.write_bytes(b"not an artifact"), id="garbage"),
        pytest.param(lambda p: p.write_bytes(b""), id="empty"),
        pytest.param(
            lambda p: p.write_bytes(_flip_payload_bit(p.read_bytes())),
            id="bit-flipped-payload",
        ),
        pytest.param(
            lambda p: p.write_bytes(_flip_digest_char(p.read_bytes())),
            id="bit-flipped-digest",
        ),
    ])
    def test_damaged_entry_is_missed_and_evicted(self, tmp_path, mutate):
        store, path = self._corrupt_and_probe(tmp_path, mutate)
        assert store.get("legalize", "k") is None
        stats = store.stats()
        assert stats.corrupt_evictions == 1
        assert stats.misses == 1
        assert not path.exists(), "corrupt entry must be deleted"

    def test_hash_valid_but_unpicklable_payload_is_evicted(self, tmp_path):
        """A correctly-hashed payload that fails to deserialize (written by
        an incompatible producer) counts as corruption too."""
        import hashlib

        def mutate(path):
            payload = b"\x80\x05not really a pickle"
            digest = hashlib.sha256(payload).hexdigest().encode("ascii")
            path.write_bytes(_MAGIC + digest + b"\n" + payload)

        store, path = self._corrupt_and_probe(tmp_path, mutate)
        assert store.get("legalize", "k") is None
        assert store.stats().corrupt_evictions == 1
        assert not path.exists()

    def test_recompute_repairs_the_entry(self, tmp_path):
        store, path = self._corrupt_and_probe(
            tmp_path, lambda p: p.write_bytes(b"garbage")
        )
        assert store.get("legalize", "k") is None
        # The flow graph reacts to the miss by recomputing and re-putting:
        store.put("legalize", "k", {"grid": 40})
        store.clear_memory()
        assert store.get("legalize", "k") == {"grid": 40}
        assert store.stats().corrupt_evictions == 1

    def test_flow_graph_recomputes_through_corruption(
        self, tmp_path, small_placement, small_power
    ):
        """End to end: corrupt every on-disk entry under a real stage run;
        the graph silently rebuilds bitwise-identical artifacts."""
        flow = FlowGraph(store=ArtifactStore(root=tmp_path))
        original = flow.legalize(small_placement, small_power, nx=12, ny=12)
        assert flow.stage_executions["legalize"] == 1

        for entry in tmp_path.rglob("*.art"):
            entry.write_bytes(b"vandalised")
        flow.store.clear_memory()

        rebuilt = flow.legalize(small_placement, small_power, nx=12, ny=12)
        assert flow.stage_executions["legalize"] == 2
        assert flow.store.stats().corrupt_evictions >= 1
        assert rebuilt.key == original.key
        assert (rebuilt.power_map.power_w == original.power_map.power_w).all()


class TestConcurrency:
    def test_parallel_put_get_is_consistent(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        errors = []

        def worker(worker_id):
            try:
                for i in range(25):
                    key = f"k{i % 5}"
                    store.put("s", key, (worker_id, i))
                    got = store.get("s", key)
                    assert got is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = store.stats()
        assert stats.writes == 8 * 25
        assert stats.hits == 8 * 25  # every get right after a put must hit


def _flip_payload_bit(blob: bytes) -> bytes:
    """Flip one bit in the pickled payload, leaving the header intact."""
    header_end = len(_MAGIC) + 64 + 1
    body = bytearray(blob)
    body[header_end + 3] ^= 0x10
    return bytes(body)


def _flip_digest_char(blob: bytes) -> bytes:
    """Corrupt the stored digest itself."""
    body = bytearray(blob)
    index = len(_MAGIC) + 5
    body[index] = ord("0") if body[index] != ord("0") else ord("1")
    return bytes(body)
