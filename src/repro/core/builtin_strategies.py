"""The built-in whitespace strategies, registered on the plugin API.

The paper's three techniques (``default``, ``eri``, ``hw``) are ported
onto :class:`~repro.core.strategy.WhitespaceStrategy` unchanged in
behaviour, and two new techniques open scenario space the paper does not
cover:

* ``hybrid`` — ERI relaxes the broad warm region, then the hotspot
  wrapper concentrates the whitespace around the residual tight peaks.
* ``gradient`` — the empty-row budget is apportioned over all rows
  proportionally to the row-average temperature rise (banded/smeared heat
  rather than concentrated hotspots).

Importing this module (which :mod:`repro.core` does) populates the
registry; third-party strategies register the same way from outside the
package (``examples/custom_strategy.py``).
"""

from __future__ import annotations

from .default_spread import apply_default_spread
from .empty_row import (
    apply_empty_row_insertion,
    apply_row_insertions,
    rows_for_overhead,
)
from .gradient import plan_gradient_insertion_points
from .hotspot import project_hotspots
from .strategy import (
    StrategyContext,
    StrategyResult,
    WhitespaceStrategy,
    register_strategy,
)
from .wrapper import apply_hotspot_wrapper

#: Default hotspot-detection threshold for empty row insertion: the method
#: acts on "the area around a given hotspot", so a generous fraction of the
#: warm region is included.
ERI_HOTSPOT_THRESHOLD = 0.5

#: Default hotspot-detection threshold for the hotspot wrapper: the method
#: is "particularly useful for small concentrated hotspots", so only the
#: tight core of each hotspot is wrapped.
HW_HOTSPOT_THRESHOLD = 0.75


@register_strategy
class DefaultSpreadStrategy(WhitespaceStrategy):
    """Uniform utilization relaxation (the paper's "Default" baseline)."""

    name = "default"
    default_hotspot_threshold = ERI_HOTSPOT_THRESHOLD

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        result = apply_default_spread(
            ctx.placement, ctx.area_overhead, add_fillers=ctx.add_fillers
        )
        return StrategyResult(
            placement=result.placement,
            actual_overhead=result.actual_overhead,
            num_fillers=result.num_fillers,
            details=result,
        )


@register_strategy
class EmptyRowInsertionStrategy(WhitespaceStrategy):
    """Empty Row Insertion: whole empty rows around each hotspot (Sec. III-A)."""

    name = "eri"
    default_hotspot_threshold = ERI_HOTSPOT_THRESHOLD

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        result = apply_empty_row_insertion(
            ctx.placement,
            ctx.hotspots,
            area_overhead=ctx.area_overhead,
            add_fillers=ctx.add_fillers,
        )
        return StrategyResult(
            placement=result.placement,
            actual_overhead=result.actual_overhead,
            inserted_rows=result.inserted_rows,
            num_fillers=result.num_fillers,
            details=result,
        )


class _WrapperMixin(WhitespaceStrategy):
    """Shared wrapper pass for strategies ending in a hotspot-wrapper step.

    The ring geometry resolves spec overrides (``ring_um`` /
    ``max_source_units``) first, falling back to the tool configuration —
    one rule for every wrapper-based strategy.
    """

    @classmethod
    def _validate_params(cls, params):
        validated = super()._validate_params(params)
        ring = validated.get("ring_um")
        if ring is not None and ring < 0.0:
            raise ValueError(
                f"strategy {cls.name!r}: ring_um must be non-negative, got {ring}"
            )
        units = validated.get("max_source_units")
        if units is not None and units < 1:
            raise ValueError(
                f"strategy {cls.name!r}: max_source_units must be >= 1, got {units}"
            )
        return validated

    def _wrap(self, ctx: StrategyContext, placement, hotspots):
        config = ctx.config
        return apply_hotspot_wrapper(
            placement,
            project_hotspots(hotspots, ctx.placement, placement),
            ring_width_um=float(
                self.overrides.get("ring_um", config.wrapper_ring_um)
            ),
            max_source_units=int(
                self.overrides.get("max_source_units", config.wrapper_max_source_units)
            ),
            max_hotspots=config.max_hotspots,
            add_fillers=ctx.add_fillers,
        )


@register_strategy
class HotspotWrapperStrategy(_WrapperMixin):
    """Hotspot Wrapper: a whitespace ring isolating each tight hotspot (Sec. III-B)."""

    name = "hw"
    default_hotspot_threshold = HW_HOTSPOT_THRESHOLD
    param_defaults = {"ring_um": 6.0, "max_source_units": 2}

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        # Start from the Default solution at the requested overhead (as in
        # the paper's Figure 6), project the hotspots detected on the
        # baseline map onto that placement, then wrap them.
        default_result = apply_default_spread(
            ctx.placement, ctx.area_overhead, add_fillers=False
        )
        hw_result = self._wrap(ctx, default_result.placement, ctx.hotspots)
        return StrategyResult(
            placement=hw_result.placement,
            actual_overhead=default_result.actual_overhead,
            num_fillers=hw_result.num_fillers,
            details=hw_result,
        )


@register_strategy
class HybridStrategy(_WrapperMixin):
    """ERI on the broad warm region, then the wrapper on the residual peak.

    Empty row insertion spends the whole area budget relaxing the broad
    warm band (hotspots at this strategy's own threshold), after which the
    hotspot wrapper — which consumes no extra area — concentrates the
    placement's whitespace around the tight concentrated peaks (hotspots
    re-detected at ``tight_threshold``, projected onto the grown core).
    Targets scenarios with both a wide warm region and a sharp peak, where
    neither ERI nor HW alone is a good fit.
    """

    name = "hybrid"
    default_hotspot_threshold = ERI_HOTSPOT_THRESHOLD
    param_defaults = {
        "ring_um": 6.0,
        "max_source_units": 2,
        "tight_threshold": HW_HOTSPOT_THRESHOLD,
    }

    @classmethod
    def _validate_params(cls, params):
        validated = super()._validate_params(params)
        tight = validated.get("tight_threshold")
        if tight is not None and not 0.0 < tight <= 1.0:
            raise ValueError(
                f"strategy {cls.name!r}: tight_threshold must be in (0, 1], got {tight}"
            )
        return validated

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        eri_result = apply_empty_row_insertion(
            ctx.placement,
            ctx.hotspots,
            area_overhead=ctx.area_overhead,
            add_fillers=False,
        )
        tight = ctx.detect(float(self.param("tight_threshold")))
        hw_result = self._wrap(ctx, eri_result.placement, tight)
        return StrategyResult(
            placement=hw_result.placement,
            actual_overhead=eri_result.actual_overhead,
            inserted_rows=eri_result.inserted_rows,
            num_fillers=hw_result.num_fillers,
            details={"eri": eri_result, "wrapper": hw_result},
        )


@register_strategy
class GradientStrategy(WhitespaceStrategy):
    """Whitespace per row proportional to the row-average temperature rise.

    The empty-row budget is apportioned over *all* placement rows by the
    thermal map's row-average rise above the lateral minimum (largest-
    remainder method), so warm bands receive whitespace in proportion to
    their warmth — neither uniformly (Default) nor hotspot-locally (ERI).
    The ``exponent`` parameter sharpens (``> 1``) or flattens (``< 1``)
    the allocation.
    """

    name = "gradient"
    default_hotspot_threshold = ERI_HOTSPOT_THRESHOLD
    param_defaults = {"exponent": 1.0}

    @classmethod
    def _validate_params(cls, params):
        validated = super()._validate_params(params)
        exponent = validated.get("exponent")
        if exponent is not None and exponent <= 0.0:
            raise ValueError(
                f"strategy {cls.name!r}: exponent must be positive, got {exponent}"
            )
        return validated

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        num_rows = rows_for_overhead(ctx.placement, ctx.area_overhead)
        points = plan_gradient_insertion_points(
            ctx.placement,
            ctx.thermal_map,
            num_rows,
            exponent=float(self.param("exponent")),
        )
        result = apply_row_insertions(
            ctx.placement,
            points,
            requested_overhead=ctx.area_overhead,
            add_fillers=ctx.add_fillers,
        )
        return StrategyResult(
            placement=result.placement,
            actual_overhead=result.actual_overhead,
            inserted_rows=result.inserted_rows,
            num_fillers=result.num_fillers,
            details=result,
        )
