"""Tests for the row-based placement database (Row and Placement)."""

import pytest

from repro.netlist import Netlist
from repro.placement import Floorplan, Placement, Rect


@pytest.fixture()
def small_db(library):
    """A placement database with a handful of manually placed cells."""
    netlist = Netlist("db", library)
    for i in range(6):
        netlist.add_cell(f"c{i}", "NAND2_X1", unit="u0" if i < 3 else "u1")
    floorplan = Floorplan(core_width=20.0, core_height=5 * 1.8)
    placement = Placement(netlist, floorplan)
    # Row 0: c0 at 0, c1 at 5; row 1: c2 at 2; row 2: c3..c5 packed.
    placement.assign(netlist.cells["c0"], 0, 0.0)
    placement.assign(netlist.cells["c1"], 0, 5.0)
    placement.assign(netlist.cells["c2"], 1, 2.0)
    placement.assign(netlist.cells["c3"], 2, 0.0)
    placement.assign(netlist.cells["c4"], 2, 0.8)
    placement.assign(netlist.cells["c5"], 2, 1.6)
    return placement


class TestRow:
    def test_occupancy(self, small_db):
        row = small_db.row(0)
        assert row.occupied_width == pytest.approx(2 * 0.8)
        assert row.free_width == pytest.approx(20.0 - 1.6)
        assert 0.0 < row.utilization() < 1.0

    def test_gaps(self, small_db):
        gaps = small_db.row(0).gaps()
        assert gaps[0] == (pytest.approx(0.8), pytest.approx(5.0))
        assert gaps[-1][1] == pytest.approx(20.0)

    def test_no_overlaps_initially(self, small_db):
        for row in small_db.rows:
            assert row.overlaps() == []

    def test_overlap_detection(self, small_db):
        netlist = small_db.netlist
        extra = netlist.add_cell("clash", "NAND2_X1")
        small_db.assign(extra, 0, 0.1)
        assert small_db.row(0).overlaps() != []

    def test_pack_removes_gaps(self, small_db):
        row = small_db.row(0)
        row.pack()
        assert row.gaps() == [(pytest.approx(1.6), pytest.approx(20.0))]

    def test_spread_is_legal_and_ordered(self, small_db):
        row = small_db.row(2)
        row.spread()
        assert row.overlaps() == []
        xs = [c.x for c in row.cells]
        assert xs == sorted(xs)
        assert row.cells[0].x > 0.0
        assert row.cells[-1].x + row.cells[-1].width < row.x_end

    def test_insert_at_best_gap(self, small_db):
        netlist = small_db.netlist
        new = netlist.add_cell("new", "NAND2_X1")
        assert small_db.row(0).insert_at_best_gap(new, target_x=6.0)
        assert small_db.row(0).overlaps() == []

    def test_insert_fails_when_full(self, library):
        netlist = Netlist("full", library)
        floorplan = Floorplan(core_width=1.6, core_height=1.8)
        placement = Placement(netlist, floorplan)
        a = netlist.add_cell("a", "NAND2_X1")
        b = netlist.add_cell("b", "NAND2_X1")
        placement.assign(a, 0, 0.0)
        placement.assign(b, 0, 0.8)
        c = netlist.add_cell("c", "NAND2_X1")
        assert not placement.row(0).insert_at_best_gap(c, target_x=0.0)

    def test_cells_in_span(self, small_db):
        row = small_db.row(0)
        assert [c.name for c in row.cells_in_span(0.0, 1.0)] == ["c0"]


class TestPlacement:
    def test_check_legal_clean(self, small_db):
        assert small_db.check_legal() == []

    def test_check_legal_detects_unplaced(self, small_db):
        small_db.netlist.add_cell("ghost", "INV_X1")
        problems = small_db.check_legal()
        assert any("not placed" in p for p in problems)

    def test_check_legal_detects_out_of_core(self, small_db):
        stray = small_db.netlist.add_cell("stray", "INV_X1")
        small_db.assign(stray, 0, 25.0)
        problems = small_db.check_legal()
        assert any("exceeds core width" in p for p in problems)

    def test_cells_in_rect(self, small_db):
        rect = Rect(0.0, 0.0, 3.0, 1.8)
        names = {c.name for c in small_db.cells_in_rect(rect)}
        assert names == {"c0"}

    def test_rows_in_span(self, small_db):
        rows = small_db.rows_in_span(0.0, 3.6)
        assert [r.index for r in rows] == [0, 1]

    def test_utilization_matches_area_ratio(self, small_db):
        expected = small_db.netlist.total_cell_area() / small_db.floorplan.core_area
        assert small_db.utilization() == pytest.approx(expected)

    def test_rebuild_rows_from_coordinates(self, small_db):
        cell = small_db.netlist.cells["c2"]
        # Move the cell's coordinate directly, then rebuild.
        cell.y = small_db.floorplan.row_y(3)
        small_db.rebuild_rows()
        assert cell.row == 3
        assert cell in small_db.row(3).cells

    def test_remove_detaches_from_row(self, small_db):
        cell = small_db.netlist.cells["c0"]
        small_db.remove(cell)
        assert cell not in small_db.row(0).cells

    def test_copy_is_deep(self, small_db):
        clone = small_db.copy()
        assert clone.netlist is not small_db.netlist
        clone.netlist.cells["c0"].place(9.0, 0.0, 0)
        assert small_db.netlist.cells["c0"].x == pytest.approx(0.0)
        assert len(clone.rows) == len(small_db.rows)

    def test_statistics_keys(self, small_db):
        stats = small_db.statistics()
        assert stats["num_rows"] == 5
        assert stats["utilization"] > 0

    def test_evict_and_relocate(self, small_db):
        rect = Rect(0.0, 3.6, 20.0, 5.4)  # row 2
        evicted = small_db.evict_from_rect(rect, keep_units=["u0"])
        # c3..c5 are unit u1 and live in row 2 -> evicted.
        assert {c.name for c in evicted} == {"c3", "c4", "c5"}
        failed = small_db.relocate_outside(evicted, rect)
        assert failed == []
        for cell in evicted:
            cx, cy = cell.center
            assert not rect.contains(cx, cy)
        assert small_db.check_legal() == []

    def test_total_hpwl_nonnegative(self, small_db):
        assert small_db.total_hpwl() >= 0.0
