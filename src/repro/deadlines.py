"""Deadlines, budgets, and cooperative cancellation.

The fault-tolerance layer introduced by :mod:`repro.faults` lets the
campaign tiers survive components that *fail*; this module bounds
components that *hang*.  A :class:`Deadline` is an absolute instant on the
monotonic clock; a :class:`Budget` is an unstarted duration that can be
split between sub-steps before any clock starts ticking.  Work that may
run long periodically calls :func:`check_active` (or ``deadline.check()``
directly), which raises :class:`DeadlineExceeded` once the deadline has
passed.

Cooperative cancellation is threaded through the hot loops the same way
fault injection is: a thread-local scope stack installed with
:func:`deadline_scope` makes the *current* deadline visible to any code
running under it, and :func:`check_active` is a near-free no-op when no
scope is installed — one thread-local attribute load — so instrumented
inner loops (multigrid V-cycles, detailed-placement passes, logic-sim
cycles) cost nothing in normal operation.

``DeadlineExceeded`` subclasses :class:`TimeoutError`, which
:meth:`repro.faults.RetryPolicy.classify` already treats as retryable:
a timed-out campaign point flows into the existing retry/quarantine
machinery with no special-casing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "Budget",
    "Deadline",
    "DeadlineExceeded",
    "check_active",
    "current_deadline",
    "deadline_scope",
]


class DeadlineExceeded(TimeoutError):
    """A deadline passed while work was still in flight.

    ``site`` names the checkpoint that noticed (e.g. ``solver.multigrid``);
    ``overrun_s`` is how far past the deadline the check ran.
    """

    def __init__(self, site: str = "", overrun_s: float = 0.0):
        self.site = site
        self.overrun_s = overrun_s
        where = f" at {site}" if site else ""
        super().__init__(
            f"deadline exceeded{where} (overran by {overrun_s:.3f}s)"
        )


@dataclass(frozen=True)
class Deadline:
    """An absolute instant on the monotonic clock.

    ``Deadline.never()`` (``instant=None``) never expires; it exists so
    callers can thread one object through unconditionally instead of
    branching on ``Optional[Deadline]`` everywhere.
    """

    instant: Optional[float] = None

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now."""
        if seconds < 0:
            raise ValueError(f"deadline duration must be >= 0, got {seconds}")
        return cls(time.monotonic() + seconds)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(None)

    def remaining(self) -> float:
        """Seconds until expiry; ``inf`` for a never-deadline.

        May be negative once the deadline has passed — useful for
        reporting overrun without clamping.
        """
        if self.instant is None:
            return float("inf")
        return self.instant - time.monotonic()

    def expired(self) -> bool:
        return self.instant is not None and time.monotonic() >= self.instant

    def check(self, site: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.instant is None:
            return
        now = time.monotonic()
        if now >= self.instant:
            raise DeadlineExceeded(site, now - self.instant)

    def sub(self, seconds: float) -> "Deadline":
        """A child deadline: ``seconds`` from now, capped by the parent.

        A child split can only tighten — a sub-step is never allowed to
        outlive the deadline it was split from.
        """
        child = time.monotonic() + max(0.0, seconds)
        if self.instant is None:
            return Deadline(child)
        return Deadline(min(self.instant, child))

    def min(self, other: "Deadline") -> "Deadline":
        """The tighter of two deadlines."""
        if self.instant is None:
            return other
        if other.instant is None:
            return self
        return self if self.instant <= other.instant else other


@dataclass
class Budget:
    """An unstarted wall-clock allowance, splittable before the clock runs.

    Unlike a :class:`Deadline`, a budget has no start instant: it can be
    divided between phases (``budget.split(0.25)`` carves off a quarter)
    while planning, and each piece starts ticking only when
    :meth:`deadline` is called.  ``seconds=None`` is an unlimited budget.
    """

    seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.seconds is not None and self.seconds < 0:
            raise ValueError(f"budget must be >= 0, got {self.seconds}")

    def split(self, fraction: float) -> "Budget":
        """Carve ``fraction`` of this budget off into a child budget.

        The parent keeps the remainder; the child gets the slice.  On an
        unlimited budget both sides stay unlimited.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.seconds is None:
            return Budget(None)
        piece = self.seconds * fraction
        self.seconds -= piece
        return Budget(piece)

    def deadline(self) -> Deadline:
        """Start the clock: the budget as a deadline from this instant."""
        if self.seconds is None:
            return Deadline.never()
        return Deadline.after(self.seconds)


class _Scope(threading.local):
    """Per-thread stack of active deadlines (innermost last)."""

    def __init__(self) -> None:
        self.stack: list[Deadline] = []


_SCOPE = _Scope()


class deadline_scope:
    """Install ``deadline`` as the thread's active deadline.

    Nested scopes combine: the effective deadline inside a nested scope is
    the tighter of the enclosing deadline and the new one, so an outer
    request deadline always caps an inner per-step deadline.
    """

    def __init__(self, deadline: Deadline):
        self._deadline = deadline

    def __enter__(self) -> Deadline:
        stack = _SCOPE.stack
        effective = self._deadline
        if stack:
            effective = stack[-1].min(effective)
        stack.append(effective)
        return effective

    def __exit__(self, *exc_info: object) -> None:
        _SCOPE.stack.pop()


def current_deadline() -> Optional[Deadline]:
    """The innermost active deadline on this thread, or ``None``."""
    stack = _SCOPE.stack
    return stack[-1] if stack else None


def check_active(site: str = "") -> None:
    """Check the thread's active deadline, if any.

    This is the hook hot loops call: when no :func:`deadline_scope` is
    installed it is a single thread-local attribute load and a truth
    test, so instrumenting an inner loop is effectively free.
    """
    stack = _SCOPE.stack
    if stack:
        stack[-1].check(site)
