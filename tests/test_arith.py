"""Functional tests for the arithmetic-unit generators.

Each generated netlist is simulated with the vectorized logic simulator and
compared bit-for-bit against Python integer arithmetic.  Because the units
have registered inputs and outputs, results are read after clocking the
pipeline for a few cycles with a constant input.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import (
    array_multiplier,
    carry_lookahead_adder,
    carry_save_adder_tree,
    multiply_accumulate,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.power import LogicSimulator
from repro.power.vectors import VectorSet


def _bits(value: int, width: int) -> list:
    return [(value >> i) & 1 == 1 for i in range(width)]


def _constant_vectors(netlist, assignments: dict, num_cycles: int = 6) -> VectorSet:
    """Drive every primary input with a constant value for several cycles."""
    values = {}
    for port in netlist.primary_inputs:
        bit = bool(assignments.get(port.name, False))
        values[port.name] = np.full((num_cycles, 1), bit, dtype=bool)
    return VectorSet(values)


def _read_bus(result, netlist, prefix: str, width: int) -> int:
    """Decode an output bus from the final simulated values."""
    total = 0
    for i in range(width):
        port = netlist.ports[f"{prefix}_{i}"]
        arr = result.final_values[port.net.name]
        if bool(arr[0]):
            total |= 1 << i
    return total


def _assign_bus(assignments: dict, prefix: str, value: int, width: int) -> None:
    for i, bit in enumerate(_bits(value, width)):
        assignments[f"{prefix}_{i}"] = bit


class TestRippleCarryAdder:
    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (5, 9, 0), (15, 1, 1), (7, 8, 1)])
    def test_addition(self, a, b, cin):
        width = 4
        adder = ripple_carry_adder(width)
        sim = LogicSimulator(adder)
        assignments = {}
        _assign_bus(assignments, "a", a, width)
        _assign_bus(assignments, "b", b, width)
        assignments["cin_0"] = bool(cin)
        result = sim.simulate(_constant_vectors(adder, assignments), warmup_cycles=0)
        total = _read_bus(result, adder, "s", width)
        cout = _read_bus(result, adder, "cout", 1)
        assert total + (cout << width) == a + b + cin

    def test_unregistered_variant(self):
        adder = ripple_carry_adder(3, registered=False)
        assert len(adder.sequential_cells()) == 0

    def test_cell_count_scales_with_width(self):
        small = ripple_carry_adder(4).num_cells
        large = ripple_carry_adder(8).num_cells
        assert large > small


class TestCarryLookaheadAdder:
    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (100, 155, 0), (255, 255, 1), (170, 85, 0)])
    def test_addition(self, a, b, cin):
        width = 8
        adder = carry_lookahead_adder(width)
        sim = LogicSimulator(adder)
        assignments = {}
        _assign_bus(assignments, "a", a, width)
        _assign_bus(assignments, "b", b, width)
        assignments["cin_0"] = bool(cin)
        result = sim.simulate(_constant_vectors(adder, assignments), warmup_cycles=0)
        total = _read_bus(result, adder, "s", width)
        cout = _read_bus(result, adder, "cout", 1)
        assert total + (cout << width) == a + b + cin

    @given(a=st.integers(0, 63), b=st.integers(0, 63))
    @settings(max_examples=12, deadline=None)
    def test_matches_ripple_carry(self, a, b):
        width = 6
        cla = carry_lookahead_adder(width, registered=False)
        sim = LogicSimulator(cla)
        assignments = {}
        _assign_bus(assignments, "a", a, width)
        _assign_bus(assignments, "b", b, width)
        assignments["cin_0"] = False
        result = sim.simulate(_constant_vectors(cla, assignments, num_cycles=2), warmup_cycles=0)
        total = _read_bus(result, cla, "s", width)
        cout = _read_bus(result, cla, "cout", 1)
        assert total + (cout << width) == a + b


class TestCarrySaveAdderTree:
    @pytest.mark.parametrize(
        "operands", [(1, 2, 3, 4), (15, 15, 15, 15), (0, 0, 0, 0), (7, 0, 9, 3)]
    )
    def test_sums_four_operands(self, operands):
        width = 4
        tree = carry_save_adder_tree(width, num_operands=4)
        sim = LogicSimulator(tree)
        assignments = {}
        for k, value in enumerate(operands):
            _assign_bus(assignments, f"op{k}", value, width)
        result = sim.simulate(_constant_vectors(tree, assignments), warmup_cycles=0)
        total = _read_bus(result, tree, "s", width + 2)
        assert total == sum(operands) % (1 << (width + 2))

    def test_requires_two_operands(self):
        with pytest.raises(ValueError):
            carry_save_adder_tree(4, num_operands=1)


class TestMultipliers:
    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (15, 15), (9, 12), (1, 14)])
    def test_array_multiplier(self, a, b):
        width = 4
        mult = array_multiplier(width)
        sim = LogicSimulator(mult)
        assignments = {}
        _assign_bus(assignments, "a", a, width)
        _assign_bus(assignments, "b", b, width)
        result = sim.simulate(_constant_vectors(mult, assignments), warmup_cycles=0)
        product = _read_bus(result, mult, "p", 2 * width)
        assert product == a * b

    @pytest.mark.parametrize("a,b", [(0, 7), (3, 5), (15, 15), (10, 13), (8, 8)])
    def test_wallace_multiplier(self, a, b):
        width = 4
        mult = wallace_multiplier(width)
        sim = LogicSimulator(mult)
        assignments = {}
        _assign_bus(assignments, "a", a, width)
        _assign_bus(assignments, "b", b, width)
        result = sim.simulate(_constant_vectors(mult, assignments), warmup_cycles=0)
        product = _read_bus(result, mult, "p", 2 * width)
        assert product == a * b

    @given(a=st.integers(0, 31), b=st.integers(0, 31))
    @settings(max_examples=10, deadline=None)
    def test_array_and_wallace_agree(self, a, b):
        width = 5
        arr = array_multiplier(width, registered=False)
        wal = wallace_multiplier(width, registered=False)
        expected = a * b
        for mult in (arr, wal):
            sim = LogicSimulator(mult)
            assignments = {}
            _assign_bus(assignments, "a", a, width)
            _assign_bus(assignments, "b", b, width)
            result = sim.simulate(
                _constant_vectors(mult, assignments, num_cycles=2), warmup_cycles=0
            )
            assert _read_bus(result, mult, "p", 2 * width) == expected


class TestMultiplyAccumulate:
    def test_accumulates_over_cycles(self):
        width = 4
        mac = multiply_accumulate(width)
        sim = LogicSimulator(mac)
        a, b = 5, 7
        assignments = {}
        _assign_bus(assignments, "a", a, width)
        _assign_bus(assignments, "b", b, width)
        num_cycles = 6
        result = sim.simulate(
            _constant_vectors(mac, assignments, num_cycles=num_cycles), warmup_cycles=0
        )
        acc = _read_bus(result, mac, "acc", 2 * width + 2)
        # Inputs are registered, so the first product reaches the accumulator
        # after one cycle; the accumulator output lags one more cycle.
        expected_terms = num_cycles - 2
        assert acc == (a * b) * expected_terms % (1 << (2 * width + 2))

    def test_has_accumulator_registers(self):
        mac = multiply_accumulate(4)
        assert len(mac.sequential_cells()) >= 2 * 4 + 2


class TestGeneratorHygiene:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ripple_carry_adder(6),
            lambda: carry_lookahead_adder(8),
            lambda: array_multiplier(5),
            lambda: wallace_multiplier(5),
            lambda: multiply_accumulate(4),
            lambda: carry_save_adder_tree(6, num_operands=4),
        ],
    )
    def test_structurally_sound(self, factory):
        netlist = factory()
        assert netlist.check() == []
        # Every generator must produce a levelizable (acyclic) netlist.
        netlist.levelize()
