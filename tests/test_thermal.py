"""Tests for the thermal substrate: package, grid, network, solver, maps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.thermal import (
    Layer,
    Package,
    ThermalGrid,
    ThermalMap,
    ThermalNetwork,
    ThermalSolver,
    default_package,
    grid_for_placement,
    high_performance_package,
    low_cost_package,
    map_from_solution,
    simulate_with_leakage_feedback,
)


class TestPackage:
    def test_default_has_nine_layers(self):
        package = default_package()
        assert package.num_layers == 9

    def test_active_layer_is_silicon(self):
        package = default_package()
        assert "silicon" in package.layers[package.active_layer].name

    def test_validation(self):
        with pytest.raises(ValueError):
            Package(layers=[], active_layer=0)
        with pytest.raises(ValueError):
            Package(layers=[Layer("a", 1.0, 1.0)], active_layer=5)
        with pytest.raises(ValueError):
            Package(layers=[Layer("a", 1.0, 1.0)], active_layer=0, bottom_htc=0.0)

    def test_vertical_resistance_positive(self):
        assert default_package().vertical_resistance_per_area() > 0.0

    def test_spreading_length_reasonable(self):
        # The calibration keeps the spreading length comparable to the die
        # size (tens to a few hundreds of micrometres).
        length_um = default_package().spreading_length_m() * 1e6
        assert 20.0 < length_um < 1000.0

    def test_package_variants_order(self):
        low = low_cost_package()
        high = high_performance_package()
        assert low.vertical_resistance_per_area() > high.vertical_resistance_per_area()

    def test_layer_resistivity(self):
        layer = Layer("x", 10.0, 2.0)
        assert layer.vertical_resistivity == pytest.approx(10e-6 / 2.0)


class TestGrid:
    def test_node_indexing_round_trip(self):
        grid = ThermalGrid(100.0, 80.0, nx=8, ny=5, package=default_package())
        for layer in (0, 3, grid.nz - 1):
            for iy in (0, 2, 4):
                for ix in (0, 3, 7):
                    index = grid.node_index(layer, iy, ix)
                    assert grid.node_coords(index) == (layer, iy, ix)

    @given(
        layer=st.integers(0, 8), iy=st.integers(0, 39), ix=st.integers(0, 39)
    )
    @settings(max_examples=50, deadline=None)
    def test_property_indexing_bijective(self, layer, iy, ix):
        grid = ThermalGrid(200.0, 200.0, nx=40, ny=40, package=default_package())
        index = grid.node_index(layer, iy, ix)
        assert 0 <= index < grid.num_nodes
        assert grid.node_coords(index) == (layer, iy, ix)

    def test_out_of_range_rejected(self):
        grid = ThermalGrid(100.0, 80.0, nx=8, ny=5, package=default_package())
        with pytest.raises(IndexError):
            grid.node_index(0, 5, 0)
        with pytest.raises(IndexError):
            grid.node_coords(grid.num_nodes)

    def test_geometry(self):
        grid = ThermalGrid(100.0, 80.0, nx=10, ny=8, package=default_package())
        assert grid.dx_m == pytest.approx(10e-6)
        assert grid.dy_m == pytest.approx(10e-6)
        assert grid.cell_area_m2 == pytest.approx(1e-10)
        assert grid.num_nodes == 10 * 8 * 9

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            ThermalGrid(0.0, 10.0, nx=4, ny=4, package=default_package())
        with pytest.raises(ValueError):
            ThermalGrid(10.0, 10.0, nx=1, ny=4, package=default_package())


class TestNetwork:
    @pytest.fixture()
    def tiny_grid(self):
        return ThermalGrid(60.0, 60.0, nx=6, ny=6, package=default_package())

    def test_matrix_is_symmetric(self, tiny_grid):
        network = ThermalNetwork(tiny_grid)
        matrix = network.grid_matrix
        asymmetry = abs(matrix - matrix.T).max()
        assert asymmetry < 1e-12

    def test_diagonal_dominance(self, tiny_grid):
        network = ThermalNetwork(tiny_grid)
        matrix = network.grid_matrix.tocsr()
        diag = matrix.diagonal()
        offdiag_abs_sum = np.abs(matrix).sum(axis=1).A1 - np.abs(diag)
        assert (diag + 1e-15 >= offdiag_abs_sum).all()

    def test_power_vector_placement(self, tiny_grid):
        network = ThermalNetwork(tiny_grid)
        power = np.zeros((6, 6))
        power[2, 3] = 0.5
        rhs = network.power_vector(power)
        offset = tiny_grid.active_layer_offset()
        assert rhs[offset + 2 * 6 + 3] == pytest.approx(0.5)
        assert rhs.sum() == pytest.approx(0.5)

    def test_power_vector_shape_mismatch(self, tiny_grid):
        network = ThermalNetwork(tiny_grid)
        with pytest.raises(ValueError):
            network.power_vector(np.zeros((3, 3)))

    def test_elements_include_package_node(self, tiny_grid):
        network = ThermalNetwork(tiny_grid)
        elements = network.elements()
        assert elements.package_node == tiny_grid.num_nodes
        assert elements.num_nodes == tiny_grid.num_nodes + 1
        assert all(g > 0 for _a, _b, g in elements.conductances)


class TestSolver:
    @pytest.fixture(scope="class")
    def solver(self):
        grid = ThermalGrid(100.0, 100.0, nx=10, ny=10, package=default_package())
        return ThermalSolver(grid)

    def test_zero_power_gives_ambient(self, solver):
        result = solver.solve(np.zeros((10, 10)))
        assert result.peak == pytest.approx(solver.grid.package.ambient_celsius, abs=1e-9)

    def test_temperature_rises_with_power(self, solver):
        low = solver.solve(np.full((10, 10), 1e-5))
        high = solver.solve(np.full((10, 10), 2e-5))
        assert high.peak_rise > low.peak_rise > 0.0

    def test_linearity(self, solver):
        base = solver.solve(np.full((10, 10), 1e-5))
        double = solver.solve(np.full((10, 10), 2e-5))
        assert double.peak_rise == pytest.approx(2.0 * base.peak_rise, rel=1e-9)

    def test_uniform_power_gives_symmetric_map(self, solver):
        result = solver.solve(np.full((10, 10), 1e-5))
        rise = result.rise_map()
        assert np.allclose(rise, rise[::-1, :], rtol=1e-9)
        assert np.allclose(rise, rise[:, ::-1], rtol=1e-9)

    def test_hotspot_is_where_the_power_is(self, solver):
        power = np.zeros((10, 10))
        power[2, 7] = 1e-3
        result = solver.solve(power)
        iy, ix = result.peak_location()
        assert abs(iy - 2) <= 1 and abs(ix - 7) <= 1

    def test_sherman_morrison_matches_dense_solve(self):
        import scipy.sparse.linalg as spla

        grid = ThermalGrid(80.0, 80.0, nx=8, ny=8, package=default_package())
        network = ThermalNetwork(grid)
        power = np.zeros((8, 8))
        power[4, 4] = 2e-4
        rhs = network.power_vector(power)
        reference = spla.spsolve(network.conductance_matrix.tocsc(), rhs)
        fast = ThermalSolver(grid).solve(power)
        ref_active = reference[: grid.num_nodes].reshape(grid.nz, 8, 8)[
            grid.package.active_layer
        ]
        assert np.allclose(
            fast.rise_map(), ref_active, atol=1e-9
        )

    def test_energy_balance(self, solver):
        # At steady state the heat flowing to ambient equals the injected
        # power; check via the package node plus boundary conductances by
        # verifying G @ T == P on the full system.
        power = np.zeros((10, 10))
        power[5, 5] = 1e-4
        network = solver.network
        result = solver.solve(power)
        # Reconstruct full solution vector and verify the residual.
        import scipy.sparse.linalg as spla

        rhs = network.power_vector(power)
        full = spla.spsolve(network.conductance_matrix.tocsc(), rhs)
        residual = network.conductance_matrix @ full - rhs
        assert np.abs(residual).max() < 1e-9


class TestThermalMap:
    def test_metrics(self):
        temps = np.array([[30.0, 31.0], [32.0, 35.0]])
        thermal_map = ThermalMap(temperatures=temps, ambient=25.0)
        assert thermal_map.peak == pytest.approx(35.0)
        assert thermal_map.peak_rise == pytest.approx(10.0)
        assert thermal_map.gradient == pytest.approx(5.0)
        assert thermal_map.peak_location() == (1, 1)
        assert thermal_map.mean_rise == pytest.approx(7.0)

    def test_reduction_versus(self):
        base = ThermalMap(np.array([[45.0]]), ambient=25.0)
        better = ThermalMap(np.array([[41.0]]), ambient=25.0)
        assert better.reduction_versus(base) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            base.reduction_versus(ThermalMap(np.array([[25.0]]), ambient=25.0))

    def test_map_from_solution(self):
        package = default_package()
        grid = ThermalGrid(40.0, 40.0, nx=4, ny=4, package=package)
        solution = np.arange(grid.num_nodes + 1, dtype=float)
        thermal_map = map_from_solution(grid, solution, package_node=grid.num_nodes,
                                        keep_full_field=True)
        assert thermal_map.temperatures.shape == (4, 4)
        assert thermal_map.full_field.shape == (9, 4, 4)
        assert thermal_map.package_temperature == pytest.approx(
            grid.num_nodes + package.ambient_celsius
        )


class TestSimulatePlacement:
    def test_end_to_end_map(self, small_placement, small_power, small_thermal):
        assert small_thermal.peak_rise > 0.5
        assert small_thermal.gradient > 0.0
        assert small_thermal.temperatures.shape == (40, 40)

    def test_hot_units_are_hotter(self, small_placement, small_power, small_thermal,
                                  small_workload):
        # The average temperature over the active units' regions must exceed
        # the average over idle regions.
        regions = small_placement.regions
        floorplan = small_placement.floorplan

        def region_mean(unit):
            rect = regions[unit]
            nx = ny = 40
            bin_w = floorplan.die_width / nx
            bin_h = floorplan.die_height / ny
            ix0 = int((rect.x0 + floorplan.die_margin) / bin_w)
            ix1 = max(ix0 + 1, int((rect.x1 + floorplan.die_margin) / bin_w))
            iy0 = int((rect.y0 + floorplan.die_margin) / bin_h)
            iy1 = max(iy0 + 1, int((rect.y1 + floorplan.die_margin) / bin_h))
            return float(small_thermal.temperatures[iy0:iy1, ix0:ix1].mean())

        active = small_workload.active_units
        idle = [u for u in small_placement.netlist.units() if u not in active]
        active_mean = np.mean([region_mean(u) for u in active])
        idle_mean = np.mean([region_mean(u) for u in idle])
        assert active_mean > idle_mean

    def test_grid_for_placement_covers_die(self, small_placement):
        grid = grid_for_placement(small_placement)
        assert grid.width_um == pytest.approx(small_placement.floorplan.die_width)
        assert grid.height_um == pytest.approx(small_placement.floorplan.die_height)

    def test_leakage_feedback_increases_temperature(self, small_placement, small_activity):
        from repro.power import PowerModel

        model = PowerModel()
        single = simulate_with_leakage_feedback(
            small_placement, small_activity, model, iterations=1
        )
        converged = simulate_with_leakage_feedback(
            small_placement, small_activity, model, iterations=3
        )
        assert converged.peak_rise >= single.peak_rise

    def test_leakage_feedback_validates_iterations(self, small_placement, small_activity):
        from repro.power import PowerModel

        with pytest.raises(ValueError):
            simulate_with_leakage_feedback(
                small_placement, small_activity, PowerModel(), iterations=0
            )
