"""Golden-equivalence suite: staged flow graph versus the monolithic path.

The staged path (:class:`repro.flow.FlowGraph` over a content-addressed
:class:`repro.flow.ArtifactStore`) is only correct if it is *bitwise*
indistinguishable from the monolithic pipeline it decomposes — same
placements, same power maps, same solved temperatures, same timing, for
every registered strategy, whether the artifacts are built cold, replayed
warm from memory, replayed from a fresh process off the disk tier, or
partially invalidated by a mutation.

:class:`~repro.flow.experiment.StrategyOutcome` is a flat dataclass of
floats/ints/strings, so ``==`` between two outcomes is exactly the bitwise
claim: Python float equality holds only for identical IEEE-754 bit
patterns (modulo -0.0/NaN, neither of which these pipelines produce).
"""

from __future__ import annotations

import random

import pytest

from repro.bench import UnitSpec, build_synthetic_circuit, scattered_hotspots_workload
from repro.core.strategy import available_strategies
from repro.flow import (
    ArtifactStore,
    Campaign,
    ExperimentSetup,
    FlowGraph,
    SolverCache,
    evaluate_strategy,
)

# Coarse-but-representative knobs: every stage (placement, logic sim,
# binning, solve, STA) still runs, at a fraction of the paper-sized cost.
NX = NY = 12
CYCLES = 6
BATCH = 8
SEED = 11


def _random_units(rng: random.Random) -> tuple:
    """A small random unit mix (3-5 units, mixed kinds and widths)."""
    kinds = ["array_mult", "wallace_mult", "mac", "rca", "cla", "csa"]
    units = []
    for index in range(rng.randint(3, 5)):
        kind = rng.choice(kinds)
        width = rng.randint(6, 12)
        operands = rng.choice([4, 8])
        units.append(UnitSpec(f"u{index}_{kind}", kind, width, operands=operands))
    return tuple(units)


def _random_circuit(seed: int):
    rng = random.Random(seed)
    return build_synthetic_circuit(units=_random_units(rng), name=f"rand{seed}")


def _prepare(netlist, workload, flow=None, cache=None):
    # prepare() places in-place, so every pipeline gets its own copy of
    # the circuit; content-addressed keys make the copies collide on
    # purpose in the staged runs.
    return ExperimentSetup.prepare(
        netlist.copy(),
        workload,
        grid_nx=NX,
        grid_ny=NY,
        num_cycles=CYCLES,
        batch_size=BATCH,
        seed=SEED,
        cache=cache,
        flow=flow,
    )


@pytest.fixture(scope="module")
def circuits():
    """Two random circuits with their workloads (built once per module)."""
    out = []
    for seed in (3, 17):
        netlist = _random_circuit(seed)
        out.append((netlist, scattered_hotspots_workload(netlist, num_hotspots=2)))
    return out


class TestGoldenEquivalence:
    def test_cold_and_warm_match_monolithic_for_every_strategy(self, circuits):
        """Staged == monolithic for all registered strategies; warm replay
        of a content-equal circuit re-executes nothing and changes nothing."""
        for netlist, workload in circuits:
            mono_setup = _prepare(netlist, workload, cache=SolverCache())
            flow = FlowGraph(store=ArtifactStore())
            staged_setup = _prepare(netlist, workload, flow=flow)

            assert staged_setup.thermal_map.peak == mono_setup.thermal_map.peak
            assert staged_setup.timing.critical_path_ps == (
                mono_setup.timing.critical_path_ps
            )

            for strategy in available_strategies():
                mono = evaluate_strategy(
                    mono_setup, strategy, 0.15, analyze_timing=True
                )
                cold = evaluate_strategy(
                    staged_setup, strategy, 0.15, analyze_timing=True, flow=flow
                )
                assert cold == mono, f"cold staged != monolithic for {strategy}"

            executions_after_cold = dict(flow.stage_executions)
            assert executions_after_cold["synth"] == 1
            assert executions_after_cold["power"] == 1

            # Warm pass: a content-equal copy of the circuit through the
            # same graph must be answered entirely from the store.
            warm_setup = _prepare(netlist, workload, flow=flow)
            for strategy in available_strategies():
                warm = evaluate_strategy(
                    warm_setup, strategy, 0.15, analyze_timing=True, flow=flow
                )
                mono = evaluate_strategy(
                    mono_setup, strategy, 0.15, analyze_timing=True
                )
                assert warm == mono, f"warm staged != monolithic for {strategy}"
            assert dict(flow.stage_executions) == executions_after_cold, (
                "warm replay re-executed stages"
            )

    def test_disk_tier_replay_matches(self, circuits, tmp_path):
        """A fresh graph over the same on-disk store replays every stage
        from disk, bitwise identical, with zero executions."""
        netlist, workload = circuits[0]
        root = tmp_path / "artifacts"

        first = FlowGraph(store=ArtifactStore(root=root))
        setup1 = _prepare(netlist, workload, flow=first)
        cold = evaluate_strategy(setup1, "eri", 0.15, analyze_timing=True, flow=first)

        # New graph, new memory tier, same disk tier — a stand-in for a
        # fresh process pointed at the same cache directory.
        second = FlowGraph(store=ArtifactStore(root=root))
        setup2 = _prepare(netlist, workload, flow=second)
        replay = evaluate_strategy(setup2, "eri", 0.15, analyze_timing=True, flow=second)

        assert replay == cold
        assert setup2.thermal_map.peak == setup1.thermal_map.peak
        assert sum(second.stage_executions.values()) == 0
        assert second.store.stats().disk_hits > 0

    def test_partial_invalidation_reruns_only_downstream(self, circuits):
        """A new overhead invalidates whitespace onward but nothing
        upstream; the partially-warm result still matches a monolithic
        evaluation of the same point."""
        netlist, workload = circuits[1]
        flow = FlowGraph(store=ArtifactStore())
        staged_setup = _prepare(netlist, workload, flow=flow)
        evaluate_strategy(staged_setup, "eri", 0.10, analyze_timing=True, flow=flow)

        before = dict(flow.stage_executions)
        staged = evaluate_strategy(
            staged_setup, "eri", 0.25, analyze_timing=True, flow=flow
        )
        after = dict(flow.stage_executions)

        assert after["synth"] == before["synth"], "overhead change re-ran synth"
        assert after["power"] == before["power"], "overhead change re-ran power"
        assert after["whitespace"] == before["whitespace"] + 1

        mono_setup = _prepare(netlist, workload)
        mono = evaluate_strategy(mono_setup, "eri", 0.25, analyze_timing=True)
        assert staged == mono

    def test_circuit_mutation_invalidates_synth(self, circuits):
        """Editing the circuit changes the synth key: the mutated design
        re-places, and its staged outcome matches its own monolithic run."""
        netlist, _ = circuits[0]
        flow = FlowGraph(store=ArtifactStore())
        workload = scattered_hotspots_workload(netlist, num_hotspots=2)
        _prepare(netlist, workload, flow=flow)
        assert flow.stage_executions["synth"] == 1

        mutated = netlist.copy()
        first_unit = next(iter(mutated.cells.values())).unit
        extra = mutated.add_cell("tweak_inv", "INV_X1", unit=first_unit)
        mutated.connect("tweak_net", extra.pin("A"))
        mutated_workload = scattered_hotspots_workload(mutated, num_hotspots=2)

        staged_setup = _prepare(mutated, mutated_workload, flow=flow)
        assert flow.stage_executions["synth"] == 2

        staged = evaluate_strategy(
            staged_setup, "default", 0.15, analyze_timing=True, flow=flow
        )
        mono_setup = _prepare(mutated, mutated_workload)
        mono = evaluate_strategy(mono_setup, "default", 0.15, analyze_timing=True)
        assert staged == mono


class TestCampaignEquivalence:
    def test_staged_campaign_records_match_monolithic(self, circuits):
        """A flow-backed Campaign grid is record-for-record identical to
        the classic per-point Campaign."""
        netlist, workload = circuits[0]
        strategies = ("default", "eri", "hw")
        overheads = (0.1, 0.2)

        mono_setup = _prepare(netlist, workload, cache=SolverCache())
        mono = Campaign(
            mono_setup,
            strategies=strategies,
            overheads=overheads,
            analyze_timing=True,
            name="mono",
        ).run()

        flow = FlowGraph(store=ArtifactStore())
        staged_setup = _prepare(netlist, workload, flow=flow)
        staged = Campaign(
            staged_setup,
            strategies=strategies,
            overheads=overheads,
            analyze_timing=True,
            name="staged",
            flow=flow,
        ).run()

        assert len(staged.records) == len(mono.records)
        for srec, mrec in zip(staged.records, mono.records):
            assert srec.point == mrec.point
            assert srec.outcome == mrec.outcome

        # The shared prefix ran exactly once for the whole grid.
        assert flow.stage_executions["synth"] == 1
        assert flow.stage_executions["power"] == 1
        assert staged.metadata["flow_stages"]["stage_executions"]["synth"] == 1
