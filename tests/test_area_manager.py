"""Tests for the area-management tool (Figure 2's 'Area Management' box)."""

import pytest

from repro.core import (
    ERI_HOTSPOT_THRESHOLD,
    HW_HOTSPOT_THRESHOLD,
    AreaManagementConfig,
    AreaManager,
    Strategy,
)


class TestStrategy:
    def test_parse_strings(self):
        assert Strategy.parse("default") is Strategy.DEFAULT
        assert Strategy.parse("ERI") is Strategy.EMPTY_ROW_INSERTION
        assert Strategy.parse("hw") is Strategy.HOTSPOT_WRAPPER
        assert Strategy.parse(Strategy.DEFAULT) is Strategy.DEFAULT

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            Strategy.parse("magic")


class TestConfig:
    def test_defaults(self):
        config = AreaManagementConfig()
        assert config.strategy is Strategy.EMPTY_ROW_INSERTION
        assert config.effective_hotspot_threshold == ERI_HOTSPOT_THRESHOLD

    def test_per_strategy_threshold(self):
        eri = AreaManagementConfig(strategy="eri")
        hw = AreaManagementConfig(strategy="hw")
        assert eri.effective_hotspot_threshold == ERI_HOTSPOT_THRESHOLD
        assert hw.effective_hotspot_threshold == HW_HOTSPOT_THRESHOLD
        assert hw.effective_hotspot_threshold > eri.effective_hotspot_threshold

    def test_explicit_threshold_wins(self):
        config = AreaManagementConfig(strategy="hw", hotspot_threshold=0.42)
        assert config.effective_hotspot_threshold == 0.42

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaManagementConfig(area_overhead=-0.1)
        with pytest.raises(ValueError):
            AreaManagementConfig(hotspot_threshold=0.0)
        with pytest.raises(ValueError):
            AreaManagementConfig(strategy="nope")


class TestAreaManager:
    @pytest.fixture(scope="class")
    def inputs(self, small_placement, small_power, small_thermal):
        return small_placement, small_power, small_thermal

    def test_detect_uses_strategy_threshold(self, inputs):
        placement, power, thermal = inputs
        broad = AreaManager(AreaManagementConfig(strategy="eri")).detect(
            placement, thermal, power
        )
        tight = AreaManager(AreaManagementConfig(strategy="hw")).detect(
            placement, thermal, power
        )
        assert sum(h.num_bins for h in broad) >= sum(h.num_bins for h in tight)

    def test_default_strategy_result(self, inputs):
        placement, power, thermal = inputs
        manager = AreaManager(
            AreaManagementConfig(strategy="default", area_overhead=0.15, add_fillers=False)
        )
        result = manager.optimize(placement, power, thermal)
        assert result.strategy is Strategy.DEFAULT
        assert result.actual_overhead >= 0.15 - 1e-9
        assert result.placement is not placement

    def test_eri_strategy_result(self, inputs):
        placement, power, thermal = inputs
        manager = AreaManager(
            AreaManagementConfig(strategy="eri", area_overhead=0.15, add_fillers=False)
        )
        result = manager.optimize(placement, power, thermal)
        assert result.strategy is Strategy.EMPTY_ROW_INSERTION
        assert result.inserted_rows > 0
        assert result.placement.floorplan.num_rows > placement.floorplan.num_rows
        assert result.placement.check_legal() == []

    def test_hw_strategy_result(self, inputs):
        placement, power, thermal = inputs
        manager = AreaManager(
            AreaManagementConfig(strategy="hw", area_overhead=0.15, add_fillers=False)
        )
        result = manager.optimize(placement, power, thermal)
        assert result.strategy is Strategy.HOTSPOT_WRAPPER
        # HW starts from the Default solution, so the core grew.
        assert result.actual_overhead >= 0.15 - 1e-9
        assert result.placement.check_legal() == []

    def test_optimize_and_resimulate(self, inputs):
        placement, power, thermal = inputs
        manager = AreaManager(
            AreaManagementConfig(strategy="eri", area_overhead=0.2, add_fillers=False)
        )
        result, new_map = manager.optimize_and_resimulate(placement, power, thermal)
        assert new_map.peak_rise > 0.0
        assert new_map.peak_rise < thermal.peak_rise

    def test_pre_detected_hotspots_accepted(self, inputs):
        placement, power, thermal = inputs
        manager = AreaManager(AreaManagementConfig(strategy="eri", area_overhead=0.1,
                                                   add_fillers=False))
        hotspots = manager.detect(placement, thermal, power)
        result = manager.optimize(placement, power, thermal, hotspots=hotspots)
        assert result.hotspots == hotspots
