"""The ``repro serve`` daemon: protocol, dedupe, cross-request batching."""

from __future__ import annotations

import threading

import pytest

from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.flow import Campaign, ExperimentSetup, ResultStore
from repro.service import ServiceError, SweepClient, SweepServer, request_once
from repro.service.server import PROTOCOL

NX = NY = 16
STRATEGIES = ("default", "eri")
OVERHEADS = (0.1, 0.2)


def _prepare(seed: int = 11) -> ExperimentSetup:
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=seed,
    )


@pytest.fixture(scope="module")
def served_setup():
    return _prepare()


@pytest.fixture(scope="module")
def reference_result(served_setup):
    """In-process batched campaign the served records must match bitwise."""
    return Campaign(
        served_setup, STRATEGIES, OVERHEADS, name="ref", batch_solves=True
    ).run(max_workers=1)


@pytest.fixture()
def server(served_setup, tmp_path):
    instance = SweepServer(
        {served_setup.workload.name: served_setup},
        result_store=ResultStore(root=tmp_path / "results"),
        port=0,
    )
    with instance:
        yield instance


@pytest.fixture()
def client(server):
    host, port = server.address
    return SweepClient(host=host, port=port)


class TestProtocol:
    def test_ping_reports_protocol_and_workloads(self, server, client, served_setup):
        response = client.ping()
        assert response["protocol"] == PROTOCOL
        assert response["workloads"] == [served_setup.workload.name]
        assert server.address[1] != 0  # port 0 resolved to a real port

    def test_stats_op(self, client):
        stats = client.stats()
        assert stats["requests"] == 0
        assert "result_store" in stats and "solver_cache" in stats

    def test_malformed_and_unknown_requests(self, server):
        host, port = server.address
        assert not request_once(host, port, {"op": "warp"})["ok"]
        response = request_once(host, port, {"op": "sweep"})
        assert not response["ok"] and "workload" in response["error"]

    def test_sweep_validation_errors(self, client, served_setup):
        name = served_setup.workload.name
        with pytest.raises(ServiceError, match="unknown workload"):
            client.sweep("nope", STRATEGIES, OVERHEADS)
        with pytest.raises(ServiceError, match="bad sweep spec"):
            client.sweep(name, ["no-such-strategy"], OVERHEADS)
        with pytest.raises(ServiceError, match="strategies and overheads"):
            client.sweep(name, [], OVERHEADS)

    def test_shutdown_op(self, served_setup, tmp_path):
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            result_store=ResultStore(root=tmp_path / "shut"),
            port=0,
        )
        instance.start()
        host, port = instance.address
        SweepClient(host=host, port=port).shutdown_server()
        instance._serve_thread.join(timeout=10.0)
        assert not instance._serve_thread.is_alive()


class TestServedSweeps:
    def test_served_records_match_in_process_bitwise(
        self, client, served_setup, reference_result
    ):
        result, stats = client.sweep(
            served_setup.workload.name, STRATEGIES, OVERHEADS
        )
        assert stats["computed"] == 4 and stats["store_hits"] == 0
        assert len(result.records) == 4
        for ours, reference in zip(result.records, reference_result.records):
            assert ours.point == reference.point
            assert ours.outcome == reference.outcome  # survives JSON wire

    def test_repeat_sweep_served_from_store(self, client, served_setup):
        name = served_setup.workload.name
        client.sweep(name, STRATEGIES, OVERHEADS)
        _result, stats = client.sweep(name, STRATEGIES, OVERHEADS)
        assert stats["store_hits"] == 4
        assert stats["computed"] == 0
        assert stats["server"]["points_solved"] == 4  # lifetime, not 8

    def test_store_prewarms_server(self, served_setup, tmp_path):
        store = ResultStore(root=tmp_path / "prewarm")
        Campaign(
            served_setup, STRATEGIES, OVERHEADS, result_store=store
        ).run(max_workers=1)
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            result_store=ResultStore(root=tmp_path / "prewarm"),
            port=0,
        )
        with instance:
            host, port = instance.address
            _result, stats = SweepClient(host=host, port=port).sweep(
                served_setup.workload.name, STRATEGIES, OVERHEADS
            )
        assert stats["store_hits"] == 4 and stats["computed"] == 0

    def test_concurrent_overlapping_sweeps_batch_and_join(
        self, served_setup, tmp_path, reference_result
    ):
        """Two overlapping clients: shared points join in flight, and the
        union solves in fewer geometry groups than it has points."""
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            result_store=ResultStore(root=tmp_path / "conc"),
            port=0,
            batch_window_s=0.3,  # generous: let both requests land in one batch
        )
        name = served_setup.workload.name
        with instance:
            host, port = instance.address
            results = {}

            def submit(tag, strategies, overheads):
                client = SweepClient(host=host, port=port)
                results[tag] = client.sweep(name, strategies, overheads)

            # Overlap: both grids contain (eri, 0.1) and (eri, 0.2).
            threads = [
                threading.Thread(
                    target=submit, args=("a", ("default", "eri"), OVERHEADS)
                ),
                threading.Thread(
                    target=submit, args=("b", ("eri", "hw"), OVERHEADS)
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = instance.stats()

        assert set(results) == {"a", "b"}
        # 8 requested points over 6 unique: the 2 shared points were
        # computed once (in-flight join or store hit, depending on timing).
        assert stats["points_requested"] == 8
        assert stats["points_solved"] == 6
        assert stats["inflight_joins"] + stats["result_store"]["hits"] >= 2
        # Cross-request geometry batching: fewer solve groups than points.
        assert 0 < stats["num_solve_groups"] < stats["points_solved"]

        # Both clients got records bitwise-identical to a local campaign.
        for tag in ("a", "b"):
            result, _stats = results[tag]
            for record in result.records:
                reference = reference_result.find(
                    record.point.strategy, record.point.overhead
                )
                if reference is not None:
                    assert record.outcome == reference.outcome
