"""Shared fixtures for the test suite.

Expensive artefacts (the scaled-down synthetic benchmark, its placement,
activity and power) are built once per session; tests that mutate state
always work on copies.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.netlist import Netlist, default_library
from repro.placement import place_design
from repro.power import PowerModel, estimate_activity
from repro.thermal import default_package, simulate_placement


def pytest_collection_modifyitems(config, items):
    """Optionally shuffle the collected test order.

    Setting ``REPRO_TEST_SHUFFLE_SEED=<int>`` runs the suite in a
    seed-deterministic random order, so hidden inter-test coupling (shared
    mutable fixtures, leaked module state, order-dependent caches) shows up
    in CI instead of in a user's tree.  Unset, the order is untouched.
    """
    seed = os.environ.get("REPRO_TEST_SHUFFLE_SEED")
    if not seed:
        return
    rng = random.Random(int(seed))
    rng.shuffle(items)
    reporter = config.pluginmanager.get_plugin("terminalreporter")
    if reporter is not None:
        reporter.write_line(f"test order shuffled with seed {seed}")


@pytest.fixture(scope="session")
def library():
    """The default 65 nm-class cell library."""
    return default_library()


@pytest.fixture()
def empty_netlist(library):
    """A fresh, empty netlist."""
    return Netlist("empty", library)


@pytest.fixture()
def tiny_netlist(library):
    """A tiny hand-built design: two inverters driving a NAND into a DFF.

    Structure::

        in_a -> INV u1 -> n1 --\
                                NAND u3 -> n3 -> DFF u4 -> q -> out_q
        in_b -> INV u2 -> n2 --/
    """
    netlist = Netlist("tiny", library)
    netlist.add_port("in_a", "input")
    netlist.add_port("in_b", "input")
    netlist.add_port("out_q", "output")

    u1 = netlist.add_cell("u1", "INV_X1", unit="left")
    u2 = netlist.add_cell("u2", "INV_X1", unit="left")
    u3 = netlist.add_cell("u3", "NAND2_X1", unit="right")
    u4 = netlist.add_cell("u4", "DFF_X1", unit="right")

    netlist.connect_port("in_a", "in_a")
    netlist.connect("in_a", u1.pin("A"))
    netlist.connect_port("in_b", "in_b")
    netlist.connect("in_b", u2.pin("A"))

    netlist.connect("n1", u1.pin("Y"))
    netlist.connect("n1", u3.pin("A"))
    netlist.connect("n2", u2.pin("Y"))
    netlist.connect("n2", u3.pin("B"))
    netlist.connect("n3", u3.pin("Y"))
    netlist.connect("n3", u4.pin("D"))
    netlist.connect("q", u4.pin("Q"))
    netlist.connect_port("q", "out_q")
    return netlist


@pytest.fixture(scope="session")
def small_circuit():
    """The scaled-down nine-unit synthetic benchmark (read-only)."""
    return small_synthetic_circuit()


@pytest.fixture(scope="session")
def small_placement(small_circuit):
    """A placement of the small benchmark at 0.85 utilization (read-only)."""
    return place_design(small_circuit, utilization=0.85)


@pytest.fixture(scope="session")
def small_workload(small_circuit, small_placement):
    """Scattered-hotspot workload for the small benchmark."""
    return scattered_hotspots_workload(small_circuit, regions=small_placement.regions)


@pytest.fixture(scope="session")
def small_activity(small_circuit, small_workload):
    """Switching activity of the small benchmark under the workload."""
    return estimate_activity(
        small_circuit,
        small_workload.port_toggle_probabilities(small_circuit),
        num_cycles=10,
        batch_size=8,
        seed=7,
    )


@pytest.fixture(scope="session")
def small_power(small_circuit, small_activity):
    """Cell-by-cell power report of the small benchmark."""
    return PowerModel().estimate(small_circuit, small_activity)


@pytest.fixture(scope="session")
def small_thermal(small_placement, small_power):
    """Thermal map of the small benchmark's baseline placement."""
    return simulate_placement(small_placement, small_power, package=default_package())
