"""Process-sharded campaign execution: shared-memory packing + parity."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.flow import Campaign, ExperimentSetup, FlowGraph, ResultStore
from repro.flow.shard import attach_setups, pack_setups

NX = NY = 16
STRATEGIES = ("default", "eri")
OVERHEADS = (0.1, 0.2)


@pytest.fixture(scope="module")
def shard_setup():
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=11,
    )


@pytest.fixture(scope="module")
def serial_result(shard_setup):
    return Campaign(
        shard_setup, STRATEGIES, OVERHEADS, name="serial"
    ).run(max_workers=1)


class TestPacking:
    def test_roundtrip_restores_arrays_bitwise(self, shard_setup):
        setups = {"wl": shard_setup}
        original_power = shard_setup.power_map.power_w.copy()
        original_temps = shard_setup.thermal_map.temperatures.copy()

        segments, skeleton, specs = pack_setups(setups)
        try:
            # The live setups must be intact after packing.
            np.testing.assert_array_equal(
                shard_setup.power_map.power_w, original_power
            )
            np.testing.assert_array_equal(
                shard_setup.thermal_map.temperatures, original_temps
            )
            attached, attached_segments = attach_setups(skeleton, specs)
            try:
                clone = attached["wl"]
                np.testing.assert_array_equal(
                    clone.power_map.power_w, original_power
                )
                np.testing.assert_array_equal(
                    clone.thermal_map.temperatures, original_temps
                )
                # Attached views are read-only windows on shared pages.
                assert not clone.power_map.power_w.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    clone.power_map.power_w[0] = 0.0
            finally:
                for segment in attached_segments:
                    segment.close()
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()

    def test_skeleton_excludes_shared_arrays(self, shard_setup):
        setups = {"wl": shard_setup}
        baseline = len(pickle.dumps(setups, protocol=pickle.HIGHEST_PROTOCOL))
        segments, skeleton, specs = pack_setups(setups)
        try:
            shared_bytes = sum(
                int(np.prod(shape)) * np.dtype(dtype).itemsize
                for entries in specs.values()
                for _oa, _aa, _name, shape, dtype in entries
            )
            assert shared_bytes > 0
            assert len(skeleton) < baseline
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()


class TestShardedCampaign:
    def test_constructor_validation(self, shard_setup):
        with pytest.raises(ValueError, match="executor"):
            Campaign(shard_setup, STRATEGIES, OVERHEADS, executor="mpi")
        with pytest.raises(ValueError, match="batch_solves"):
            Campaign(
                shard_setup, STRATEGIES, OVERHEADS,
                executor="process", batch_solves=True,
            )
        with pytest.raises(ValueError, match="flow"):
            Campaign(
                shard_setup, STRATEGIES, OVERHEADS,
                executor="process", flow=FlowGraph(),
            )

    def test_sharded_matches_serial_bitwise(self, shard_setup, serial_result):
        sharded = Campaign(
            shard_setup, STRATEGIES, OVERHEADS,
            executor="process", name="sharded",
        ).run(max_workers=2)
        assert sharded.metadata["executor"] == "process"
        assert len(sharded.records) == len(serial_result.records)
        for ours, reference in zip(sharded.records, serial_result.records):
            assert ours.point == reference.point
            assert ours.outcome == reference.outcome  # bitwise, not approx

    def test_sharded_publishes_and_resumes(self, shard_setup, serial_result, tmp_path):
        store = ResultStore(root=tmp_path / "results")
        first = Campaign(
            shard_setup, STRATEGIES, OVERHEADS,
            executor="process", result_store=store, name="cold",
        ).run(max_workers=2)
        assert first.metadata["store_hits"] == 0
        assert first.metadata["num_evaluated"] == 4

        # A fresh store instance over the same root resumes from disk —
        # and a *thread* campaign can consume process-published records.
        warm = Campaign(
            shard_setup, STRATEGIES, OVERHEADS,
            result_store=ResultStore(root=tmp_path / "results"), name="warm",
        ).run(max_workers=2)
        assert warm.metadata["num_evaluated"] == 0
        assert warm.metadata["store_hits"] == 4
        for ours, reference in zip(warm.records, serial_result.records):
            assert ours.outcome == reference.outcome

    def test_worker_failure_raises(self, shard_setup):
        campaign = Campaign(
            shard_setup, ("eri",), (0.1,), executor="process", name="boom",
            fail_fast=True,
        )
        # Corrupt the grid after validation: the worker-side resolver
        # rejects the spec and the parent must surface that, not hang.
        campaign.strategies = ("no-such-strategy",)
        with pytest.raises(RuntimeError, match="shard worker failed"):
            campaign.run(max_workers=1)

    def test_worker_failure_quarantines_by_default(self, shard_setup):
        campaign = Campaign(
            shard_setup, ("eri",), (0.1,), executor="process", name="boom-soft"
        )
        campaign.strategies = ("no-such-strategy",)
        result = campaign.run(max_workers=1)
        assert result.records == []
        failed = result.failed_points
        assert len(failed) == 1
        assert failed[0]["strategy"] == "no-such-strategy"
        assert "no-such-strategy" in failed[0]["error"]
