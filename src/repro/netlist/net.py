"""Nets connecting cell pins and primary ports."""

from __future__ import annotations

from typing import List, Optional

from .cell import Pin
from .library import ROW_HEIGHT

#: Precomputed half row height: every cell centre is at ``y + ROW_HEIGHT/2``.
_HALF_ROW = ROW_HEIGHT / 2.0


class Port:
    """A primary input or output of the design.

    Ports behave like off-die connections: they have a direction (seen from
    the design, so a primary *input* port drives a net) and, once the
    floorplan is known, a position on the die boundary used for wirelength
    estimation.
    """

    __slots__ = ("name", "direction", "net", "x", "y")

    def __init__(self, name: str, direction: str) -> None:
        if direction not in ("input", "output"):
            raise ValueError(f"invalid port direction {direction!r}")
        self.name = name
        self.direction = direction
        self.net: Optional["Net"] = None
        self.x: Optional[float] = None
        self.y: Optional[float] = None

    @property
    def is_input(self) -> bool:
        return self.direction == "input"

    @property
    def is_output(self) -> bool:
        return self.direction == "output"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name}, {self.direction})"


class Net:
    """A signal net.

    A net has at most one driver (a cell output pin or a primary input port)
    and any number of sinks (cell input pins and primary output ports).
    """

    __slots__ = ("name", "driver_pin", "driver_port", "sink_pins", "sink_ports")

    def __init__(self, name: str) -> None:
        self.name = name
        self.driver_pin: Optional[Pin] = None
        self.driver_port: Optional[Port] = None
        self.sink_pins: List[Pin] = []
        self.sink_ports: List[Port] = []

    # -- construction --------------------------------------------------------

    def set_driver(self, pin: Pin) -> None:
        """Attach a cell output pin as the net driver.

        Raises:
            ValueError: If the net already has a driver or the pin is not an
                output pin.
        """
        if not pin.is_output:
            raise ValueError(f"net {self.name}: driver pin {pin.full_name} is not an output")
        if self.driver_pin is not None or self.driver_port is not None:
            raise ValueError(f"net {self.name} already has a driver")
        self.driver_pin = pin
        pin.net = self

    def set_driver_port(self, port: Port) -> None:
        """Attach a primary input port as the net driver."""
        if not port.is_input:
            raise ValueError(f"net {self.name}: port {port.name} is not a primary input")
        if self.driver_pin is not None or self.driver_port is not None:
            raise ValueError(f"net {self.name} already has a driver")
        self.driver_port = port
        port.net = self

    def add_sink(self, pin: Pin) -> None:
        """Attach a cell input pin as a net sink."""
        if not pin.is_input:
            raise ValueError(f"net {self.name}: sink pin {pin.full_name} is not an input")
        self.sink_pins.append(pin)
        pin.net = self

    def add_sink_port(self, port: Port) -> None:
        """Attach a primary output port as a net sink."""
        if not port.is_output:
            raise ValueError(f"net {self.name}: port {port.name} is not a primary output")
        self.sink_ports.append(port)
        port.net = self

    # -- queries -------------------------------------------------------------

    @property
    def has_driver(self) -> bool:
        return self.driver_pin is not None or self.driver_port is not None

    @property
    def num_sinks(self) -> int:
        return len(self.sink_pins) + len(self.sink_ports)

    @property
    def num_terminals(self) -> int:
        """Total number of pin/port terminals on the net."""
        return self.num_sinks + (1 if self.has_driver else 0)

    def terminals_xy(self) -> List[tuple]:
        """Return the ``(x, y)`` coordinates of all placed terminals.

        Cell terminals use the cell centre; port terminals use the port
        position when assigned.  Unplaced terminals are skipped.
        """
        points: List[tuple] = []
        if self.driver_pin is not None and self.driver_pin.cell.is_placed:
            points.append(self.driver_pin.cell.center)
        if self.driver_port is not None and self.driver_port.x is not None:
            points.append((self.driver_port.x, self.driver_port.y))
        for pin in self.sink_pins:
            if pin.cell.is_placed:
                points.append(pin.cell.center)
        for port in self.sink_ports:
            if port.x is not None:
                points.append((port.x, port.y))
        return points

    def hpwl(self) -> float:
        """Half-perimeter wirelength of the net over its placed terminals.

        Single-pass over the terminals without building the point list;
        this runs in the innermost loop of the detailed placer.

        Returns:
            The HPWL in micrometres, or 0.0 if fewer than two terminals are
            placed.
        """
        min_x = min_y = float("inf")
        max_x = max_y = float("-inf")
        count = 0

        pin = self.driver_pin
        if pin is not None:
            cell = pin.cell
            if cell.x is not None and cell.y is not None:
                x = cell.x + cell.width / 2.0
                y = cell.y + _HALF_ROW
                min_x = max_x = x
                min_y = max_y = y
                count = 1
        port = self.driver_port
        if port is not None and port.x is not None:
            x, y = port.x, port.y
            min_x = x if x < min_x else min_x
            max_x = x if x > max_x else max_x
            min_y = y if y < min_y else min_y
            max_y = y if y > max_y else max_y
            count += 1
        for pin in self.sink_pins:
            cell = pin.cell
            if cell.x is None or cell.y is None:
                continue
            x = cell.x + cell.width / 2.0
            y = cell.y + _HALF_ROW
            min_x = x if x < min_x else min_x
            max_x = x if x > max_x else max_x
            min_y = y if y < min_y else min_y
            max_y = y if y > max_y else max_y
            count += 1
        for port in self.sink_ports:
            if port.x is None:
                continue
            x, y = port.x, port.y
            min_x = x if x < min_x else min_x
            max_x = x if x > max_x else max_x
            min_y = y if y < min_y else min_y
            max_y = y if y > max_y else max_y
            count += 1

        if count < 2:
            return 0.0
        return (max_x - min_x) + (max_y - min_y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, sinks={self.num_sinks})"
