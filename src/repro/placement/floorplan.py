"""Floorplan: core area, rows and per-unit regions.

The paper works in a fixed-outline, row-based standard-cell context: the
core is a rectangle of placement rows, the total cell area divided by the
core area is the *utilization factor*, and whitespace is whatever fraction
of the rows is not covered by logic cells.

This module provides:

* :class:`Rect` — an axis-aligned rectangle helper.
* :class:`Floorplan` — core outline, row geometry and die margin.
* :func:`slicing_partition` — a recursive slicing partition of the core into
  one rectangular region per logical unit, with region areas proportional to
  the unit cell areas.  This mimics the block-level organisation a
  hierarchical commercial placement (the paper uses IC Compiler) produces
  for a design made of nine arithmetic units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..netlist import ROW_HEIGHT, SITE_WIDTH, Netlist


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x0, x1) x [y0, y1)`` in micrometres."""

    x0: float
    y0: float
    x1: float
    y1: float

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """``True`` if the point lies inside the rectangle."""
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def overlaps(self, other: "Rect") -> bool:
        """``True`` if the two rectangles share any area."""
        return not (
            self.x1 <= other.x0
            or other.x1 <= self.x0
            or self.y1 <= other.y0
            or other.y1 <= self.y0
        )

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(self.x0 - margin, self.y0 - margin, self.x1 + margin, self.y1 + margin)

    def clipped(self, bounds: "Rect") -> "Rect":
        """Return this rectangle clipped to ``bounds``."""
        return Rect(
            max(self.x0, bounds.x0),
            max(self.y0, bounds.y0),
            min(self.x1, bounds.x1),
            min(self.y1, bounds.y1),
        )


@dataclass
class Floorplan:
    """Core outline and row geometry of a fixed-outline standard-cell design.

    Attributes:
        core_width: Core width in micrometres (multiple of the site width).
        core_height: Core height in micrometres (multiple of the row height).
        row_height: Placement row height in micrometres.
        site_width: Placement site width in micrometres.
        die_margin: Margin between the core and the die edge (pad ring /
            IO area) on each side, in micrometres.  The thermal footprint is
            the die, i.e. the core plus this margin.
    """

    core_width: float
    core_height: float
    row_height: float = ROW_HEIGHT
    site_width: float = SITE_WIDTH
    die_margin: float = 15.0

    @property
    def num_rows(self) -> int:
        """Number of placement rows in the core."""
        return int(round(self.core_height / self.row_height))

    @property
    def sites_per_row(self) -> int:
        """Number of placement sites in each row."""
        return int(round(self.core_width / self.site_width))

    @property
    def core_area(self) -> float:
        """Core area in square micrometres."""
        return self.core_width * self.core_height

    @property
    def core_rect(self) -> Rect:
        """The core rectangle with its origin at (0, 0)."""
        return Rect(0.0, 0.0, self.core_width, self.core_height)

    @property
    def die_width(self) -> float:
        """Die width (core plus margins) in micrometres."""
        return self.core_width + 2.0 * self.die_margin

    @property
    def die_height(self) -> float:
        """Die height (core plus margins) in micrometres."""
        return self.core_height + 2.0 * self.die_margin

    @property
    def die_area(self) -> float:
        """Die area in square micrometres."""
        return self.die_width * self.die_height

    def row_y(self, row: int) -> float:
        """Bottom y coordinate of placement row ``row``."""
        if row < 0 or row >= self.num_rows:
            raise IndexError(f"row {row} out of range [0, {self.num_rows})")
        return row * self.row_height

    def row_of_y(self, y: float) -> int:
        """Index of the row whose span contains coordinate ``y`` (clamped)."""
        row = int(math.floor(y / self.row_height))
        return min(max(row, 0), self.num_rows - 1)

    def snap_x(self, x: float) -> float:
        """Snap an x coordinate to the nearest site boundary inside the core."""
        snapped = round(x / self.site_width) * self.site_width
        return min(max(snapped, 0.0), self.core_width)

    def with_extra_rows(self, extra_rows: int) -> "Floorplan":
        """Return a floorplan with ``extra_rows`` additional rows (taller core)."""
        if extra_rows < 0:
            raise ValueError("extra_rows must be non-negative")
        return Floorplan(
            core_width=self.core_width,
            core_height=self.core_height + extra_rows * self.row_height,
            row_height=self.row_height,
            site_width=self.site_width,
            die_margin=self.die_margin,
        )

    @classmethod
    def from_netlist(
        cls,
        netlist: Netlist,
        utilization: float,
        aspect_ratio: float = 1.0,
        row_height: float = ROW_HEIGHT,
        site_width: float = SITE_WIDTH,
        die_margin: float = 15.0,
    ) -> "Floorplan":
        """Size a floorplan so the netlist reaches the target utilization.

        Args:
            netlist: The design to floorplan (filler cells ignored).
            utilization: Target utilization factor, ``total cell area /
                core area``; must be in ``(0, 1]``.
            aspect_ratio: Desired core height / width ratio.
            row_height: Placement row height in micrometres.
            site_width: Placement site width in micrometres.
            die_margin: Pad-ring margin on each side in micrometres.

        Returns:
            A :class:`Floorplan` whose dimensions are snapped to whole rows
            and sites and whose utilization does not exceed the target.
        """
        if not 0.0 < utilization <= 1.0:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        cell_area = netlist.total_cell_area(include_fillers=False)
        if cell_area <= 0.0:
            raise ValueError("netlist has no placeable cell area")
        core_area = cell_area / utilization
        width = math.sqrt(core_area / aspect_ratio)
        height = core_area / width
        # Snap up so the real utilization never exceeds the target.
        num_rows = max(1, math.ceil(height / row_height))
        num_sites = max(1, math.ceil(width / site_width))
        return cls(
            core_width=num_sites * site_width,
            core_height=num_rows * row_height,
            row_height=row_height,
            site_width=site_width,
            die_margin=die_margin,
        )

    def utilization(self, netlist: Netlist) -> float:
        """Actual utilization of ``netlist`` on this floorplan."""
        return netlist.total_cell_area(include_fillers=False) / self.core_area


def slicing_partition(
    bounds: Rect, unit_areas: Dict[str, float], pad_factor: float = 1.0
) -> Dict[str, Rect]:
    """Partition a rectangle into one region per unit, areas proportional.

    A recursive slicing partition: the unit list (sorted by decreasing area)
    is split into two groups of roughly equal total area, the rectangle is
    cut along its longer edge proportionally to the group areas, and each
    half is partitioned recursively.

    Args:
        bounds: Rectangle to partition.
        unit_areas: Mapping unit name -> cell area (must be positive).
        pad_factor: Reserved for future use (uniform inflation); regions
            always tile ``bounds`` exactly.

    Returns:
        Mapping unit name -> :class:`Rect`, tiling ``bounds``.

    Raises:
        ValueError: If ``unit_areas`` is empty or contains non-positive areas.
    """
    if not unit_areas:
        raise ValueError("unit_areas must not be empty")
    for unit, area in unit_areas.items():
        if area <= 0.0:
            raise ValueError(f"unit {unit!r} has non-positive area {area}")

    result: Dict[str, Rect] = {}

    def recurse(rect: Rect, units: List[Tuple[str, float]]) -> None:
        if len(units) == 1:
            result[units[0][0]] = rect
            return
        total = sum(area for _, area in units)
        # Greedy balanced split of the (sorted) unit list.
        group_a: List[Tuple[str, float]] = []
        group_b: List[Tuple[str, float]] = []
        area_a = area_b = 0.0
        for unit, area in units:
            if area_a <= area_b:
                group_a.append((unit, area))
                area_a += area
            else:
                group_b.append((unit, area))
                area_b += area
        frac = area_a / total
        if rect.width >= rect.height:
            cut = rect.x0 + rect.width * frac
            recurse(Rect(rect.x0, rect.y0, cut, rect.y1), group_a)
            recurse(Rect(cut, rect.y0, rect.x1, rect.y1), group_b)
        else:
            cut = rect.y0 + rect.height * frac
            recurse(Rect(rect.x0, rect.y0, rect.x1, cut), group_a)
            recurse(Rect(rect.x0, cut, rect.x1, rect.y1), group_b)

    ordered = sorted(unit_areas.items(), key=lambda item: -item[1])
    recurse(bounds, ordered)
    return result
