"""Three-dimensional thermal grid (mesh of thermal cells).

The die footprint is discretized into ``nx`` x ``ny`` thermal cells per
layer and ``nz`` layers in the z direction (the paper uses 40 x 40 x 9).
Each grid node represents the temperature at the centre of one thermal cell
(Figure 1 of the paper); this module only handles geometry and indexing,
the electrical analogy lives in :mod:`repro.thermal.network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .package import Package


@dataclass
class ThermalGrid:
    """Geometry and node indexing of the thermal mesh.

    Attributes:
        width_um: Die width (x extent) in micrometres.
        height_um: Die height (y extent) in micrometres.
        nx: Number of cells in x (the paper uses 40).
        ny: Number of cells in y (the paper uses 40).
        package: The layer stack; supplies the z discretization.
    """

    width_um: float
    height_um: float
    nx: int
    ny: int
    package: Package

    def __post_init__(self) -> None:
        if self.width_um <= 0 or self.height_um <= 0:
            raise ValueError("grid extents must be positive")
        if self.nx < 2 or self.ny < 2:
            raise ValueError("grid must have at least 2 cells per lateral direction")

    # -- derived geometry ----------------------------------------------------

    @property
    def nz(self) -> int:
        """Number of layers in z."""
        return self.package.num_layers

    @property
    def num_nodes(self) -> int:
        """Total number of grid nodes."""
        return self.nx * self.ny * self.nz

    @property
    def dx_m(self) -> float:
        """Cell pitch in x, metres."""
        return self.width_um * 1e-6 / self.nx

    @property
    def dy_m(self) -> float:
        """Cell pitch in y, metres."""
        return self.height_um * 1e-6 / self.ny

    def dz_m(self, layer: int) -> float:
        """Thickness of ``layer`` in metres."""
        return self.package.layers[layer].thickness_m

    def conductivity(self, layer: int) -> float:
        """Thermal conductivity of ``layer`` in W/(m*K)."""
        return self.package.layers[layer].conductivity

    @property
    def cell_area_m2(self) -> float:
        """Top-view area of one thermal cell in square metres."""
        return self.dx_m * self.dy_m

    # -- node indexing -------------------------------------------------------

    def node_index(self, layer: int, iy: int, ix: int) -> int:
        """Flat node index of cell ``(layer, iy, ix)``.

        Raises:
            IndexError: If any coordinate is out of range.
        """
        if not (0 <= layer < self.nz and 0 <= iy < self.ny and 0 <= ix < self.nx):
            raise IndexError(f"node ({layer}, {iy}, {ix}) out of range")
        return (layer * self.ny + iy) * self.nx + ix

    def node_coords(self, index: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`node_index`: returns ``(layer, iy, ix)``."""
        if not 0 <= index < self.num_nodes:
            raise IndexError(f"node index {index} out of range")
        layer, rest = divmod(index, self.nx * self.ny)
        iy, ix = divmod(rest, self.nx)
        return layer, iy, ix

    def iter_layer_nodes(self, layer: int) -> Iterator[int]:
        """Iterate flat node indices of one layer, row-major."""
        base = layer * self.nx * self.ny
        return iter(range(base, base + self.nx * self.ny))

    def active_layer_offset(self) -> int:
        """Flat index of the first node of the active (power) layer."""
        return self.package.active_layer * self.nx * self.ny

    @classmethod
    def for_die(
        cls, die_width_um: float, die_height_um: float, package: Package,
        nx: int = 40, ny: int = 40,
    ) -> "ThermalGrid":
        """Build the standard 40x40 grid over a die outline."""
        return cls(width_um=die_width_um, height_um=die_height_um, nx=nx, ny=ny,
                   package=package)
