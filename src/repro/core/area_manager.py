"""The area-management tool (Figure 2 of the paper).

"The initial thermal map, together with the placed netlist info and a
user-specified area overhead, are processed by our area management tool,
which, using one of the two strategies, yields a modified placed netlist
with better thermal properties."

:class:`AreaManager` is that tool: it takes the placed design, the cell-by-
cell power report and the thermal map, detects the hotspots, and applies
the requested strategy.  Strategies are plugins resolved through
:mod:`repro.core.strategy` — the built-ins are ``default`` (uniform
utilization relaxation), ``eri`` (empty row insertion), ``hw`` (hotspot
wrapper on top of the Default solution, as in the paper's Figure 6),
``hybrid`` (ERI then wrapper) and ``gradient`` (row-temperature-
proportional whitespace) — and anything registered via
:func:`~repro.core.strategy.register_strategy` plugs in the same way.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Sequence, Union

from ..placement import Placement
from ..power import PowerReport
from ..thermal import Package, ThermalMap, simulate_placement
from .builtin_strategies import ERI_HOTSPOT_THRESHOLD, HW_HOTSPOT_THRESHOLD
from .hotspot import Hotspot, detect_hotspots, project_hotspots
from .strategy import (
    StrategyContext,
    StrategySpec,
    WhitespaceStrategy,
    available_strategies,
    resolve_strategy,
)

_DEPRECATION_MESSAGE = (
    "the Strategy enum is deprecated; pass a strategy spec string such as "
    "'eri' or 'hw:ring_um=8' (see repro.core.strategy.resolve_strategy)"
)


class Strategy(str, Enum):
    """Deprecated closed enum of the paper's three strategies.

    Kept as a thin shim so old call sites keep working: members are plain
    strings, so anywhere a spec is accepted a member resolves through the
    open registry.  New strategies (``hybrid``, ``gradient``, third-party
    plugins) are *not* members — address them by spec string instead.
    """

    DEFAULT = "default"
    EMPTY_ROW_INSERTION = "eri"
    HOTSPOT_WRAPPER = "hw"

    @classmethod
    def parse(cls, value: "Strategy | str") -> "Strategy":
        """Accept either a :class:`Strategy` or its string value.

        .. deprecated:: use :func:`repro.core.strategy.resolve_strategy`,
           which also understands parameterized specs and registered
           third-party strategies.

        Raises:
            TypeError: If ``value`` is neither a str nor a Strategy.
            ValueError: If the name is not a registered strategy, or is
                registered but not representable as this closed enum.
        """
        warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        if isinstance(value, Strategy):
            return value
        if not isinstance(value, str):
            raise TypeError(
                f"strategy must be a str or Strategy, got {type(value).__name__}"
            )
        name = value.lower()
        try:
            return cls(name)
        except ValueError:
            registered = available_strategies()
            if name in registered:
                raise ValueError(
                    f"strategy {value!r} is registered but has no Strategy enum "
                    f"member; resolve it with repro.core.resolve_strategy instead"
                ) from None
            raise ValueError(
                f"unknown strategy {value!r}; registered strategies: "
                f"{', '.join(registered)}"
            ) from None


def _as_enum_or_name(name: str) -> "Strategy | str":
    """The enum member for builtin names, the plain name otherwise."""
    try:
        return Strategy(name)
    except ValueError:
        return name


@dataclass
class AreaManagementConfig:
    """Configuration of the area-management tool.

    Attributes:
        area_overhead: User-specified fractional area overhead.
        strategy: Whitespace-allocation strategy spec — a registered name
            (``"eri"``), a parameterized spec (``"hw:ring_um=8"``), a
            mapping, a resolved :class:`WhitespaceStrategy`, or (deprecated)
            a :class:`Strategy` member.  After construction this field
            holds the :class:`Strategy` member for built-in names and the
            plain name string otherwise; the resolved instance is
            :attr:`strategy_impl`.
        hotspot_threshold: Fraction of the lateral temperature range above
            which a thermal cell belongs to a hotspot.  ``None`` (the
            default) selects the strategy's own default: empty row
            insertion targets the broader warm area around each hotspot
            (:data:`ERI_HOTSPOT_THRESHOLD`), while the hotspot wrapper needs
            tight, concentrated hotspots (:data:`HW_HOTSPOT_THRESHOLD`).
        max_hotspots: Only target the hottest N hotspots (``None`` = all).
        wrapper_ring_um: Whitespace-ring width for the hotspot wrapper
            (overridable per spec via the ``ring_um`` parameter).
        wrapper_max_source_units: Units treated as a hotspot's source
            (overridable per spec via ``max_source_units``).
        add_fillers: Fill created whitespace with dummy cells.
    """

    area_overhead: float = 0.15
    strategy: Union[StrategySpec, Strategy] = "eri"
    hotspot_threshold: Optional[float] = None
    max_hotspots: Optional[int] = None
    wrapper_ring_um: float = 6.0
    wrapper_max_source_units: int = 2
    add_fillers: bool = True

    def __post_init__(self) -> None:
        # Enum members are plain strings and resolve silently: the config
        # itself stores the enum back for bare built-in names, so warning
        # here would also fire on dataclasses.replace() round-trips the
        # caller never earned.  The deprecation warning lives in
        # Strategy.parse, the enum's own entry point.
        self.strategy_impl: WhitespaceStrategy = resolve_strategy(self.strategy)
        # The field keeps the full canonical spec when parameters are bound
        # (so dataclasses.replace()/equality preserve them); bare built-in
        # names stay enum members for backward compatibility.
        if self.strategy_impl.overrides:
            self.strategy = self.strategy_impl.spec
        else:
            self.strategy = _as_enum_or_name(self.strategy_impl.name)
        if self.area_overhead < 0.0:
            raise ValueError("area_overhead must be non-negative")
        if self.hotspot_threshold is not None and not 0.0 < self.hotspot_threshold <= 1.0:
            raise ValueError("hotspot_threshold must be in (0, 1]")

    @property
    def effective_hotspot_threshold(self) -> float:
        """The detection threshold, resolved per strategy when unset."""
        if self.hotspot_threshold is not None:
            return self.hotspot_threshold
        return self.strategy_impl.effective_hotspot_threshold()


@dataclass
class AreaManagementResult:
    """The modified placed netlist plus book-keeping.

    Attributes:
        placement: The new placement.
        strategy: Strategy that produced it — the :class:`Strategy` member
            for built-in names, the registered name string otherwise.
        hotspots: Hotspots detected on the input thermal map.
        requested_overhead: Overhead requested by the user.
        actual_overhead: Core-area overhead actually introduced (0.0 for the
            hotspot wrapper, which redistributes existing whitespace).
        inserted_rows: Rows inserted (row-inserting strategies only).
        num_fillers: Filler cells inserted.
        details: The strategy-specific result object.
    """

    placement: Placement
    strategy: "Strategy | str"
    hotspots: List[Hotspot]
    requested_overhead: float
    actual_overhead: float
    inserted_rows: int = 0
    num_fillers: int = 0
    details: object = None


class AreaManager:
    """Post-placement whitespace manager.

    Args:
        config: Tool configuration.
    """

    def __init__(self, config: Optional[AreaManagementConfig] = None) -> None:
        self.config = config if config is not None else AreaManagementConfig()

    # ------------------------------------------------------------------

    def detect(
        self,
        placement: Placement,
        thermal_map: ThermalMap,
        power: Optional[PowerReport] = None,
    ) -> List[Hotspot]:
        """Detect hotspots with the configured (per-strategy) threshold."""
        return detect_hotspots(
            thermal_map,
            placement,
            power=power,
            threshold_fraction=self.config.effective_hotspot_threshold,
            max_hotspots=self.config.max_hotspots,
        )

    def optimize(
        self,
        placement: Placement,
        power: PowerReport,
        thermal_map: ThermalMap,
        hotspots: Optional[Sequence[Hotspot]] = None,
    ) -> AreaManagementResult:
        """Produce the modified placed netlist for the configured strategy.

        Args:
            placement: The baseline placed design.
            power: Cell-by-cell power report.
            thermal_map: Thermal map of the baseline placement.
            hotspots: Pre-detected hotspots; detected here when omitted.

        Returns:
            An :class:`AreaManagementResult`.
        """
        config = self.config
        spots = list(hotspots) if hotspots is not None else self.detect(
            placement, thermal_map, power
        )
        ctx = StrategyContext(
            placement=placement,
            power=power,
            thermal_map=thermal_map,
            hotspots=spots,
            config=config,
        )
        result = config.strategy_impl.apply(ctx)
        return AreaManagementResult(
            placement=result.placement,
            strategy=config.strategy,
            hotspots=spots,
            requested_overhead=config.area_overhead,
            actual_overhead=result.actual_overhead,
            inserted_rows=result.inserted_rows,
            num_fillers=result.num_fillers,
            details=result.details,
        )

    # ------------------------------------------------------------------

    #: Retained for backward compatibility; strategies use the module-level
    #: :func:`repro.core.hotspot.project_hotspots`.
    _project_hotspots = staticmethod(project_hotspots)

    def optimize_and_resimulate(
        self,
        placement: Placement,
        power: PowerReport,
        thermal_map: ThermalMap,
        package: Optional[Package] = None,
        nx: int = 40,
        ny: int = 40,
        cache=None,
        method: Optional[str] = None,
        flow=None,
    ) -> tuple:
        """Run :meth:`optimize` and re-run the thermal simulation on the result.

        The re-solve warm-starts from the input map's temperature field:
        the transformed die keeps the grid resolution, so the baseline
        rises are an excellent multigrid starting guess (the LU backend
        ignores them).

        Args:
            placement: The baseline placed design.
            power: Cell-by-cell power report.
            thermal_map: Thermal map of the baseline placement.
            package: Thermal stack for the re-simulation.
            nx: Grid cells in x.
            ny: Grid cells in y.
            cache: Optional :class:`repro.flow.cache.SolverCache` to share
                the prepared solver with other simulations.
            method: Thermal solver backend (``"lu"``/``"multigrid"``/``"auto"``).
            flow: Optional :class:`repro.flow.graph.FlowGraph` (duck-typed,
                so this module stays independent of :mod:`repro.flow`).
                The transform, binning and solve then run as ``whitespace``
                / ``legalize`` / ``thermal`` stages against its artifact
                store, and the returned result is the stage's
                :class:`~repro.flow.artifacts.WhitespaceArtifact` — it
                carries the placement and overhead bookkeeping but not the
                ``hotspots``/``details`` objects of a full
                :class:`AreaManagementResult`.

        Returns:
            ``(result, new_thermal_map)``.
        """
        if flow is not None:
            ws = flow.whitespace(placement, power, thermal_map, config=self.config)
            legal = flow.legalize(ws.placement, power, nx=nx, ny=ny, package=package)
            new_map = flow.thermal(
                legal.power_map, legal.grid, warm_start=thermal_map, method=method
            ).thermal_map
            return ws, new_map
        result = self.optimize(placement, power, thermal_map)
        new_map = simulate_placement(
            result.placement, power, package=package, nx=nx, ny=ny,
            cache=cache, method=method, warm_start=thermal_map,
        )
        return result, new_map


__all__ = [
    "ERI_HOTSPOT_THRESHOLD",
    "HW_HOTSPOT_THRESHOLD",
    "AreaManagementConfig",
    "AreaManagementResult",
    "AreaManager",
    "Strategy",
]
