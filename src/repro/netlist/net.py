"""Nets connecting cell pins and primary ports."""

from __future__ import annotations

from typing import List, Optional

from .cell import Pin


class Port:
    """A primary input or output of the design.

    Ports behave like off-die connections: they have a direction (seen from
    the design, so a primary *input* port drives a net) and, once the
    floorplan is known, a position on the die boundary used for wirelength
    estimation.
    """

    __slots__ = ("name", "direction", "net", "x", "y")

    def __init__(self, name: str, direction: str) -> None:
        if direction not in ("input", "output"):
            raise ValueError(f"invalid port direction {direction!r}")
        self.name = name
        self.direction = direction
        self.net: Optional["Net"] = None
        self.x: Optional[float] = None
        self.y: Optional[float] = None

    @property
    def is_input(self) -> bool:
        return self.direction == "input"

    @property
    def is_output(self) -> bool:
        return self.direction == "output"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name}, {self.direction})"


class Net:
    """A signal net.

    A net has at most one driver (a cell output pin or a primary input port)
    and any number of sinks (cell input pins and primary output ports).
    """

    __slots__ = ("name", "driver_pin", "driver_port", "sink_pins", "sink_ports")

    def __init__(self, name: str) -> None:
        self.name = name
        self.driver_pin: Optional[Pin] = None
        self.driver_port: Optional[Port] = None
        self.sink_pins: List[Pin] = []
        self.sink_ports: List[Port] = []

    # -- construction --------------------------------------------------------

    def set_driver(self, pin: Pin) -> None:
        """Attach a cell output pin as the net driver.

        Raises:
            ValueError: If the net already has a driver or the pin is not an
                output pin.
        """
        if not pin.is_output:
            raise ValueError(f"net {self.name}: driver pin {pin.full_name} is not an output")
        if self.driver_pin is not None or self.driver_port is not None:
            raise ValueError(f"net {self.name} already has a driver")
        self.driver_pin = pin
        pin.net = self

    def set_driver_port(self, port: Port) -> None:
        """Attach a primary input port as the net driver."""
        if not port.is_input:
            raise ValueError(f"net {self.name}: port {port.name} is not a primary input")
        if self.driver_pin is not None or self.driver_port is not None:
            raise ValueError(f"net {self.name} already has a driver")
        self.driver_port = port
        port.net = self

    def add_sink(self, pin: Pin) -> None:
        """Attach a cell input pin as a net sink."""
        if not pin.is_input:
            raise ValueError(f"net {self.name}: sink pin {pin.full_name} is not an input")
        self.sink_pins.append(pin)
        pin.net = self

    def add_sink_port(self, port: Port) -> None:
        """Attach a primary output port as a net sink."""
        if not port.is_output:
            raise ValueError(f"net {self.name}: port {port.name} is not a primary output")
        self.sink_ports.append(port)
        port.net = self

    # -- queries -------------------------------------------------------------

    @property
    def has_driver(self) -> bool:
        return self.driver_pin is not None or self.driver_port is not None

    @property
    def num_sinks(self) -> int:
        return len(self.sink_pins) + len(self.sink_ports)

    @property
    def num_terminals(self) -> int:
        """Total number of pin/port terminals on the net."""
        return self.num_sinks + (1 if self.has_driver else 0)

    def terminals_xy(self) -> List[tuple]:
        """Return the ``(x, y)`` coordinates of all placed terminals.

        Cell terminals use the cell centre; port terminals use the port
        position when assigned.  Unplaced terminals are skipped.
        """
        points: List[tuple] = []
        if self.driver_pin is not None and self.driver_pin.cell.is_placed:
            points.append(self.driver_pin.cell.center)
        if self.driver_port is not None and self.driver_port.x is not None:
            points.append((self.driver_port.x, self.driver_port.y))
        for pin in self.sink_pins:
            if pin.cell.is_placed:
                points.append(pin.cell.center)
        for port in self.sink_ports:
            if port.x is not None:
                points.append((port.x, port.y))
        return points

    def hpwl(self) -> float:
        """Half-perimeter wirelength of the net over its placed terminals.

        Returns:
            The HPWL in micrometres, or 0.0 if fewer than two terminals are
            placed.
        """
        points = self.terminals_xy()
        if len(points) < 2:
            return 0.0
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Net({self.name}, sinks={self.num_sinks})"
