"""Overload behaviour: the governor ladder, shedding, fairness, chaos.

The acceptance harness at the bottom drives a seeded burst plan through
every overload seam (``service.admit``, ``service.queue``,
``governor.pressure``) and checks the whole contract: admitted points are
bitwise-identical to an unloaded run, every shed/throttled request is
retried to success inside its ``retry_after_s`` schedule, RSS stays under
the budget, and the shed/throttled/rejected counters are *exact* — twice,
with the same seed.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import faults
from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.faults import FaultPlan, RetryPolicy, active_plan
from repro.flow import ArtifactStore, Campaign, ExperimentSetup, ResultStore
from repro.service import (
    ClientQuota,
    ResourceGovernor,
    SweepClient,
    SweepServer,
    ThrottledError,
)
from repro.service.admission import AdmissionError
from repro.service.governor import process_rss_mb
from repro.service.server import _Task
from repro.flow.runner import CampaignPoint

NX = NY = 16
STRATEGIES = ("default", "eri")
OVERHEADS = (0.1, 0.2)


def _prepare(seed: int = 11) -> ExperimentSetup:
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=seed,
    )


@pytest.fixture(scope="module")
def served_setup():
    return _prepare()


@pytest.fixture(scope="module")
def reference_result(served_setup):
    """Unloaded in-process sweep the served records must match bitwise."""
    return Campaign(
        served_setup, STRATEGIES, OVERHEADS, name="ref", batch_solves=True
    ).run(max_workers=1)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.deactivate()


class TestRssSampling:
    def test_rss_is_positive_and_plausible(self):
        rss = process_rss_mb()
        assert 1.0 < rss < 1_000_000.0


class _FakeRss:
    def __init__(self, value: float) -> None:
        self.value = value

    def __call__(self) -> float:
        return self.value


class TestGovernorLadder:
    def test_no_budget_never_degrades(self):
        store = ResultStore()
        for index in range(10):
            store.put(f"k{index}", index)
        governor = ResourceGovernor(result_store=store, rss_fn=_FakeRss(10_000))
        assert governor.check() == "ok"
        assert len(store) == 10

    def test_elevated_halves_memory_tiers(self):
        store = ResultStore()
        artifacts = ArtifactStore()
        for index in range(10):
            store.put(f"k{index}", index)
            artifacts.put("stage", f"k{index}", index)
        rss = _FakeRss(850.0)
        governor = ResourceGovernor(
            max_rss_mb=1000.0, result_store=store, artifact_store=artifacts,
            rss_fn=rss,
        )
        assert governor.check() == "elevated"
        assert len(store) == 5 and len(artifacts) == 5
        assert governor.stats()["lru_shrinks"] >= 1
        assert governor.stats()["pressure_events"] == 1

    def test_critical_disables_then_ok_restores(self):
        store = ResultStore(maxsize=100)
        for index in range(10):
            store.put(f"k{index}", index)
        rss = _FakeRss(1200.0)
        governor = ResourceGovernor(
            max_rss_mb=1000.0, result_store=store, rss_fn=rss,
        )
        assert governor.check() == "critical"
        assert governor.should_shed()
        assert len(store) == 0
        # Store-only reads: the memory tier must not regrow while critical.
        store.put("new", 1)
        assert len(store) == 0
        rss.value = 100.0
        assert governor.check() == "ok"
        assert not governor.should_shed()
        store.put("back", 2)
        assert len(store) == 1  # original maxsize restored

    def test_pressure_seam_forces_critical(self):
        plan = FaultPlan(seed=9).fail("governor.pressure", times=1)
        governor = ResourceGovernor()  # no budget at all
        with active_plan(plan):
            assert governor.check() == "critical"
            assert governor.check() == "ok"  # times=1 exhausted
        assert plan.fired("governor.pressure") == 1


class TestServerOverloadPaths:
    def test_throttled_sweep_retries_to_success(self, served_setup, tmp_path):
        """burst=1: back-to-back sweeps throttle, the retrying client wins."""
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            result_store=ResultStore(root=tmp_path / "rate"),
            port=0,
            quota=ClientQuota(requests_per_s=5.0, burst=1),
        )
        name = served_setup.workload.name
        with instance:
            host, port = instance.address
            fail_fast = SweepClient(
                host=host, port=port, client_id="hasty",
                retry_policy=RetryPolicy(max_attempts=1),
            )
            fail_fast.sweep(name, ("default",), (0.1,))
            with pytest.raises(ThrottledError) as info:
                fail_fast.sweep(name, ("default",), (0.1,))
            assert info.value.retry_after_s is not None
            assert 0.0 < info.value.retry_after_s <= 0.2  # exact refill time

            patient = SweepClient(
                host=host, port=port, client_id="patient",
                retry_policy=RetryPolicy(max_attempts=5, backoff_s=0.01),
            )
            patient.sweep(name, ("default",), (0.1,))  # store hit
            result, _stats = patient.sweep(name, ("default",), (0.1,))
            assert len(result.records) == 1
            health = SweepClient(host=host, port=port).health()
            assert health["throttled_total"] >= 2
            assert health["clients"]["hasty"]["throttled"] >= 1

    def test_concurrent_request_cap_rejects_with_retry_after(
        self, served_setup, tmp_path
    ):
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            result_store=ResultStore(root=tmp_path / "cap"),
            port=0,
            max_pending_requests=1,
        )
        with instance:
            # Pin the server at its concurrency cap, then knock.
            with instance._lock:
                instance._active_requests = 1
            host, port = instance.address
            client = SweepClient(
                host=host, port=port,
                retry_policy=RetryPolicy(max_attempts=1),
            )
            with pytest.raises(ThrottledError) as info:
                client.sweep(served_setup.workload.name, ("default",), (0.1,))
            assert info.value.code == "overloaded"
            assert info.value.retry_after_s == pytest.approx(0.25)
            with instance._lock:
                instance._active_requests = 0
            result, _stats = SweepClient(host=host, port=port).sweep(
                served_setup.workload.name, ("default",), (0.1,)
            )
            assert len(result.records) == 1

    def test_inflight_cap_sheds_oldest_deadline_first(self, served_setup):
        """White-box: a full server sheds the queued point closest to its
        deadline, and the shed waiter gets a structured retryable error."""
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            port=0,
            max_inflight_points=1,
        )
        # Not started: the scheduler is off, so the victim stays queued.
        victim = _Task(
            "victim-key",
            CampaignPoint(served_setup.workload.name, "default", 0.1),
            analyze_timing=False,
            client="early-bird",
            deadline=time.monotonic() + 0.5,
        )
        instance._pending[victim.key] = victim
        instance._queue.put(victim)

        response = {}

        def sweep():
            response.update(instance._handle_sweep({
                "workload": served_setup.workload.name,
                "strategies": ["eri"],
                "overheads": [0.3],
                "timeout_s": 1.5,  # later deadline: allowed to displace
            }, client="late-comer"))

        thread = threading.Thread(target=sweep)
        thread.start()
        # The victim's future fails promptly with the shed rejection.
        with pytest.raises(AdmissionError) as info:
            victim.future.result(timeout=5.0)
        assert info.value.code == "shed"
        assert info.value.retryable and info.value.retry_after_s is not None
        thread.join(timeout=10.0)
        # The displacing request then waited out its own deadline
        # (scheduler off) — but it was admitted, not rejected.
        assert "deadline exceeded" in response["error"]
        counters = instance.admission.counters()
        assert counters["shed_total"] == 1
        assert instance.admission.client_stats()["early-bird"]["shed"] == 1
        instance.shutdown()


class TestFairness:
    def test_small_sweep_is_not_starved_by_a_big_one(
        self, served_setup, tmp_path
    ):
        """Satellite: a 3-point client cuts through a 12-point backlog.

        With FIFO gathering the small client would wait out the whole big
        sweep; round-robin gathering puts its points in the next batch.
        Both clients' records must stay bitwise-identical to unloaded runs.
        """
        name = served_setup.workload.name
        big_grid = dict(strategies=("default", "eri"),
                        overheads=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3))
        small_grid = dict(strategies=("hw",), overheads=(0.12, 0.18, 0.24))
        reference = {
            "big": Campaign(
                served_setup, big_grid["strategies"], big_grid["overheads"],
                name="ref-big", batch_solves=True,
            ).run(max_workers=1),
            "small": Campaign(
                served_setup, small_grid["strategies"],
                small_grid["overheads"], name="ref-small", batch_solves=True,
            ).run(max_workers=1),
        }
        instance = SweepServer(
            {name: served_setup},
            result_store=ResultStore(root=tmp_path / "fair"),
            port=0,
            batch_window_s=0.25,
            max_batch=2,  # small batches: fairness decides who goes next
            max_workers=1,
            quota=ClientQuota(max_points_per_request=64),
        )
        done_at = {}
        results = {}
        with instance:
            host, port = instance.address

            def submit(tag, grid, delay):
                time.sleep(delay)
                client = SweepClient(
                    host=host, port=port, client_id=tag, timeout=120.0,
                )
                results[tag] = client.sweep(name, **grid)[0]
                done_at[tag] = time.monotonic()

            threads = [
                threading.Thread(target=submit, args=("big", big_grid, 0.0)),
                threading.Thread(
                    target=submit, args=("small", small_grid, 0.05)
                ),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180.0)
            health = SweepClient(host=host, port=port).health()

        assert set(done_at) == {"big", "small"}
        # The fairness claim: 3 points finish well before the 12-point
        # backlog, despite arriving second.
        assert done_at["small"] < done_at["big"]
        for tag in ("big", "small"):
            records = results[tag].records
            assert len(records) == len(reference[tag].records)
            for ours, ref in zip(records, reference[tag].records):
                assert ours.point == ref.point
                assert ours.outcome == ref.outcome
        assert set(health["clients"]) >= {"big", "small"}


def _burst_plan() -> FaultPlan:
    """The seeded overload-chaos plan: one pressure episode, two
    throttles, one enqueue shed — all aimed at client ``storm``."""
    plan = FaultPlan(seed=2010)
    plan.fail("governor.pressure", times=1)
    plan.fail("service.admit", times=2, match={"client": "storm"})
    plan.fail("service.queue", times=1, match={"client": "storm"})
    return plan


def _run_storm(served_setup, store_root):
    """One seeded overload episode; returns (result, counters, fires, health)."""
    name = served_setup.workload.name
    plan = _burst_plan()
    instance = SweepServer(
        {name: served_setup},
        result_store=ResultStore(root=store_root),
        port=0,
        quota=ClientQuota(
            requests_per_s=1000.0, max_points_per_request=16,
            max_inflight_points=64,
        ),
        max_inflight_points=64,
        max_rss_mb=4096.0,
        shed_retry_after_s=0.05,
    )
    with active_plan(plan):
        with instance:
            host, port = instance.address
            client = SweepClient(
                host=host, port=port, client_id="storm",
                retry_policy=RetryPolicy(max_attempts=8, backoff_s=0.01),
            )
            started = time.monotonic()
            result, _stats = client.sweep(name, STRATEGIES, OVERHEADS)
            elapsed = time.monotonic() - started
            health = SweepClient(host=host, port=port, client_id="probe").health()
        counters = instance.admission.counters()
    fires = {
        site: plan.fired(site)
        for site in ("governor.pressure", "service.admit", "service.queue")
    }
    return result, counters, fires, health, elapsed


class TestOverloadChaosHarness:
    def test_seeded_burst_storm_is_survivable_and_deterministic(
        self, served_setup, tmp_path, reference_result
    ):
        """The acceptance harness (see module docstring)."""
        runs = [
            _run_storm(served_setup, tmp_path / f"storm{index}")
            for index in range(2)
        ]
        for result, counters, fires, health, elapsed in runs:
            # Every fault the plan scheduled actually fired.
            assert fires == {
                "governor.pressure": 1,
                "service.admit": 2,
                "service.queue": 1,
            }
            # Exact counters: 1 pressure shed + 1 enqueue shed, 2 throttles,
            # no outright rejections.
            assert counters["throttled_total"] == 2
            assert counters["shed_total"] == 2
            assert counters["rejected_total"] == 0
            assert counters["admitted_total"] >= 1
            # The client retried every rejection to success within its
            # retry_after_s schedule: 4 rejected attempts at <= 0.05s
            # floor plus one real evaluation.
            assert len(result.records) == len(reference_result.records)
            assert elapsed < 60.0
            # Admitted points are bitwise-identical to the unloaded run.
            for ours, reference in zip(
                result.records, reference_result.records
            ):
                assert ours.point == reference.point
                assert ours.outcome == reference.outcome
            # The budget held: no pressure left behind, RSS under cap.
            assert health["rss_mb"] < health["max_rss_mb"]
            assert health["pressure"] == "ok"
            assert health["clients"]["storm"]["shed"] == 2
            assert health["clients"]["storm"]["throttled"] == 2
        # Determinism across runs with the same seed.
        assert runs[0][1] == runs[1][1]  # counters
        assert runs[0][2] == runs[1][2]  # fault fires
