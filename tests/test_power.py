"""Tests for vectors, logic simulation, activity and the power model."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.power import (
    LogicSimulator,
    PowerModel,
    SwitchingActivity,
    VectorSet,
    build_power_map,
    estimate_activity,
    generate_vectors,
)


class TestVectors:
    def test_shapes(self, tiny_netlist):
        vectors = generate_vectors(tiny_netlist, {}, num_cycles=10, batch_size=4)
        assert vectors.num_cycles == 10
        assert vectors.batch_size == 4
        assert set(vectors.values) == {"in_a", "in_b"}

    def test_toggle_probability_controls_activity(self, tiny_netlist):
        vectors = generate_vectors(
            tiny_netlist,
            {"in_a": 0.9, "in_b": 0.02},
            num_cycles=200,
            batch_size=16,
            seed=1,
        )
        assert vectors.toggle_rate("in_a") > 0.7
        assert vectors.toggle_rate("in_b") < 0.1

    def test_zero_probability_means_constant(self, tiny_netlist):
        vectors = generate_vectors(
            tiny_netlist, {"in_a": 0.0, "in_b": 0.0}, num_cycles=50, batch_size=8
        )
        assert vectors.toggle_rate("in_a") == 0.0

    def test_deterministic_for_seed(self, tiny_netlist):
        first = generate_vectors(tiny_netlist, {}, num_cycles=20, batch_size=4, seed=9)
        second = generate_vectors(tiny_netlist, {}, num_cycles=20, batch_size=4, seed=9)
        for name in first.values:
            assert np.array_equal(first.values[name], second.values[name])

    def test_invalid_probability_rejected(self, tiny_netlist):
        with pytest.raises(ValueError):
            generate_vectors(tiny_netlist, {"in_a": 1.5})

    def test_no_inputs_rejected(self, empty_netlist):
        with pytest.raises(ValueError):
            generate_vectors(empty_netlist, {})

    @given(prob=st.floats(0.0, 1.0))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_property_toggle_rate_tracks_probability(self, tiny_netlist, prob):
        vectors = generate_vectors(
            tiny_netlist, {"in_a": prob}, num_cycles=120, batch_size=8, seed=3
        )
        assert vectors.toggle_rate("in_a") == pytest.approx(prob, abs=0.12)


class TestLogicSimulator:
    def test_combinational_evaluation(self, tiny_netlist):
        sim = LogicSimulator(tiny_netlist)
        values = sim.evaluate_combinational(
            {"in_a": np.array([True, False]), "in_b": np.array([True, True])}
        )
        # n1 = ~a, n2 = ~b, n3 = ~(n1 & n2)
        assert list(values["n3"]) == [True, True]
        values = sim.evaluate_combinational(
            {"in_a": np.array([False]), "in_b": np.array([False])}
        )
        assert list(values["n3"]) == [False]

    def test_sequential_pipeline_delay(self, tiny_netlist):
        sim = LogicSimulator(tiny_netlist)
        # Constant inputs 0,0 -> n3 = 0; the DFF output starts at 0 and
        # stays 0; with inputs 1,1 -> n3 = 1 appears at q one cycle later.
        values = {
            "in_a": np.ones((4, 1), dtype=bool),
            "in_b": np.ones((4, 1), dtype=bool),
        }
        result = sim.simulate(VectorSet(values), warmup_cycles=0)
        assert bool(result.final_values["q"][0]) is True

    def test_activity_counts(self, tiny_netlist):
        values = {
            "in_a": np.array([[False], [True], [False], [True]]),
            "in_b": np.array([[False], [False], [False], [False]]),
        }
        result = LogicSimulator(tiny_netlist).simulate(VectorSet(values), warmup_cycles=0)
        # in_a toggles every cycle: 3 transitions over 4 cycles in 1 stream.
        assert result.toggle_counts["in_a"] == 3
        assert 0.0 <= result.static_probability("in_a") <= 1.0

    def test_missing_stimulus_raises(self, tiny_netlist):
        values = {"in_a": np.zeros((3, 2), dtype=bool)}
        with pytest.raises(ValueError):
            VectorSet({})
        with pytest.raises(KeyError):
            LogicSimulator(tiny_netlist).simulate(VectorSet(values))


class TestSwitchingActivity:
    def test_from_estimation(self, tiny_netlist):
        activity = estimate_activity(tiny_netlist, {"in_a": 0.5, "in_b": 0.5},
                                     num_cycles=20, batch_size=8)
        assert activity.toggle_rate("n3") > 0.0
        assert 0.0 <= activity.static_probability("n3") <= 1.0

    def test_idle_inputs_give_low_activity(self, tiny_netlist):
        busy = estimate_activity(tiny_netlist, {"in_a": 0.5, "in_b": 0.5},
                                 num_cycles=40, batch_size=8)
        idle = estimate_activity(tiny_netlist, {"in_a": 0.01, "in_b": 0.01},
                                 num_cycles=40, batch_size=8)
        assert idle.average_toggle_rate() < busy.average_toggle_rate()

    def test_scaled(self):
        activity = SwitchingActivity(toggle_rates={"n": 0.4}, static_probabilities={"n": 0.5})
        assert activity.scaled(0.5).toggle_rate("n") == pytest.approx(0.2)
        with pytest.raises(ValueError):
            activity.scaled(-1.0)

    def test_uniform(self, tiny_netlist):
        activity = SwitchingActivity.uniform(tiny_netlist, toggle_rate=0.3)
        assert activity.toggle_rate("n1") == pytest.approx(0.3)


class TestPowerModel:
    def test_filler_cells_have_zero_power(self, tiny_netlist):
        filler = tiny_netlist.add_cell("fillX", "FILL_X4")
        activity = SwitchingActivity.uniform(tiny_netlist, 0.5)
        report = PowerModel().estimate(tiny_netlist, activity)
        assert report.power_of("fillX") == 0.0
        tiny_netlist.remove_cell("fillX")

    def test_zero_activity_leaves_only_leakage_and_clock(self, tiny_netlist):
        activity = SwitchingActivity.uniform(tiny_netlist, 0.0)
        report = PowerModel().estimate(tiny_netlist, activity)
        for name, breakdown in report.cell_powers.items():
            assert breakdown.switching == 0.0
            assert breakdown.leakage > 0.0

    def test_power_increases_with_activity(self, tiny_netlist):
        model = PowerModel()
        low = model.estimate(tiny_netlist, SwitchingActivity.uniform(tiny_netlist, 0.1))
        high = model.estimate(tiny_netlist, SwitchingActivity.uniform(tiny_netlist, 0.8))
        assert high.total() > low.total()

    def test_power_scales_with_frequency(self, tiny_netlist):
        activity = SwitchingActivity.uniform(tiny_netlist, 0.5)
        slow = PowerModel(frequency_hz=0.5e9).estimate(tiny_netlist, activity)
        fast = PowerModel(frequency_hz=1.0e9).estimate(tiny_netlist, activity)
        assert fast.total_dynamic() == pytest.approx(2.0 * slow.total_dynamic(), rel=1e-6)

    def test_leakage_temperature_scaling(self, tiny_netlist):
        activity = SwitchingActivity.uniform(tiny_netlist, 0.0)
        cold = PowerModel(temperature=25.0).estimate(tiny_netlist, activity)
        hot = PowerModel(temperature=75.0).estimate(tiny_netlist, activity)
        assert hot.total_leakage() == pytest.approx(4.0 * cold.total_leakage(), rel=1e-6)

    def test_leakage_scaling_can_be_disabled(self, tiny_netlist):
        model = PowerModel(temperature=100.0, leakage_temperature_scaling=False)
        assert model.leakage_scale() == 1.0

    def test_unit_totals(self, small_circuit, small_power):
        totals = small_power.unit_totals(small_circuit)
        assert set(totals) == set(small_circuit.units())
        assert sum(totals.values()) == pytest.approx(small_power.total(), rel=1e-9)

    def test_workload_creates_power_contrast(self, small_circuit, small_workload, small_power):
        totals = small_power.unit_totals(small_circuit)
        active = small_workload.active_units
        idle = [u for u in small_circuit.units() if u not in active]
        # Per-cell average power of active units must exceed idle units.
        counts = {u: len(small_circuit.cells_in_unit(u)) for u in small_circuit.units()}
        active_avg = sum(totals[u] for u in active) / sum(counts[u] for u in active)
        idle_avg = sum(totals[u] for u in idle) / sum(counts[u] for u in idle)
        assert active_avg > 1.5 * idle_avg

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(frequency_hz=0.0)


class TestPowerMap:
    def test_total_power_is_conserved(self, small_placement, small_power):
        power_map = build_power_map(small_placement, small_power, nx=40, ny=40)
        assert power_map.total_power == pytest.approx(small_power.total(), rel=1e-9)

    def test_bins_and_geometry(self, small_placement, small_power):
        power_map = build_power_map(small_placement, small_power, nx=20, ny=10)
        assert power_map.power_w.shape == (10, 20)
        assert power_map.nx == 20 and power_map.ny == 10
        iy, ix = power_map.bin_of(0.0, 0.0)
        assert 0 <= iy < 10 and 0 <= ix < 20
        x, y = power_map.bin_center(iy, ix)
        assert power_map.bin_of(x, y) == (iy, ix)

    def test_peak_density_location_has_power(self, small_placement, small_power):
        power_map = build_power_map(small_placement, small_power)
        peak, (iy, ix) = power_map.peak_density()
        assert peak > 0.0
        assert power_map.power_w[iy, ix] == power_map.power_w.max()

    def test_density_units(self, small_placement, small_power):
        power_map = build_power_map(small_placement, small_power)
        density = power_map.density_w_per_m2()
        assert density.max() == pytest.approx(
            power_map.power_w.max() / power_map.bin_area_m2
        )
