"""Geometry-keyed cache of factorised thermal solvers.

The dominant cost of one experiment point is the sparse LU factorisation of
the thermal conductance matrix (roughly a quarter second for the paper's
40 x 40 x 9 grid, versus milliseconds for the triangular solves).  The
matrix depends only on the die geometry, the grid resolution and the
package stack — not on the power map — so every placement that shares a die
outline can share one :class:`~repro.thermal.solver.ThermalSolver`.

That happens constantly during the paper's evaluation: the hotspot wrapper
starts from the Default solution's outline at the same overhead, leakage
feedback iterates on a fixed placement, and campaign grids revisit the same
(strategy, overhead) core sizes across workloads.  :class:`SolverCache`
memoises the factorisation behind a geometry key and is safe to share
between the worker threads of a :class:`~repro.flow.runner.Campaign`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..placement import Placement
from ..thermal import Package, ThermalGrid, ThermalSolver, default_package
from ..thermal.solver import grid_for_placement, resolve_thermal_method


def package_fingerprint(package: Package) -> Tuple:
    """Hashable fingerprint of everything in a package that shapes the matrix.

    Two packages with equal fingerprints produce identical conductance
    matrices on the same grid; any change to the layer stack, the boundary
    coefficients or the lumped package resistance changes the fingerprint
    and therefore the cache key.
    """
    return (
        tuple(
            (layer.name, layer.thickness_um, layer.conductivity)
            for layer in package.layers
        ),
        package.active_layer,
        package.ambient_celsius,
        package.bottom_htc,
        package.top_htc,
        package.lateral_htc,
        package.package_resistance,
    )


#: Cache key: (die width, die height, nx, ny, keep_full_field, resolved
#: solver method, package).
GeometryKey = Tuple[float, float, int, int, bool, str, Tuple]


def geometry_key(
    grid: ThermalGrid, keep_full_field: bool = False, method: str = "auto"
) -> GeometryKey:
    """The :class:`SolverCache` key for a thermal grid.

    The *resolved* solver method is part of the key: a cached LU
    factorisation must never be handed to a multigrid request (or vice
    versa), even when both were asked for as ``"auto"`` under different
    conditions.
    """
    return (
        grid.width_um,
        grid.height_um,
        grid.nx,
        grid.ny,
        keep_full_field,
        resolve_thermal_method(method, grid),
        package_fingerprint(grid.package),
    )


@dataclass(frozen=True)
class CacheStats:
    """Cache counters at one point in time.

    Attributes:
        hits: Lookups answered from the cache.
        misses: Lookups that had to factorise.
        evictions: Entries dropped by the LRU bound.
        size: Entries currently held.
    """

    hits: int
    misses: int
    evictions: int
    size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON metadata."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "hit_rate": self.hit_rate,
        }


class SolverCache:
    """Thread-safe LRU cache of factorised :class:`ThermalSolver` objects.

    One instance is typically shared across a whole sweep or campaign; any
    two experiment points whose transformed placements have the same die
    outline (and grid resolution and package) then pay the LU factorisation
    once between them.  Geometry changes — an ERI row insertion growing the
    core, a Default relaxation re-placing at a larger outline — produce a
    different key, so stale factorisations can never be returned.

    Args:
        maxsize: Maximum number of prepared solvers to retain (least
            recently used evicted first).  ``None`` means unbounded; ``0``
            disables retention entirely, turning the cache into a plain
            solver factory (useful for baseline timing comparisons).
        method: Solver backend every cached solver is built with —
            ``"lu"``, ``"multigrid"`` or ``"auto"`` (per-grid size
            heuristic).  Overridable per request via :meth:`solver`'s
            ``method`` argument; the *resolved* method is always part of
            the cache key.
        **solver_kwargs: Extra keyword arguments forwarded to every
            :class:`ThermalSolver` built by this cache (e.g. ``permc_spec``).
    """

    def __init__(
        self, maxsize: Optional[int] = None, method: str = "auto", **solver_kwargs
    ) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None or >= 0")
        self.maxsize = maxsize
        self.method = method
        self._solver_kwargs = dict(solver_kwargs)
        self._lock = threading.Lock()
        self._solvers: "OrderedDict[GeometryKey, ThermalSolver]" = OrderedDict()
        self._building: Dict[GeometryKey, threading.Lock] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- lookup --------------------------------------------------------------

    def key_for(
        self,
        grid: ThermalGrid,
        keep_full_field: bool = False,
        method: Optional[str] = None,
    ) -> GeometryKey:
        """The cache key this cache would use for ``grid``.

        Exposed so callers (e.g. the campaign runner's batched-solve
        grouping) can group work by solver identity without building one.
        """
        return geometry_key(
            grid,
            keep_full_field=keep_full_field,
            method=self.method if method is None else method,
        )

    def solver(
        self,
        grid: ThermalGrid,
        keep_full_field: bool = False,
        method: Optional[str] = None,
    ) -> ThermalSolver:
        """Return the prepared solver for ``grid``, building it on a miss.

        Concurrent requests for the same geometry block on a per-key lock so
        the solver setup runs once; requests for different geometries
        build in parallel.

        Args:
            grid: The thermal mesh.
            keep_full_field: Keep 3-D fields on results.
            method: Per-request override of the cache's solver method.
        """
        resolved = resolve_thermal_method(
            self.method if method is None else method, grid
        )
        key = geometry_key(grid, keep_full_field=keep_full_field, method=resolved)
        with self._lock:
            cached = self._solvers.get(key)
            if cached is not None:
                self._hits += 1
                self._solvers.move_to_end(key)
                return cached
            build_lock = self._building.setdefault(key, threading.Lock())

        try:
            with build_lock:
                with self._lock:
                    cached = self._solvers.get(key)
                    if cached is not None:
                        self._hits += 1
                        self._solvers.move_to_end(key)
                        return cached
                solver = ThermalSolver(
                    grid, keep_full_field=keep_full_field, method=resolved,
                    **self._solver_kwargs,
                )
                with self._lock:
                    self._misses += 1
                    if self.maxsize != 0:
                        self._solvers[key] = solver
                        self._solvers.move_to_end(key)
                        while self.maxsize is not None and len(self._solvers) > self.maxsize:
                            self._solvers.popitem(last=False)
                            self._evictions += 1
                return solver
        finally:
            # Always release the build slot, including when factorisation
            # raises (e.g. a degenerate floorplan), so later requests for
            # the same geometry neither deadlock on a stale lock nor leak
            # one dict entry per failing key.
            with self._lock:
                self._building.pop(key, None)

    def solver_for_placement(
        self,
        placement: Placement,
        package: Optional[Package] = None,
        nx: int = 40,
        ny: int = 40,
        keep_full_field: bool = False,
        method: Optional[str] = None,
    ) -> ThermalSolver:
        """Solver for a placement's die outline (see :meth:`solver`)."""
        pkg = package if package is not None else default_package()
        grid = grid_for_placement(placement, package=pkg, nx=nx, ny=ny)
        return self.solver(grid, keep_full_field=keep_full_field, method=method)

    def __contains__(self, key: GeometryKey) -> bool:
        with self._lock:
            return key in self._solvers

    def __len__(self) -> int:
        with self._lock:
            return len(self._solvers)

    # -- bookkeeping ---------------------------------------------------------

    @property
    def hits(self) -> int:
        """Lookups answered from the cache so far.

        Read under the cache lock: increments happen inside locked
        sections, so an unlocked read racing a Campaign worker could
        observe a torn view of the counters (hits observed without the
        miss that preceded them).  Taking the lock makes every read a
        consistent snapshot, which the exact-count assertions in
        ``tests/test_solver_cache.py`` rely on.
        """
        with self._lock:
            return self._hits

    @property
    def misses(self) -> int:
        """Lookups that built a new factorisation so far (locked read,
        see :attr:`hits`)."""
        with self._lock:
            return self._misses

    def stats(self) -> CacheStats:
        """Snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._solvers),
            )

    def clear(self) -> None:
        """Drop every retained factorisation (counters are kept)."""
        with self._lock:
            self._solvers.clear()
