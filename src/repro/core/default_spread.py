"""The "Default" whitespace scheme: uniform utilization relaxation.

This is the baseline the paper compares against (the "Default" curve in
Figure 6 and the "Default" rows of Table I): the requested area overhead is
obtained by lowering the row utilization factor during placement, so the
whitespace is spread evenly over the whole circuit — a "blind" allocation
that ignores where the hotspots are.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..placement import Placement, insert_fillers, place_design


@dataclass
class DefaultSpreadResult:
    """Outcome of a uniform utilization relaxation.

    Attributes:
        placement: The re-placed design (a fresh placement of a cloned
            netlist; the baseline is untouched).
        requested_overhead: Area overhead requested (fraction of the
            baseline core area).
        actual_overhead: Area overhead actually obtained after snapping the
            core outline to whole rows and sites.
        utilization: Resulting utilization factor.
        num_fillers: Filler cells inserted into the remaining whitespace.
    """

    placement: Placement
    requested_overhead: float
    actual_overhead: float
    utilization: float
    num_fillers: int


def apply_default_spread(
    baseline: Placement,
    area_overhead: float,
    use_quadratic: bool = True,
    detailed: bool = True,
    add_fillers: bool = True,
) -> DefaultSpreadResult:
    """Spread the requested area overhead uniformly over the core.

    The baseline core area is multiplied by ``1 + area_overhead`` by
    re-placing the design at a proportionally lower utilization factor, so
    every region's cell density drops by the same ratio.

    Args:
        baseline: The reference placement (defines the baseline core area
            and utilization factor).
        area_overhead: Requested fractional area overhead (e.g. ``0.161``
            for the paper's 16.1% point); must be non-negative.
        use_quadratic: Forwarded to :func:`repro.placement.place_design`.
        detailed: Forwarded to :func:`repro.placement.place_design`.
        add_fillers: Fill the resulting whitespace with dummy cells.

    Returns:
        A :class:`DefaultSpreadResult`.

    Raises:
        ValueError: If ``area_overhead`` is negative.
    """
    if area_overhead < 0.0:
        raise ValueError(f"area_overhead must be non-negative, got {area_overhead}")

    base_area = baseline.floorplan.core_area
    base_utilization = baseline.utilization()
    target_utilization = base_utilization / (1.0 + area_overhead)

    netlist = baseline.netlist.copy()
    placement = place_design(
        netlist,
        utilization=target_utilization,
        aspect_ratio=baseline.floorplan.core_height / baseline.floorplan.core_width,
        die_margin=baseline.floorplan.die_margin,
        use_quadratic=use_quadratic,
        detailed=detailed,
    )
    num_fillers = len(insert_fillers(placement)) if add_fillers else 0

    actual_overhead = placement.floorplan.core_area / base_area - 1.0
    return DefaultSpreadResult(
        placement=placement,
        requested_overhead=area_overhead,
        actual_overhead=actual_overhead,
        utilization=placement.utilization(),
        num_fillers=num_fillers,
    )
