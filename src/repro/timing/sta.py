"""Static timing analysis.

A block-based STA over the combinational timing graph: arrival times start
at launch points (primary inputs and flip-flop outputs), propagate through
the levelized combinational logic using the
:class:`~repro.timing.delay.DelayModel`, and are checked at capture points
(flip-flop data inputs and primary outputs) against the clock period.

The analysis is used before and after the post-placement transformations to
quantify the timing overhead (the paper reports a maximum of about 2%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..engine import resolve_engine
from ..netlist import Netlist
from .delay import DelayModel

#: Clock period corresponding to the paper's 1 GHz operating frequency.
DEFAULT_CLOCK_PERIOD_PS = 1000.0


@dataclass
class TimingPath:
    """One timing path endpoint report.

    Attributes:
        endpoint: Name of the capture point (``cell/D`` or a primary output).
        arrival_ps: Data arrival time in picoseconds.
        slack_ps: Clock period minus arrival time.
        through_cells: Cell names along the critical path to this endpoint,
            launch to capture.
    """

    endpoint: str
    arrival_ps: float
    slack_ps: float
    through_cells: List[str] = field(default_factory=list)


@dataclass
class TimingReport:
    """Design-level timing results.

    Attributes:
        critical_path_ps: Longest data arrival time (the critical path).
        clock_period_ps: Clock period the design was checked against.
        worst_slack_ps: Worst endpoint slack.
        worst_path: The critical path endpoint report.
        num_endpoints: Number of analysed capture points.
    """

    critical_path_ps: float
    clock_period_ps: float
    worst_slack_ps: float
    worst_path: Optional[TimingPath]
    num_endpoints: int

    @property
    def meets_timing(self) -> bool:
        """``True`` if the worst slack is non-negative."""
        return self.worst_slack_ps >= 0.0

    def overhead_versus(self, baseline: "TimingReport") -> float:
        """Fractional critical-path increase relative to ``baseline``."""
        if baseline.critical_path_ps <= 0.0:
            raise ValueError("baseline critical path must be positive")
        return (self.critical_path_ps - baseline.critical_path_ps) / baseline.critical_path_ps


class StaticTimingAnalyzer:
    """Block-based STA engine.

    Args:
        netlist: The design to analyse (combinational logic must be acyclic).
        delay_model: Delay calculator; a default one at nominal temperature
            is created when omitted.
        clock_period_ps: Clock period for slack computation.
    """

    def __init__(
        self,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        clock_period_ps: float = DEFAULT_CLOCK_PERIOD_PS,
    ) -> None:
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.clock_period_ps = clock_period_ps
        self._order_cache = None

    @property
    def _order(self):
        """Topological order (built on first reference-engine use)."""
        if self._order_cache is None:
            self._order_cache = self.netlist.levelize()
        return self._order_cache

    # ------------------------------------------------------------------

    def analyze(
        self, temperature: Optional[float] = None, engine: Optional[str] = None
    ) -> TimingReport:
        """Run the analysis and return a :class:`TimingReport`.

        Args:
            temperature: Optional uniform operating temperature in Celsius;
                defaults to the delay model's temperature.
            engine: ``"compiled"`` (level-by-level array propagation) or
                ``"reference"`` (pin-by-pin); defaults to the process-wide
                engine (see :mod:`repro.engine`).
        """
        if resolve_engine(engine) == "reference":
            arrival, predecessor = self._propagate(temperature)
            endpoints = self._collect_endpoints(arrival)
        else:
            return self._analyze_compiled(temperature)

        if not endpoints:
            return TimingReport(
                critical_path_ps=0.0,
                clock_period_ps=self.clock_period_ps,
                worst_slack_ps=self.clock_period_ps,
                worst_path=None,
                num_endpoints=0,
            )

        worst_endpoint, worst_arrival, worst_net = max(
            endpoints, key=lambda item: item[1]
        )
        worst_path = TimingPath(
            endpoint=worst_endpoint,
            arrival_ps=worst_arrival,
            slack_ps=self.clock_period_ps - worst_arrival,
            through_cells=self._trace_path(worst_net, predecessor),
        )
        return TimingReport(
            critical_path_ps=worst_arrival,
            clock_period_ps=self.clock_period_ps,
            worst_slack_ps=self.clock_period_ps - worst_arrival,
            worst_path=worst_path,
            num_endpoints=len(endpoints),
        )

    # ------------------------------------------------------------------
    # Compiled engine: level-by-level array propagation
    # ------------------------------------------------------------------

    def _analyze_compiled(self, temperature: Optional[float]) -> TimingReport:
        comp = self.netlist.compiled()
        model = self.delay_model
        cell_derate = model.cell_derating(temperature)
        wire_derate = model.wire_derating(temperature)

        # Per-net electrical vectors, extended by the zero/trash slots so
        # fanin/output slot arrays can index them directly.
        lengths = comp.net_length_um(model.fallback_wireload_um)
        load_ff = comp.sink_pin_cap_ff + model.wire_cap_per_um * lengths
        wire_delay = (
            0.5
            * (model.wire_res_per_um * lengths)
            * (model.wire_cap_per_um * lengths)
            * 1e-3
            * wire_derate
        )
        load_slots = np.zeros(comp.num_slots)
        load_slots[: comp.num_nets] = load_ff
        wire_slots = np.zeros(comp.num_slots)
        wire_slots[: comp.num_nets] = wire_delay

        arrival = np.zeros(comp.num_slots)
        pred = np.full(comp.num_slots, -1, dtype=np.int64)
        known = np.zeros(comp.num_slots, dtype=bool)

        # Launch points: primary-input nets and flip-flop output nets.
        for _, slot in comp.pi_ports:
            if slot >= 0:
                known[slot] = True
        if comp.launch_net.size:
            clk_to_q = comp.intrinsic_delay_ps[comp.launch_cell] * cell_derate
            arrival[comp.launch_net] = clk_to_q + wire_slots[comp.launch_net]
            pred[comp.launch_net] = comp.launch_cell
            known[comp.launch_net] = True

        # Levelized propagation; groups within a level are independent.
        for level in comp.levels:
            for group in level:
                if group.fanin.shape[1]:
                    input_arrival = np.maximum(arrival[group.fanin].max(axis=1), 0.0)
                else:
                    input_arrival = np.zeros(group.cells.shape[0])
                intrinsic = comp.intrinsic_delay_ps[group.cells]
                drive = comp.drive_res_kohm[group.cells]
                for k in range(group.out.shape[1]):
                    slots = group.out[:, k]
                    valid = slots != comp.trash_slot
                    if not valid.any():
                        continue
                    # Associates exactly as the reference does: stage =
                    # cell_delay + wire_delay, then input_arrival + stage.
                    stage = (intrinsic + drive * load_slots[slots]) * cell_derate
                    stage = stage + wire_slots[slots]
                    total = input_arrival + stage
                    targets = slots[valid]
                    arrival[targets] = total[valid]
                    pred[targets] = group.cells[valid]
                    known[targets] = True

        num_endpoints = len(comp.ep_names)
        if num_endpoints == 0:
            return TimingReport(
                critical_path_ps=0.0,
                clock_period_ps=self.clock_period_ps,
                worst_slack_ps=self.clock_period_ps,
                worst_path=None,
                num_endpoints=0,
            )

        endpoint_arrival = arrival[comp.ep_slot] + comp.ep_setup
        worst = int(np.argmax(endpoint_arrival))
        worst_arrival = float(endpoint_arrival[worst])

        worst_path = TimingPath(
            endpoint=comp.ep_names[worst],
            arrival_ps=worst_arrival,
            slack_ps=self.clock_period_ps - worst_arrival,
            through_cells=self._trace_path_compiled(
                comp, int(comp.ep_slot[worst]), pred, known
            ),
        )
        return TimingReport(
            critical_path_ps=worst_arrival,
            clock_period_ps=self.clock_period_ps,
            worst_slack_ps=self.clock_period_ps - worst_arrival,
            worst_path=worst_path,
            num_endpoints=num_endpoints,
        )

    def _trace_path_compiled(
        self,
        comp,
        endpoint_slot: int,
        pred: np.ndarray,
        known: np.ndarray,
    ) -> List[str]:
        """Walk the predecessor array back from an endpoint net.

        Mirrors :meth:`_trace_path` exactly (same pin-selection quirks and
        stop conditions) but reads the per-slot arrays directly, so only the
        single critical path is materialised instead of a full name-keyed
        predecessor dict.
        """
        path: List[str] = []
        net_index = comp.net_index
        current: Optional[int] = endpoint_slot
        visited = set()
        while current is not None and current not in visited:
            visited.add(current)
            if not known[current]:
                break
            cell_pos = int(pred[current])
            if cell_pos < 0:
                break
            cell_name = comp.cell_names[cell_pos]
            path.append(cell_name)
            cell = self.netlist.cells.get(cell_name)
            if cell is None or cell.is_sequential:
                break
            # Move to the slowest input net of this cell (reference
            # semantics: the last driven input with an arrival entry).
            best_slot: Optional[int] = None
            for pin in cell.input_pins:
                if pin.net is None:
                    continue
                slot = net_index.get(pin.net.name)
                if slot is not None and known[slot]:
                    best_slot = slot
            current = best_slot
        path.reverse()
        return path

    # ------------------------------------------------------------------

    def _propagate(
        self, temperature: Optional[float]
    ) -> Tuple[Dict[str, float], Dict[str, Optional[str]]]:
        """Propagate arrival times; returns per-net arrival and predecessor."""
        arrival: Dict[str, float] = {}
        predecessor: Dict[str, Optional[str]] = {}
        model = self.delay_model

        # Launch points: primary-input nets and flip-flop output nets.
        for port in self.netlist.primary_inputs:
            if port.net is not None:
                arrival[port.net.name] = 0.0
                predecessor[port.net.name] = None
        for ff in self.netlist.sequential_cells():
            clk_to_q = ff.master.intrinsic_delay_ps * model.cell_derating(temperature)
            for pin in ff.output_pins:
                if pin.net is not None:
                    wire = model.wire_delay_ps(pin.net, temperature)
                    arrival[pin.net.name] = clk_to_q + wire
                    predecessor[pin.net.name] = ff.name

        for inst in self._order:
            input_arrival = 0.0
            for pin in inst.input_pins:
                if pin.net is not None:
                    input_arrival = max(input_arrival, arrival.get(pin.net.name, 0.0))
            for pin in inst.output_pins:
                net = pin.net
                if net is None:
                    continue
                stage = model.stage_delay_ps(inst, net, temperature)
                arrival[net.name] = input_arrival + stage
                predecessor[net.name] = inst.name

        return arrival, predecessor

    def _collect_endpoints(self, arrival: Dict[str, float]) -> List[Tuple[str, float, Optional[str]]]:
        """Gather capture points: FF D pins, primary outputs."""
        endpoints: List[Tuple[str, float, Optional[str]]] = []
        model = self.delay_model
        for ff in self.netlist.sequential_cells():
            for pin in ff.input_pins:
                if pin.net is None:
                    continue
                setup = 0.3 * ff.master.intrinsic_delay_ps
                endpoints.append(
                    (pin.full_name, arrival.get(pin.net.name, 0.0) + setup, pin.net.name)
                )
        for port in self.netlist.primary_outputs:
            if port.net is not None:
                endpoints.append((port.name, arrival.get(port.net.name, 0.0), port.net.name))
        return endpoints

    def _trace_path(
        self, net_name: Optional[str], predecessor: Dict[str, Optional[str]]
    ) -> List[str]:
        """Walk predecessors from an endpoint net back to its launch point."""
        path: List[str] = []
        current = net_name
        visited = set()
        while current is not None and current not in visited:
            visited.add(current)
            cell_name = predecessor.get(current)
            if cell_name is None:
                break
            path.append(cell_name)
            cell = self.netlist.cells.get(cell_name)
            if cell is None or cell.is_sequential:
                break
            # Move to the slowest input net of this cell.
            best_net = None
            best_arrival = -1.0
            for pin in cell.input_pins:
                if pin.net is None:
                    continue
                # Arrival of predecessors is implied by path order; pick any
                # driven input that has a predecessor entry.
                if pin.net.name in predecessor:
                    best_net = pin.net.name
                    best_arrival = max(best_arrival, 0.0)
            current = best_net
        path.reverse()
        return path


def analyze_timing(
    netlist: Netlist,
    temperature: Optional[float] = None,
    clock_period_ps: float = DEFAULT_CLOCK_PERIOD_PS,
) -> TimingReport:
    """Convenience wrapper: analyse ``netlist`` with the default delay model."""
    model = DelayModel(temperature=temperature if temperature is not None else 25.0)
    analyzer = StaticTimingAnalyzer(netlist, delay_model=model, clock_period_ps=clock_period_ps)
    return analyzer.analyze(temperature)
