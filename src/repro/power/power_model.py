"""Cell-by-cell power estimation.

Substitutes for the Synopsys Power Compiler step of the paper's flow: given
a netlist annotated with switching activity, compute each cell's average
power.  The model is the standard cell-level decomposition used by
commercial tools:

* **switching (net) power** — ``0.5 * Vdd^2 * f * C_load * toggles`` for
  every net the cell drives, where the load is the fanout pin capacitance
  plus a fanout-based wire-load estimate (power is estimated *before* the
  post-placement transformations and, as in the paper, is kept unchanged by
  them);
* **internal power** — a per-transition internal energy from the library;
* **leakage power** — the library leakage, optionally scaled exponentially
  with temperature to model the leakage/temperature feedback loop.

The result is a :class:`PowerReport` mapping every cell instance to a
:class:`CellPower` breakdown; filler cells always have exactly zero power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..netlist import CellInstance, Netlist, VDD, WIRE_CAP_PER_UM
from .activity import SwitchingActivity

#: Default clock frequency in hertz (the paper clocks the benchmark at 1 GHz).
DEFAULT_FREQUENCY_HZ = 1.0e9

#: Wire-load model: estimated wire length per fanout pin, in micrometres.
WIRELOAD_UM_PER_FANOUT = 4.0

#: Leakage doubles roughly every this many degrees Celsius.
LEAKAGE_DOUBLING_CELSIUS = 25.0


@dataclass(frozen=True)
class CellPower:
    """Power breakdown of a single cell instance, in watts."""

    switching: float
    internal: float
    leakage: float

    @property
    def dynamic(self) -> float:
        """Switching plus internal power."""
        return self.switching + self.internal

    @property
    def total(self) -> float:
        """Total cell power."""
        return self.switching + self.internal + self.leakage


class PowerReport:
    """Per-cell power for a design.

    Attributes:
        cell_powers: Mapping cell instance name -> :class:`CellPower`.
        frequency_hz: Clock frequency used.
        temperature: Temperature (Celsius) the leakage was evaluated at.
    """

    def __init__(
        self,
        cell_powers: Dict[str, CellPower],
        frequency_hz: float,
        temperature: float,
    ) -> None:
        self.cell_powers = cell_powers
        self.frequency_hz = frequency_hz
        self.temperature = temperature

    def power_of(self, cell_name: str) -> float:
        """Total power of ``cell_name`` in watts (0.0 if not reported)."""
        breakdown = self.cell_powers.get(cell_name)
        return breakdown.total if breakdown is not None else 0.0

    def total(self) -> float:
        """Total design power in watts."""
        return sum(p.total for p in self.cell_powers.values())

    def total_dynamic(self) -> float:
        """Total dynamic (switching + internal) power in watts."""
        return sum(p.dynamic for p in self.cell_powers.values())

    def total_leakage(self) -> float:
        """Total leakage power in watts."""
        return sum(p.leakage for p in self.cell_powers.values())

    def unit_totals(self, netlist: Netlist) -> Dict[str, float]:
        """Total power per logical unit, in watts."""
        totals: Dict[str, float] = {}
        for cell in netlist.cells.values():
            breakdown = self.cell_powers.get(cell.name)
            if breakdown is None:
                continue
            totals[cell.unit] = totals.get(cell.unit, 0.0) + breakdown.total
        return totals


class PowerModel:
    """Average-power model evaluated from switching activity.

    Args:
        frequency_hz: Clock frequency.
        vdd: Supply voltage in volts.
        wireload_um_per_fanout: Wire-load model coefficient; estimated net
            wire length is this value times the number of fanout pins.
        temperature: Junction temperature in Celsius used for leakage.
        leakage_temperature_scaling: When ``True``, leakage grows
            exponentially with temperature (doubling every
            ``LEAKAGE_DOUBLING_CELSIUS`` degrees above 25 C).
    """

    def __init__(
        self,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        vdd: float = VDD,
        wireload_um_per_fanout: float = WIRELOAD_UM_PER_FANOUT,
        temperature: float = 25.0,
        leakage_temperature_scaling: bool = True,
    ) -> None:
        if frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.vdd = vdd
        self.wireload_um_per_fanout = wireload_um_per_fanout
        self.temperature = temperature
        self.leakage_temperature_scaling = leakage_temperature_scaling

    # ------------------------------------------------------------------

    def net_load_ff(self, netlist: Netlist, net_name: str) -> float:
        """Estimated load capacitance on a net, in femtofarads.

        The load is the sum of the fanout pins' input capacitance plus a
        fanout-proportional wire-load estimate.
        """
        net = netlist.nets.get(net_name)
        if net is None:
            return 0.0
        pin_cap = sum(pin.cell.master.input_cap_ff for pin in net.sink_pins)
        fanout = max(net.num_sinks, 1)
        wire_cap = WIRE_CAP_PER_UM * self.wireload_um_per_fanout * fanout
        return pin_cap + wire_cap

    def leakage_scale(self, temperature: Optional[float] = None) -> float:
        """Leakage multiplier at ``temperature`` relative to 25 C."""
        if not self.leakage_temperature_scaling:
            return 1.0
        temp = self.temperature if temperature is None else temperature
        return 2.0 ** ((temp - 25.0) / LEAKAGE_DOUBLING_CELSIUS)

    def cell_power(
        self,
        netlist: Netlist,
        cell: CellInstance,
        activity: SwitchingActivity,
        temperature: Optional[float] = None,
    ) -> CellPower:
        """Power breakdown of one cell instance."""
        if cell.is_filler:
            return CellPower(0.0, 0.0, 0.0)

        switching = 0.0
        internal = 0.0
        for pin in cell.output_pins:
            if pin.net is None:
                continue
            toggles = activity.toggle_rate(pin.net.name)
            load_farad = self.net_load_ff(netlist, pin.net.name) * 1e-15
            switching += 0.5 * self.vdd ** 2 * load_farad * toggles * self.frequency_hz
            internal += cell.master.internal_energy_fj * 1e-15 * toggles * self.frequency_hz

        # Sequential cells are clocked every cycle: add the clock-pin
        # internal energy even when the data does not toggle.
        if cell.is_sequential:
            internal += cell.master.internal_energy_fj * 1e-15 * self.frequency_hz

        leakage = cell.master.leakage_nw * 1e-9 * self.leakage_scale(temperature)
        return CellPower(switching=switching, internal=internal, leakage=leakage)

    def estimate(
        self,
        netlist: Netlist,
        activity: SwitchingActivity,
        temperature: Optional[float] = None,
    ) -> PowerReport:
        """Estimate power for every cell in the design.

        Args:
            netlist: Annotated design.
            activity: Per-net switching activity.
            temperature: Optional junction temperature (Celsius) for the
                leakage term; defaults to the model's temperature.

        Returns:
            A :class:`PowerReport`.
        """
        temp = self.temperature if temperature is None else temperature
        cell_powers = {
            cell.name: self.cell_power(netlist, cell, activity, temperature=temp)
            for cell in netlist.cells.values()
        }
        return PowerReport(cell_powers, self.frequency_hz, temp)

    def estimate_with_temperature_map(
        self,
        netlist: Netlist,
        activity: SwitchingActivity,
        cell_temperatures: Mapping[str, float],
    ) -> PowerReport:
        """Estimate power with a per-cell temperature for leakage.

        Used by the optional leakage/temperature feedback iteration: the
        thermal solve provides per-cell temperatures, which raise leakage,
        which feeds back into the next thermal solve.

        Args:
            netlist: Annotated design.
            activity: Per-net switching activity.
            cell_temperatures: Mapping cell name -> temperature in Celsius.

        Returns:
            A :class:`PowerReport` (its ``temperature`` is the mean).
        """
        cell_powers: Dict[str, CellPower] = {}
        temps = []
        for cell in netlist.cells.values():
            temp = cell_temperatures.get(cell.name, self.temperature)
            temps.append(temp)
            cell_powers[cell.name] = self.cell_power(netlist, cell, activity, temperature=temp)
        mean_temp = sum(temps) / len(temps) if temps else self.temperature
        return PowerReport(cell_powers, self.frequency_hz, mean_temp)
