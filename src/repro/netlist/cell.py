"""Cell instances and pins for placed gate-level netlists."""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Dict, Optional, TYPE_CHECKING

from .library import MasterCell, ROW_HEIGHT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .net import Net


@dataclass
class Pin:
    """A pin on a cell instance.

    Attributes:
        name: Pin name on the master cell (e.g. ``"A"``, ``"Y"``).
        cell: The owning cell instance.
        direction: Either ``"input"`` or ``"output"``.
        net: The net connected to this pin, or ``None`` if unconnected.
    """

    name: str
    cell: "CellInstance"
    direction: str
    net: Optional["Net"] = None

    @property
    def full_name(self) -> str:
        """Hierarchical pin name ``<cell>/<pin>``."""
        return f"{self.cell.name}/{self.name}"

    @property
    def is_input(self) -> bool:
        return self.direction == "input"

    @property
    def is_output(self) -> bool:
        return self.direction == "output"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        net_name = self.net.name if self.net is not None else None
        return f"Pin({self.full_name}, {self.direction}, net={net_name})"


class CellInstance:
    """An instance of a master cell, optionally placed.

    A cell instance has a unique name, a reference to its master (library)
    cell, one :class:`Pin` per master pin, an optional placement location
    (``x``, ``y`` in micrometres, lower-left corner) and an optional layout
    row index.  The ``unit`` attribute records which logical block of the
    synthetic benchmark the cell belongs to; the hotspot-wrapper technique
    uses it to distinguish "hot" cells from bystander cells.
    """

    __slots__ = ("name", "master", "pins", "x", "y", "row", "unit", "fixed",
                 "width", "area")

    #: Process-wide placement epoch, advanced by every :meth:`place` call.
    #: Consumers that cache coordinate arrays (e.g.
    #: :meth:`repro.placement.placement.Placement.cell_center_arrays`)
    #: compare against it to detect that *any* cell has moved.  Each call
    #: draws a unique value from a C-level counter (atomic under the GIL),
    #: so concurrent Campaign workers cannot lose an increment; coordinates
    #: are written *before* the epoch advances, so a gather that races a
    #: move is invalidated by that move's own bump.
    placement_epoch: int = 0
    _epoch_source = count(1)

    def __init__(self, name: str, master: MasterCell, unit: str = "") -> None:
        self.name = name
        self.master = master
        self.pins: Dict[str, Pin] = {}
        for pin_name in master.inputs:
            self.pins[pin_name] = Pin(pin_name, self, "input")
        for pin_name in master.outputs:
            self.pins[pin_name] = Pin(pin_name, self, "output")
        self.x: Optional[float] = None
        self.y: Optional[float] = None
        self.row: Optional[int] = None
        self.unit = unit
        self.fixed = False
        # Geometry is bound once at construction: width/area are read in the
        # innermost placement loops (row packing, gap search, binning), where
        # the master-cell property chain would dominate the profile.
        self.width: float = master.width_um
        self.area: float = master.area_um2

    # -- geometry -----------------------------------------------------------

    @property
    def height(self) -> float:
        """Cell height in micrometres."""
        return ROW_HEIGHT

    @property
    def is_placed(self) -> bool:
        """``True`` if the cell has x/y coordinates assigned."""
        return self.x is not None and self.y is not None

    @property
    def center(self) -> tuple:
        """Placement centre ``(x, y)`` in micrometres.

        Raises:
            ValueError: If the cell is not placed.
        """
        if not self.is_placed:
            raise ValueError(f"cell {self.name} is not placed")
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    @staticmethod
    def bump_placement_epoch() -> None:
        """Advance the process-wide placement epoch.

        Call after assigning ``x``/``y`` directly instead of through
        :meth:`place` (e.g. :meth:`Placement.rebuild_rows` does), so cached
        coordinate arrays are invalidated.
        """
        CellInstance.placement_epoch = next(CellInstance._epoch_source)

    def place(self, x: float, y: float, row: Optional[int] = None) -> None:
        """Place the cell with its lower-left corner at ``(x, y)``."""
        self.x = x
        self.y = y
        self.row = row
        CellInstance.placement_epoch = next(CellInstance._epoch_source)

    # -- connectivity --------------------------------------------------------

    @property
    def input_pins(self) -> list:
        """Input pins in master pin order."""
        return [self.pins[p] for p in self.master.inputs]

    @property
    def output_pins(self) -> list:
        """Output pins in master pin order."""
        return [self.pins[p] for p in self.master.outputs]

    @property
    def is_sequential(self) -> bool:
        return self.master.is_sequential

    @property
    def is_filler(self) -> bool:
        return self.master.is_filler

    def pin(self, name: str) -> Pin:
        """Return the pin called ``name``.

        Raises:
            KeyError: If the master cell has no such pin.
        """
        try:
            return self.pins[name]
        except KeyError:
            raise KeyError(f"cell {self.name} ({self.master.name}) has no pin {name!r}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pos = f"({self.x:.2f},{self.y:.2f})" if self.is_placed else "unplaced"
        return f"CellInstance({self.name}, {self.master.name}, {pos})"
