"""Tests for the synthetic benchmark and workload definitions."""

import pytest

from repro.bench import (
    DEFAULT_UNITS,
    UnitSpec,
    Workload,
    build_synthetic_circuit,
    concentrated_hotspot_workload,
    custom_workload,
    scattered_hotspots_workload,
    uniform_workload,
    unit_cell_counts,
)


class TestSyntheticCircuit:
    def test_has_nine_units(self, small_circuit):
        assert len(small_circuit.units()) == 9

    def test_every_cell_tagged_with_unit(self, small_circuit):
        for cell in small_circuit.logic_cells():
            assert cell.unit in small_circuit.units()

    def test_structurally_sound(self, small_circuit):
        assert small_circuit.check() == []

    def test_unit_cell_counts_sum(self, small_circuit):
        counts = unit_cell_counts(small_circuit)
        assert sum(counts.values()) == len(small_circuit.logic_cells())

    def test_full_benchmark_is_about_12000_cells(self):
        # The paper's benchmark "consists of about 12000 standard cells".
        counts = unit_cell_counts(build_synthetic_circuit())
        total = sum(counts.values())
        assert 10000 <= total <= 14000
        assert len(counts) == 9

    def test_duplicate_unit_names_rejected(self):
        units = (UnitSpec("dup", "rca", 4), UnitSpec("dup", "rca", 4))
        with pytest.raises(ValueError, match="unique"):
            build_synthetic_circuit(units=units)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown unit kind"):
            build_synthetic_circuit(units=(UnitSpec("u", "bogus", 4),))

    def test_default_units_have_various_sizes(self):
        widths = {spec.width for spec in DEFAULT_UNITS}
        assert len(widths) >= 4

    def test_small_circuit_is_smaller(self, small_circuit):
        assert small_circuit.num_cells < build_synthetic_circuit().num_cells


class TestWorkloads:
    def test_unit_probability_split(self):
        workload = Workload("w", active_units=["a"], active_probability=0.5,
                            idle_probability=0.01)
        assert workload.unit_probability("a") == 0.5
        assert workload.unit_probability("b") == 0.01

    def test_overrides_take_precedence(self):
        workload = Workload("w", active_units=["a"], unit_overrides={"a": 0.25})
        assert workload.unit_probability("a") == 0.25

    def test_port_probabilities_cover_all_inputs(self, small_circuit, small_workload):
        probs = small_workload.port_toggle_probabilities(small_circuit)
        assert set(probs) == {p.name for p in small_circuit.primary_inputs}
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_active_unit_ports_get_active_probability(self, small_circuit, small_workload):
        probs = small_workload.port_toggle_probabilities(small_circuit)
        active_unit = small_workload.active_units[0]
        port = next(
            p for p in probs if p.startswith(f"{active_unit}__")
        )
        assert probs[port] == small_workload.active_probability

    def test_scattered_without_regions_picks_smallest(self, small_circuit):
        workload = scattered_hotspots_workload(small_circuit, num_hotspots=3)
        counts = unit_cell_counts(small_circuit)
        smallest = sorted(counts, key=counts.get)[:3]
        assert set(workload.active_units) == set(smallest)

    def test_scattered_with_regions_spreads_units(self, small_circuit, small_placement):
        workload = scattered_hotspots_workload(
            small_circuit, num_hotspots=4, regions=small_placement.regions
        )
        assert len(workload.active_units) == 4
        centers = [small_placement.regions[u].center for u in workload.active_units]
        # The selected units must not all be in the same half of the die.
        xs = sorted(c[0] for c in centers)
        ys = sorted(c[1] for c in centers)
        core = small_placement.floorplan
        assert (xs[-1] - xs[0]) > core.core_width * 0.3 or (
            ys[-1] - ys[0]
        ) > core.core_height * 0.3

    def test_scattered_rejects_too_many_hotspots(self, small_circuit):
        with pytest.raises(ValueError):
            scattered_hotspots_workload(small_circuit, num_hotspots=99)

    def test_concentrated_picks_largest(self, small_circuit):
        workload = concentrated_hotspot_workload(small_circuit)
        counts = unit_cell_counts(small_circuit)
        largest = max(counts, key=counts.get)
        assert workload.active_units == [largest]

    def test_uniform_workload_activates_everything(self, small_circuit):
        workload = uniform_workload(small_circuit, probability=0.4)
        probs = workload.port_toggle_probabilities(small_circuit)
        assert all(p == pytest.approx(0.4) for p in probs.values())

    def test_custom_workload(self):
        workload = custom_workload("mine", ["u1", "u2"], active_probability=0.7)
        assert workload.unit_probability("u1") == 0.7
        assert "u1" in workload.describe()

    def test_describe_mentions_active_units(self, small_workload):
        text = small_workload.describe()
        for unit in small_workload.active_units:
            assert unit in text
