"""Top-level placement flow.

:func:`place_design` reproduces the role of the commercial floorplanning and
placement step in the paper's flow (Figure 2, "Logic and Physical
Synthesis"): it sizes a fixed-outline core for a requested utilization
factor, partitions the core into one region per arithmetic unit (areas
proportional to unit cell area, so the base cell density is uniform), runs
quadratic global placement to get connectivity-driven target positions, and
legalises each unit's cells into its region's rows.

The result is a legal, row-based :class:`~repro.placement.placement.Placement`
that the post-placement temperature-reduction techniques operate on.
"""

from __future__ import annotations

from typing import Dict

from ..netlist import Netlist
from .detailed import improve_placement
from .floorplan import Floorplan, slicing_partition
from .global_place import QuadraticPlacer, assign_port_positions
from .legalize import pack_into_region
from .placement import Placement


def place_design(
    netlist: Netlist,
    utilization: float = 0.8,
    aspect_ratio: float = 1.0,
    die_margin: float = 15.0,
    use_quadratic: bool = True,
    detailed: bool = True,
    anchor_weight: float = 0.25,
) -> Placement:
    """Floorplan and place a netlist at the requested utilization factor.

    Args:
        netlist: The design to place.  Cells carrying a ``unit`` label are
            grouped into per-unit regions; unlabeled cells share a single
            region covering the whole core.
        utilization: Target utilization factor (cell area / core area).
            Lowering it is exactly the paper's "Default" whitespace scheme.
        aspect_ratio: Core height / width ratio.
        die_margin: Pad-ring margin around the core, in micrometres.
        use_quadratic: Run the quadratic global placer to obtain
            connectivity-driven target positions; when ``False`` cells are
            ordered by name, which is faster but wire-length oblivious.
        detailed: Run the adjacent-swap detailed-placement pass.
        anchor_weight: Region anchor weight for the quadratic placer.

    Returns:
        A legal :class:`Placement` with ``regions`` populated.

    Raises:
        ValueError: If the utilization is out of range or a unit's cells do
            not fit in their region.
    """
    floorplan = Floorplan.from_netlist(
        netlist,
        utilization=utilization,
        aspect_ratio=aspect_ratio,
        die_margin=die_margin,
    )
    placement = Placement(netlist, floorplan)
    assign_port_positions(netlist, floorplan)

    # Partition the core into per-unit regions with areas proportional to
    # each unit's cell area, so the initial cell density is uniform.
    unit_areas: Dict[str, float] = {}
    for cell in netlist.logic_cells():
        unit_areas[cell.unit] = unit_areas.get(cell.unit, 0.0) + cell.area
    regions = slicing_partition(floorplan.core_rect, unit_areas)
    placement.regions = dict(regions)

    targets = None
    if use_quadratic:
        placer = QuadraticPlacer(
            netlist, floorplan, regions=regions, anchor_weight=anchor_weight
        )
        targets = placer.run().positions

    for unit, region in regions.items():
        unit_cells = [c for c in netlist.logic_cells() if c.unit == unit]
        pack_into_region(placement, unit_cells, region, targets=targets)

    if detailed:
        improve_placement(placement)

    placement.rebuild_rows()
    return placement


def replace_at_utilization(placement: Placement, utilization: float, **kwargs) -> Placement:
    """Re-place the design at a different utilization factor.

    This is the paper's "Default" area-overhead scheme: the whole core grows
    (utilization factor shrinks) and the whitespace is spread uniformly.
    The netlist is cloned first, so the input placement is left untouched.

    Args:
        placement: An existing placement whose design is re-placed.
        utilization: New target utilization factor.
        **kwargs: Forwarded to :func:`place_design`.

    Returns:
        A new :class:`Placement` over a cloned netlist.
    """
    return place_design(placement.netlist.copy(), utilization=utilization, **kwargs)
