#!/usr/bin/env python3
"""Quickstart: the full post-placement temperature-reduction flow in ~30 lines.

Builds the synthetic benchmark, places it, estimates power from random
vectors, solves the RC thermal network, applies Empty Row Insertion at a
15% area overhead and reports the peak-temperature reduction.

Run with ``--full`` to use the paper-sized (~12k cell) benchmark instead of
the fast scaled-down one.  The same flow is available from the shell as
``python -m repro quickstart``; see ``examples/campaign_sweep.py`` for
running whole (strategy x overhead) grids through the campaign runner.
"""

from __future__ import annotations

import argparse

from repro.bench import (
    build_synthetic_circuit,
    scattered_hotspots_workload,
    small_synthetic_circuit,
)
from repro.core import AreaManagementConfig, AreaManager
from repro.flow import ExperimentSetup
from repro.thermal import simulate_placement


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full ~12k-cell benchmark (slower)")
    parser.add_argument("--overhead", type=float, default=0.15,
                        help="area overhead to spend as whitespace (fraction)")
    args = parser.parse_args()

    # 1. The synthetic benchmark: nine arithmetic units, tagged per unit.
    netlist = build_synthetic_circuit() if args.full else small_synthetic_circuit()
    print(f"benchmark: {netlist.name}, {netlist.num_cells} cells, "
          f"{len(netlist.units())} units")

    # 2. Baseline flow: placement, power estimation, thermal simulation.
    workload = scattered_hotspots_workload(netlist)
    setup = ExperimentSetup.prepare(netlist, workload, base_utilization=0.85)
    print(f"baseline: core {setup.placement.floorplan.core_width:.0f} x "
          f"{setup.placement.floorplan.core_height:.0f} um at "
          f"{setup.placement.utilization():.2f} utilization")
    print(f"          total power {setup.power.total() * 1e3:.1f} mW, "
          f"peak temperature rise {setup.thermal_map.peak_rise:.2f} K, "
          f"{len(setup.hotspots)} hotspot(s) detected")

    # 3. Area management: Empty Row Insertion around the hotspots.
    manager = AreaManager(AreaManagementConfig(strategy="eri",
                                               area_overhead=args.overhead))
    result = manager.optimize(setup.placement, setup.power, setup.thermal_map)
    print(f"ERI: inserted {result.inserted_rows} empty rows "
          f"({result.actual_overhead * 100:.1f}% area overhead), "
          f"{result.num_fillers} filler cells added")

    # 4. Re-simulate and report.
    new_map = simulate_placement(result.placement, setup.power, package=setup.package)
    reduction = new_map.reduction_versus(setup.thermal_map)
    print(f"peak rise {setup.thermal_map.peak_rise:.2f} K -> {new_map.peak_rise:.2f} K "
          f"({reduction * 100:.1f}% reduction)")


if __name__ == "__main__":
    main()
