"""Power-density maps over the die.

The thermal model (Section II of the paper) groups "several standard cells
into one thermal cell", summing the power of all covered standard cells.
This module performs exactly that grouping: given a placed design and a
per-cell power report it produces the 2-D grid of power per thermal cell
(and the corresponding power density) that is injected into the RC thermal
network's active layer.

The default (compiled) engine bins all cells with one ``np.bincount`` over
the placement's cached coordinate arrays; the reference engine is the
original cell-at-a-time loop.  Both use :func:`math.floor` before clamping
(truncating with ``int()`` would collapse the open interval just below the
grid origin into bin 0 from the wrong side).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..engine import resolve_engine
from ..placement import Placement
from .power_model import PowerReport


@dataclass
class PowerMap:
    """Power binned onto the thermal grid.

    Attributes:
        power_w: Array of shape ``(ny, nx)`` with watts per grid bin;
            row 0 is the bottom (minimum y) of the die.
        bin_width_um: Bin width in micrometres.
        bin_height_um: Bin height in micrometres.
        origin_um: ``(x, y)`` of the grid's lower-left corner in the
            placement coordinate system.
    """

    power_w: np.ndarray
    bin_width_um: float
    bin_height_um: float
    origin_um: Tuple[float, float]

    @property
    def nx(self) -> int:
        return self.power_w.shape[1]

    @property
    def ny(self) -> int:
        return self.power_w.shape[0]

    @property
    def total_power(self) -> float:
        """Total power in watts."""
        return float(self.power_w.sum())

    @property
    def bin_area_m2(self) -> float:
        """Bin area in square metres."""
        return (self.bin_width_um * 1e-6) * (self.bin_height_um * 1e-6)

    def density_w_per_m2(self) -> np.ndarray:
        """Power density in watts per square metre, per bin."""
        return self.power_w / self.bin_area_m2

    def peak_density(self) -> Tuple[float, Tuple[int, int]]:
        """Peak power density (W/m^2) and its ``(iy, ix)`` location."""
        density = self.density_w_per_m2()
        flat = int(np.argmax(density))
        iy, ix = np.unravel_index(flat, density.shape)
        return float(density[iy, ix]), (int(iy), int(ix))

    def bin_of(self, x_um: float, y_um: float) -> Tuple[int, int]:
        """Grid indices ``(iy, ix)`` of the bin containing a point (clamped).

        Uses :func:`math.floor` so points just below the grid origin map to
        negative raw indices (then clamp to 0) instead of truncating toward
        zero and silently landing in bin 0 as if they were inside it.
        """
        ix = math.floor((x_um - self.origin_um[0]) / self.bin_width_um)
        iy = math.floor((y_um - self.origin_um[1]) / self.bin_height_um)
        return (
            min(max(iy, 0), self.ny - 1),
            min(max(ix, 0), self.nx - 1),
        )

    def bin_center(self, iy: int, ix: int) -> Tuple[float, float]:
        """Placement-coordinate centre of bin ``(iy, ix)`` in micrometres."""
        x = self.origin_um[0] + (ix + 0.5) * self.bin_width_um
        y = self.origin_um[1] + (iy + 0.5) * self.bin_height_um
        return (x, y)


def grid_bin_geometry(
    placement: Placement,
    nx: int = 40,
    ny: int = 40,
    over_die: bool = True,
) -> Tuple[Tuple[float, float], float, float]:
    """Geometry of the thermal-grid binning over a placement.

    The single source of truth for how placement coordinates map onto the
    ``nx`` x ``ny`` thermal grid; used by :func:`build_power_map` and by the
    leakage-feedback loop in :mod:`repro.thermal.solver` so both always bin
    cells identically.

    Args:
        placement: The placed design.
        nx: Number of grid bins in x.
        ny: Number of grid bins in y.
        over_die: When ``True`` the grid spans the die (core plus margin),
            matching the thermal model footprint; otherwise just the core.

    Returns:
        ``(origin, bin_width, bin_height)`` where ``origin`` is the ``(x, y)``
        of the grid's lower-left corner, all in micrometres.
    """
    floorplan = placement.floorplan
    if over_die:
        origin = (-floorplan.die_margin, -floorplan.die_margin)
        width, height = floorplan.die_width, floorplan.die_height
    else:
        origin = (0.0, 0.0)
        width, height = floorplan.core_width, floorplan.core_height
    return origin, width / nx, height / ny


def iter_cell_bins(
    placement: Placement,
    nx: int = 40,
    ny: int = 40,
    over_die: bool = True,
    include_fillers: bool = False,
) -> Iterator[Tuple[object, int, int]]:
    """Yield ``(cell, iy, ix)`` for every placed cell's grid bin.

    Each cell is assigned to the bin containing its centre, clamped to the
    grid (the paper's thermal-cell grouping).

    Args:
        placement: The placed design.
        nx: Number of grid bins in x.
        ny: Number of grid bins in y.
        over_die: Bin over the die outline (see :func:`grid_bin_geometry`).
        include_fillers: Also yield filler cells.

    Yields:
        ``(cell, iy, ix)`` tuples with clamped grid indices.
    """
    origin, bin_w, bin_h = grid_bin_geometry(placement, nx=nx, ny=ny, over_die=over_die)
    for cell in placement.placed_cells(include_fillers=include_fillers):
        cx, cy = cell.center
        ix = min(max(math.floor((cx - origin[0]) / bin_w), 0), nx - 1)
        iy = min(max(math.floor((cy - origin[1]) / bin_h), 0), ny - 1)
        yield cell, iy, ix


def cell_bin_indices(
    placement: Placement,
    nx: int = 40,
    ny: int = 40,
    over_die: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized cell-to-bin assignment over the whole netlist.

    Returns:
        ``(iy, ix, placed_mask)`` arrays aligned with the netlist's compiled
        cell order; unplaced cells carry ``False`` in the mask (their bin
        indices are meaningless).  Binning matches :func:`iter_cell_bins`
        exactly (centre-of-cell, floor, clamp).
    """
    origin, bin_w, bin_h = grid_bin_geometry(placement, nx=nx, ny=ny, over_die=over_die)
    cx, cy, placed = placement.cell_center_arrays()
    with np.errstate(invalid="ignore"):
        ix = np.clip(
            np.floor((cx - origin[0]) / bin_w), 0, nx - 1
        )
        iy = np.clip(
            np.floor((cy - origin[1]) / bin_h), 0, ny - 1
        )
    ix = np.nan_to_num(ix, nan=0.0).astype(np.int64)
    iy = np.nan_to_num(iy, nan=0.0).astype(np.int64)
    return iy, ix, placed


def build_power_map(
    placement: Placement,
    power: PowerReport,
    nx: int = 40,
    ny: int = 40,
    over_die: bool = True,
    engine: Optional[str] = None,
) -> PowerMap:
    """Bin per-cell power onto a thermal grid.

    Each placed cell contributes its full power to the bin containing its
    centre (the paper's thermal-cell grouping).  Unplaced cells are ignored;
    filler cells contribute zero by construction.

    Args:
        placement: The placed design.
        power: Per-cell power report.
        nx: Number of grid bins in x (the paper uses 40).
        ny: Number of grid bins in y (the paper uses 40).
        over_die: When ``True`` the grid spans the die (core plus margin),
            matching the thermal model footprint; otherwise just the core.
        engine: ``"compiled"`` (one ``np.bincount`` over cached coordinate
            arrays) or ``"reference"`` (cell-at-a-time); defaults to the
            process-wide engine.

    Returns:
        The :class:`PowerMap`.
    """
    origin, bin_w, bin_h = grid_bin_geometry(placement, nx=nx, ny=ny, over_die=over_die)

    if resolve_engine(engine) == "reference":
        grid = np.zeros((ny, nx), dtype=float)
        for cell, iy, ix in iter_cell_bins(placement, nx=nx, ny=ny, over_die=over_die):
            cell_power = power.power_of(cell.name)
            if cell_power == 0.0:
                continue
            grid[iy, ix] += cell_power
    else:
        comp = placement.netlist.compiled()
        iy, ix, placed = cell_bin_indices(placement, nx=nx, ny=ny, over_die=over_die)
        totals = power.total_for_names(comp.cell_names)
        mask = placed & ~comp.is_filler
        flat = iy[mask] * nx + ix[mask]
        grid = np.bincount(flat, weights=totals[mask], minlength=nx * ny).reshape(
            ny, nx
        )

    return PowerMap(
        power_w=grid,
        bin_width_um=bin_w,
        bin_height_um=bin_h,
        origin_um=origin,
    )
