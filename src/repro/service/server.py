"""The ``repro serve`` daemon: a batching, deduplicating sweep service.

One :class:`SweepServer` owns the expensive state — prepared experiment
baselines, the factorised-solver cache, the persistent result store — and
serves sweep requests from many concurrent clients over TCP.  Each request
names a workload and a (strategies x overheads) grid; the daemon resolves
every point against three tiers, cheapest first:

1. **Result store** — points evaluated by any earlier request, campaign or
   server lifetime are answered immediately from the store.
2. **In-flight dedupe** — a point another request is already computing is
   joined, not recomputed: both requests receive the one record.
3. **Cross-request batching** — remaining misses from *all* concurrent
   requests are gathered for a short window, grouped by transformed die
   geometry, and solved as warm-started multi-RHS blocks
   (:meth:`~repro.thermal.solver.ThermalSolver.solve_many`).  The
   "millions of users" story: many small requests amortized into a few
   big batched solves, with ``num_solve_groups`` < total points.

Records are computed by the same :class:`~repro.flow.runner.Campaign`
machinery clients would run locally, so server-side results are
bitwise-identical to an in-process sweep (on the LU backend; multigrid
batches agree to ~1e-12, exactly as ``Campaign(batch_solves=True)``).

The wire protocol is newline-delimited JSON over a plain socket — one
request object per line, one response object per line, stdlib only.
"""

from __future__ import annotations

import json
import logging
import queue
import socketserver
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, TimeoutError as FuturesTimeoutError
from typing import Dict, List, Mapping, Optional, Tuple

from ..core import resolve_strategy
from ..deadlines import Deadline, deadline_scope
from ..faults import inject
from ..flow.cache import SolverCache
from ..flow.experiment import ExperimentSetup
from ..flow.recover import recover_store
from ..flow.runner import Campaign, CampaignPoint, CampaignRecord, FailedPoint
from ..flow.store import ResultStore

logger = logging.getLogger(__name__)

#: Protocol identifier echoed by ``ping`` so clients can verify what they
#: reached before submitting work.
PROTOCOL = "repro-sweep/1"


class _Task:
    """One point a request is waiting on, with its fan-out future."""

    __slots__ = ("key", "point", "analyze_timing", "future", "created_at")

    def __init__(self, key: str, point: CampaignPoint, analyze_timing: bool) -> None:
        self.key = key
        self.point = point
        self.analyze_timing = analyze_timing
        self.future: "Future[CampaignRecord]" = Future()
        self.created_at = time.monotonic()


class SweepServer:
    """Long-running sweep daemon over prepared experiment baselines.

    Args:
        setups: Prepared baselines, keyed by workload name — the workloads
            clients may sweep.  Preparing them is the server operator's
            startup cost; requests only ever pay for strategy evaluation.
        result_store: Persistent record store; a memory-only
            :class:`ResultStore` when omitted.  Give it an on-disk root to
            share results with offline campaigns and across restarts.
        cache: Factorised-solver cache shared by every request; fresh
            when omitted.
        host: Bind address (default loopback).
        port: Bind port; ``0`` (default) picks a free one — read
            :attr:`address` after construction.
        batch_window_s: How long the scheduler gathers points across
            requests before solving a batch.  Larger windows find more
            cross-request geometry sharing; smaller windows cut latency.
        max_batch: Upper bound on points per gathered batch.
        max_workers: Worker threads per batch evaluation (default: CPUs).
        request_timeout_s: How long a request handler waits for its
            points before failing the request.  Each gathered batch also
            runs its solves under a deadline of the same length, so a hung
            solve fails its batch instead of wedging the scheduler.
        point_timeout_s: Per-point attempt budget forwarded to the
            server's internal campaigns (see
            :class:`~repro.flow.runner.Campaign`); ``None`` disables
            per-point deadlines.
    """

    def __init__(
        self,
        setups: Mapping[str, ExperimentSetup],
        result_store: Optional[ResultStore] = None,
        cache: Optional[SolverCache] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_s: float = 0.05,
        max_batch: int = 256,
        max_workers: Optional[int] = None,
        request_timeout_s: float = 600.0,
        point_timeout_s: Optional[float] = None,
    ) -> None:
        if not setups:
            raise ValueError("server requires at least one prepared setup")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError("point_timeout_s must be > 0")
        self.setups: Dict[str, ExperimentSetup] = dict(setups)
        self.store = result_store if result_store is not None else ResultStore()
        self.cache = cache if cache is not None else SolverCache()
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.max_workers = max_workers
        self.request_timeout_s = request_timeout_s
        self.point_timeout_s = point_timeout_s

        # A hard-killed predecessor may have left single-flight claims and
        # staging debris in the shared store; clear what is provably
        # abandoned before accepting requests, so the first sweeps do not
        # wait out stale claims.
        if self.store.root is not None:
            try:
                recovered = recover_store(self.store.root)
                if recovered.num_repaired:
                    logger.warning(
                        "recovered result store %s at startup (%s)",
                        self.store.root, recovered.summary(),
                    )
            except OSError as error:
                logger.warning("store recovery pass failed: %s", error)

        # One batching campaign per analyze_timing flavour; both share the
        # server's setups and solver cache, so geometry reuse spans them.
        self._campaigns: Dict[bool, Campaign] = {}
        self._pending: Dict[str, _Task] = {}
        self._queue: "queue.Queue[_Task]" = queue.Queue()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._counters = {
            "requests": 0,
            "points_requested": 0,
            "store_hits": 0,
            "inflight_joins": 0,
            "points_solved": 0,
            "num_solve_groups": 0,
            "batches": 0,
            "failed_points": 0,
        }

        server = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # one JSON line per request
                while True:
                    line = self.rfile.readline()
                    if not line:
                        return
                    response = server._dispatch(line)
                    self.wfile.write(
                        json.dumps(response, sort_keys=False).encode() + b"\n"
                    )
                    self.wfile.flush()
                    if response.get("closing"):
                        return

        class _TCPServer(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = _TCPServer((host, port), _Handler)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-batcher", daemon=True
        )
        self._serve_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to."""
        return self._tcp.server_address[:2]

    def start(self) -> None:
        """Serve in background threads (for tests and embedding)."""
        self._scheduler.start()
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._serve_thread.start()
        logger.info("repro serve listening on %s:%d", *self.address)

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI mode)."""
        self._scheduler.start()
        logger.info("repro serve listening on %s:%d", *self.address)
        self._tcp.serve_forever()

    def shutdown(self, drain: bool = False, drain_timeout_s: float = 30.0) -> None:
        """Stop the server and release the socket.

        With ``drain=True`` the accept loop stops first (new connections are
        refused and new sweeps rejected), then in-flight batches are given up
        to ``drain_timeout_s`` to finish before the scheduler is stopped.
        Without draining, outstanding points fail immediately with
        ``RuntimeError("server shut down")``.
        """
        self._draining.set()
        # Refuse new connections before anything else; handler threads
        # already inside a request keep running until their response is sent.
        self._tcp.shutdown()
        if drain:
            deadline = time.monotonic() + drain_timeout_s
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(0.02)
        self._stop.set()
        self._tcp.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._scheduler.is_alive():
            self._scheduler.join(timeout=5.0)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for task in pending:
            if not task.future.done():
                task.future.set_exception(RuntimeError("server shut down"))
        self._closed.set()

    def wait_closed(self, timeout: Optional[float] = None) -> bool:
        """Block until a (possibly draining) shutdown has fully finished.

        The ``shutdown`` protocol op runs :meth:`shutdown` on a background
        thread; CLI mode waits on this after the accept loop returns so a
        drain is not cut short by process exit.
        """
        return self._closed.wait(timeout)

    def __enter__(self) -> "SweepServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- request dispatch ----------------------------------------------------

    def _dispatch(self, line: bytes) -> Dict[str, object]:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except (ValueError, UnicodeDecodeError) as error:
            return {"ok": False, "error": f"bad request: {error}"}
        op = payload.get("op")
        try:
            if op == "ping":
                return {"ok": True, "protocol": PROTOCOL,
                        "workloads": sorted(self.setups)}
            if op == "health":
                now = time.monotonic()
                with self._lock:
                    pending = len(self._pending)
                    oldest = min(
                        (now - task.created_at for task in self._pending.values()),
                        default=0.0,
                    )
                return {
                    "ok": True,
                    "protocol": PROTOCOL,
                    "status": "draining" if self._draining.is_set() else "serving",
                    "pending": pending,
                    # Age of the longest-waiting in-flight point: the
                    # operator's wedge detector (compare against
                    # request_timeout_s when alerting).
                    "oldest_inflight_s": oldest,
                    "request_timeout_s": self.request_timeout_s,
                    "point_timeout_s": self.point_timeout_s,
                    "workloads": sorted(self.setups),
                }
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "sweep":
                return self._handle_sweep(payload)
            if op == "shutdown":
                # Deferred: respond first, then stop the accept loop from a
                # thread that is not inside it.  ``drain: true`` finishes
                # in-flight batches before the scheduler stops.
                drain = bool(payload.get("drain", False))
                self._draining.set()
                threading.Thread(
                    target=self.shutdown, kwargs={"drain": drain}, daemon=True
                ).start()
                return {"ok": True, "closing": True, "draining": drain}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as error:  # a request must never kill the daemon
            logger.exception("request %r failed", op)
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}

    def _campaign(self, analyze_timing: bool) -> Campaign:
        with self._lock:
            campaign = self._campaigns.get(analyze_timing)
            if campaign is None:
                campaign = Campaign(
                    self.setups,
                    analyze_timing=analyze_timing,
                    cache=self.cache,
                    name=f"serve-batch{'-timing' if analyze_timing else ''}",
                    batch_solves=True,
                    point_timeout_s=self.point_timeout_s,
                )
                self._campaigns[analyze_timing] = campaign
            return campaign

    def _handle_sweep(self, payload: Mapping[str, object]) -> Dict[str, object]:
        if self._draining.is_set():
            return {"ok": False, "error": "server is draining; not accepting sweeps"}
        workload = payload.get("workload")
        inject("service.sweep", {"workload": workload})
        if workload not in self.setups:
            return {
                "ok": False,
                "error": f"unknown workload {workload!r}; "
                         f"serving {sorted(self.setups)}",
            }
        try:
            strategies = [
                resolve_strategy(spec).spec for spec in payload["strategies"]
            ]
            overheads = [float(value) for value in payload["overheads"]]
        except (KeyError, TypeError, ValueError) as error:
            return {"ok": False, "error": f"bad sweep spec: {error}"}
        if not strategies or not overheads:
            return {"ok": False, "error": "sweep needs strategies and overheads"}
        analyze_timing = bool(payload.get("analyze_timing", False))
        # A client may ship its own end-to-end deadline; the server then
        # waits no longer than the tighter of the two, so work for a
        # caller that has already given up is failed promptly server-side.
        timeout_s = self.request_timeout_s
        client_timeout = payload.get("timeout_s")
        if client_timeout is not None:
            try:
                client_timeout = float(client_timeout)
            except (TypeError, ValueError):
                return {"ok": False, "error": f"bad timeout_s: {client_timeout!r}"}
            if client_timeout <= 0:
                return {"ok": False, "error": "timeout_s must be > 0"}
            timeout_s = min(timeout_s, client_timeout)

        campaign = self._campaign(analyze_timing)
        points = [
            CampaignPoint(workload=workload, strategy=strategy, overhead=overhead)
            for strategy in strategies
            for overhead in overheads
        ]
        store_hits = 0
        joins = 0
        slots: List[Tuple[Optional[CampaignRecord], Optional[_Task]]] = []
        for point in points:
            key = campaign.result_key_for(point)
            record = self.store.get(key)
            if record is not None:
                store_hits += 1
                slots.append((record, None))
                continue
            with self._lock:
                task = self._pending.get(key)
                if task is not None and task.analyze_timing == analyze_timing:
                    joins += 1
                    slots.append((None, task))
                    continue
                task = _Task(key, point, analyze_timing)
                self._pending[key] = task
            self._queue.put(task)
            slots.append((None, task))

        deadline = time.monotonic() + timeout_s
        records: List[CampaignRecord] = []
        for record, task in slots:
            if record is None:
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    record = task.future.result(timeout=remaining)
                except FuturesTimeoutError:
                    # The request deadline elapsed while the point was
                    # still in flight.  The task stays pending — a later
                    # request (or the running batch) may still finish it;
                    # only this waiter gives up.
                    return {
                        "ok": False,
                        "error": (
                            f"request deadline exceeded after {timeout_s:.1f}s "
                            f"waiting for point {task.point}"
                        ),
                    }
            records.append(record)

        with self._lock:
            self._counters["requests"] += 1
            self._counters["points_requested"] += len(points)
            self._counters["store_hits"] += store_hits
            self._counters["inflight_joins"] += joins
        return {
            "ok": True,
            "records": [record.to_dict() for record in records],
            "stats": {
                "num_points": len(points),
                "store_hits": store_hits,
                "inflight_joins": joins,
                "computed": len(points) - store_hits - joins,
                "server": self.stats(),
            },
        }

    # -- batching scheduler --------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            batch = [first]
            deadline = time.monotonic() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            self._run_batch(batch)

    def _run_batch(self, batch: List[_Task]) -> None:
        """Solve one gathered batch, grouped by timing flavour then geometry."""
        by_flag: Dict[bool, "OrderedDict[str, _Task]"] = {}
        for task in batch:
            by_flag.setdefault(task.analyze_timing, OrderedDict())[task.key] = task
        for analyze_timing, tasks in by_flag.items():
            campaign = self._campaign(analyze_timing)
            points = [task.point for task in tasks.values()]
            try:
                # Crash seam for the kill-9 harness, then the per-batch
                # deadline: the scheduler thread runs the grouped solves
                # itself, so the scope bounds them directly — a hung batch
                # fails its waiters instead of wedging the scheduler loop.
                with deadline_scope(Deadline.after(self.request_timeout_s)):
                    inject("service.batch", {"num_points": len(points)})
                    records = campaign.evaluate_points(
                        points, max_workers=self.max_workers
                    )
            except Exception as error:
                logger.exception("batch of %d points failed", len(points))
                with self._lock:
                    for key in tasks:
                        self._pending.pop(key, None)
                for task in tasks.values():
                    if not task.future.done():
                        task.future.set_exception(error)
                continue
            groups = getattr(campaign, "_num_solve_groups", len(points))
            solved = sum(1 for record in records if isinstance(record, CampaignRecord))
            failed = len(records) - solved
            with self._lock:
                self._counters["points_solved"] += solved
                self._counters["failed_points"] += failed
                self._counters["num_solve_groups"] += groups
                self._counters["batches"] += 1
            logger.info(
                "batch: %d point(s) -> %d solve group(s)", len(points), groups
            )
            for (key, task), record in zip(tasks.items(), records):
                with self._lock:
                    self._pending.pop(key, None)
                if isinstance(record, FailedPoint):
                    # Quarantined point: fail only its waiters; never publish.
                    if not task.future.done():
                        task.future.set_exception(
                            RuntimeError(
                                f"point failed after {record.attempts} "
                                f"attempt(s): {record.error}"
                            )
                        )
                    continue
                if record is None:
                    if not task.future.done():
                        task.future.set_exception(
                            RuntimeError("point skipped (server interrupted)")
                        )
                    continue
                self.store.put(key, record)
                if not task.future.done():
                    task.future.set_result(record)

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Lifetime service counters plus store and solver-cache stats."""
        with self._lock:
            counters = dict(self._counters)
        counters["result_store"] = self.store.stats().as_dict()
        counters["solver_cache"] = self.cache.stats().as_dict()
        return counters


__all__ = ["SweepServer", "PROTOCOL"]
