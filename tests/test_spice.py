"""Tests for SPICE export, parsing and the internal MNA solver."""

import numpy as np
import pytest

from repro.thermal import (
    ThermalGrid,
    ThermalNetwork,
    ThermalSolver,
    default_package,
    parse_spice_netlist,
    solve_spice_netlist,
    write_spice_netlist,
)
from repro.thermal.spice import node_name


class TestExport:
    @pytest.fixture(scope="class")
    def tiny(self):
        grid = ThermalGrid(40.0, 40.0, nx=4, ny=4, package=default_package())
        network = ThermalNetwork(grid)
        power = np.zeros((4, 4))
        power[1, 2] = 1e-4
        return grid, network, power

    def test_deck_structure(self, tiny):
        _grid, network, power = tiny
        deck = write_spice_netlist(network, power)
        assert deck.startswith("*")
        assert "Vamb amb 0 DC" in deck
        assert ".end" in deck
        assert "I0 0" in deck

    def test_parse_round_trip_counts(self, tiny):
        _grid, network, power = tiny
        deck = write_spice_netlist(network, power)
        circuit = parse_spice_netlist(deck)
        assert len(circuit.voltage_sources) == 1
        assert len(circuit.current_sources) == 1
        assert len(circuit.resistors) == len(network.elements().conductances)

    def test_mna_matches_internal_solver(self, tiny):
        grid, network, power = tiny
        deck = write_spice_netlist(network, power)
        voltages = solve_spice_netlist(deck)
        reference = ThermalSolver(grid).solve(power)
        # Compare the hottest active-layer node temperature.
        iy, ix = reference.peak_location()
        node = node_name(grid.node_index(grid.package.active_layer, iy, ix))
        assert voltages[node] == pytest.approx(reference.temperatures[iy, ix], rel=1e-6)

    def test_ambient_node_at_ambient_temperature(self, tiny):
        grid, network, power = tiny
        deck = write_spice_netlist(network, power)
        voltages = solve_spice_netlist(deck)
        assert voltages["amb"] == pytest.approx(grid.package.ambient_celsius, abs=1e-9)


class TestParser:
    def test_parse_simple_divider(self):
        deck = """* resistor divider
V1 top 0 DC 10.0
R1 top mid 5.0
R2 mid 0 5.0
.end
"""
        voltages = solve_spice_netlist(deck)
        assert voltages["mid"] == pytest.approx(5.0)
        assert voltages["top"] == pytest.approx(10.0)

    def test_current_source_into_resistor(self):
        deck = """* current into resistor
I1 0 n1 DC 0.5
R1 n1 0 4.0
.end
"""
        voltages = solve_spice_netlist(deck)
        assert voltages["n1"] == pytest.approx(2.0)

    def test_unsupported_element_rejected(self):
        with pytest.raises(ValueError, match="unsupported"):
            parse_spice_netlist("C1 a 0 1e-12\n.end\n")

    def test_malformed_resistor_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_spice_netlist("R1 a 0\n.end\n")

    def test_non_positive_resistance_rejected(self):
        with pytest.raises(ValueError, match="non-positive"):
            solve_spice_netlist("R1 a 0 0.0\nI1 0 a DC 1.0\n.end\n")

    def test_empty_deck_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            solve_spice_netlist("* nothing here\n.end\n")

    def test_comments_and_title(self):
        circuit = parse_spice_netlist("* my title\nR1 a 0 1.0\n.end\n")
        assert circuit.title == "my title"
        assert circuit.node_names() == ["a"]
