"""Empty Row Insertion (ERI).

Section III-A of the paper: "In the area around a given hotspot, we insert
an empty row between useful rows.  This row of whitespace will be filled
with dummy cells.  In this way we increase the area only of the hotspot
region.  Since there is an empty row in every other row, the power density
of the hotspot region is reduced evenly."

Implementation: the rows intersecting the hotspot rectangles are collected,
an empty row is scheduled below every other hotspot row (round-robin over
hotspots until the row budget is spent; if the budget exceeds one empty row
per hotspot row, additional empty rows are scheduled around the hotspot
spans), the core grows by the corresponding number of rows, and every cell
keeps its x coordinate while its row index is shifted upward by the number
of empty rows inserted below it — exactly the "move rows of cells upward by
an offset of a few rows" operation the paper describes.  The created
whitespace rows are finally filled with dummy (filler) cells.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..placement import Placement, insert_fillers
from .hotspot import Hotspot


@dataclass
class EmptyRowInsertionResult:
    """Outcome of an empty-row-insertion transformation.

    Attributes:
        placement: The transformed placement (cloned netlist; the baseline
            placement is untouched).
        inserted_rows: Number of empty rows inserted.
        insertion_points: Baseline row indices below which an empty row was
            inserted (one entry per inserted row, duplicates allowed when
            more than one empty row lands below the same baseline row).
        requested_overhead: Area overhead requested, if the transformation
            was driven by an overhead target rather than a row count.
        actual_overhead: Core-area overhead actually obtained.
        num_fillers: Filler cells inserted into the new whitespace.
    """

    placement: Placement
    inserted_rows: int
    insertion_points: List[int] = field(default_factory=list)
    requested_overhead: Optional[float] = None
    actual_overhead: float = 0.0
    num_fillers: int = 0


def rows_for_overhead(baseline: Placement, area_overhead: float) -> int:
    """Number of empty rows equivalent to an area-overhead fraction.

    One inserted row adds ``row_height * core_width`` of core area, so the
    row count is the overhead times the baseline row count (rounded up, so
    the requested overhead is always reached).
    """
    if area_overhead < 0.0:
        raise ValueError(f"area_overhead must be non-negative, got {area_overhead}")
    return int(math.ceil(area_overhead * baseline.floorplan.num_rows - 1e-9))


def plan_insertion_points(
    baseline: Placement, hotspots: Sequence[Hotspot], num_rows: int
) -> List[int]:
    """Choose the baseline rows below which empty rows will be inserted.

    Strategy (every-other-row within each hotspot, widening outward):

    1. For every hotspot, list the rows its rectangle spans, ordered by
       proximity to the hotspot's peak thermal cell (so a limited budget is
       concentrated where the temperature actually peaks).
    2. Round-robin over hotspots, scheduling an empty row below every other
       spanned row (the alternation of the paper's Figure 3).
    3. If the budget is still not exhausted, schedule empty rows below the
       remaining (skipped) hotspot rows, then below rows progressively
       further above/below the hotspot spans.

    Args:
        baseline: The placement being transformed.
        hotspots: Detected hotspots (hottest first).
        num_rows: Number of empty rows to schedule.

    Returns:
        A list of baseline row indices of length ``num_rows`` (possibly with
        repeats when the budget exceeds the available distinct positions).
    """
    if num_rows <= 0:
        return []
    num_baseline_rows = baseline.floorplan.num_rows
    row_height = baseline.floorplan.row_height

    spans: List[List[int]] = []
    peak_rows: List[int] = []
    for hotspot in hotspots:
        first, last = hotspot.row_span(baseline)
        spans.append(list(range(first, last + 1)))
        peak_y = (
            hotspot.peak_xy_um[1]
            if hotspot.peak_xy_um is not None
            else hotspot.rect.center[1]
        )
        peak_rows.append(
            baseline.floorplan.row_of_y(
                min(max(peak_y, 0.0), baseline.floorplan.core_height - 1e-6)
            )
        )
    if not spans:
        # No hotspot: degrade gracefully to uniform insertion.
        spans = [list(range(num_baseline_rows))]
        peak_rows = [num_baseline_rows // 2]

    # Every other row of each span (the alternation of Figure 3) forms the
    # primary positions, the skipped rows the secondary ones; within each
    # group, rows closest to the hotspot's thermal peak are used first so a
    # limited budget concentrates where the temperature actually peaks.
    primary: List[List[int]] = []
    secondary: List[List[int]] = []
    for span, peak_row in zip(spans, peak_rows):
        primary.append(sorted(span[::2], key=lambda row: (abs(row - peak_row), row)))
        secondary.append(sorted(span[1::2], key=lambda row: (abs(row - peak_row), row)))

    chosen: List[int] = []
    used: Set[int] = set()

    def take_round_robin(groups: List[List[int]]) -> None:
        cursors = [0] * len(groups)
        while len(chosen) < num_rows:
            progressed = False
            for g, group in enumerate(groups):
                if len(chosen) >= num_rows:
                    break
                while cursors[g] < len(group) and group[cursors[g]] in used:
                    cursors[g] += 1
                if cursors[g] < len(group):
                    row = group[cursors[g]]
                    chosen.append(row)
                    used.add(row)
                    cursors[g] += 1
                    progressed = True
            if not progressed:
                break

    take_round_robin(primary)
    if len(chosen) < num_rows:
        take_round_robin(secondary)

    # Widen outward from the hotspot spans if budget remains.
    if len(chosen) < num_rows:
        frontier = 1
        all_span_rows = sorted({row for span in spans for row in span})
        while len(chosen) < num_rows and frontier <= num_baseline_rows:
            extra: List[List[int]] = [[]]
            for row in all_span_rows:
                for candidate in (row - frontier, row + frontier):
                    if 0 <= candidate < num_baseline_rows and candidate not in used:
                        extra[0].append(candidate)
            if extra[0]:
                take_round_robin(extra)
            frontier += 1

    # Still short (tiny designs): repeat the hottest hotspot rows.
    while len(chosen) < num_rows:
        chosen.append(spans[0][0] if spans[0] else 0)

    return chosen[:num_rows]


def apply_empty_row_insertion(
    baseline: Placement,
    hotspots: Sequence[Hotspot],
    num_rows: Optional[int] = None,
    area_overhead: Optional[float] = None,
    add_fillers: bool = True,
) -> EmptyRowInsertionResult:
    """Insert empty rows around the hotspots of a placed design.

    Exactly one of ``num_rows`` and ``area_overhead`` must be provided (the
    paper drives ERI by the number of extra rows; the overhead form is the
    convenience used by the sweep benchmarks).

    Args:
        baseline: The placement to transform (left untouched).
        hotspots: Detected hotspots, hottest first.
        num_rows: Number of empty rows to insert.
        area_overhead: Alternatively, the target core-area overhead.
        add_fillers: Fill the created whitespace with dummy cells.

    Returns:
        An :class:`EmptyRowInsertionResult` whose placement lives on a
        cloned netlist.

    Raises:
        ValueError: If neither or both of ``num_rows``/``area_overhead`` are
            given.
    """
    if (num_rows is None) == (area_overhead is None):
        raise ValueError("provide exactly one of num_rows or area_overhead")
    if num_rows is None:
        num_rows = rows_for_overhead(baseline, area_overhead)

    insertion_points = plan_insertion_points(baseline, hotspots, num_rows)
    return apply_row_insertions(
        baseline,
        insertion_points,
        requested_overhead=area_overhead,
        add_fillers=add_fillers,
    )


def apply_row_insertions(
    baseline: Placement,
    insertion_points: Sequence[int],
    requested_overhead: Optional[float] = None,
    add_fillers: bool = True,
) -> EmptyRowInsertionResult:
    """Insert empty rows below explicitly chosen baseline row indices.

    This is the mechanical half of empty row insertion, exposed so other
    planners (e.g. the thermal-gradient strategy, which apportions rows by
    row-average temperature rather than hotspot proximity) can reuse the
    row-shifting machinery with their own insertion plan.

    Args:
        baseline: The placement to transform (left untouched).
        insertion_points: Baseline row indices below which to insert an
            empty row; duplicates insert several rows at the same point.
        requested_overhead: Book-keeping value stored on the result.
        add_fillers: Fill the created whitespace with dummy cells.

    Returns:
        An :class:`EmptyRowInsertionResult` whose placement lives on a
        cloned netlist.

    Raises:
        ValueError: If any insertion point is outside the baseline rows.
    """
    insertion_points = list(insertion_points)
    num_baseline_rows = baseline.floorplan.num_rows
    for row in insertion_points:
        if not 0 <= row < num_baseline_rows:
            raise ValueError(
                f"insertion point {row} outside baseline rows [0, {num_baseline_rows})"
            )

    # Number of empty rows inserted below each baseline row index.
    inserted_below: Dict[int, int] = {}
    for row in insertion_points:
        inserted_below[row] = inserted_below.get(row, 0) + 1

    base_floorplan = baseline.floorplan
    new_floorplan = base_floorplan.with_extra_rows(len(insertion_points))

    #

    # Map baseline row -> new row index (shift up by the empties below it).
    shift = 0
    row_mapping: Dict[int, int] = {}
    for row_index in range(base_floorplan.num_rows):
        shift += inserted_below.get(row_index, 0)
        row_mapping[row_index] = row_index + shift

    netlist = baseline.netlist.copy()
    placement = Placement(netlist, new_floorplan)
    placement.regions = dict(baseline.regions)

    for cell in netlist.cells.values():
        if not cell.is_placed:
            continue
        old_row = base_floorplan.row_of_y(cell.y + 1e-9)
        new_row = row_mapping.get(old_row, old_row)
        placement.assign(cell, new_row, cell.x)
    for row in placement.rows:
        row.sort()

    num_fillers = len(insert_fillers(placement)) if add_fillers else 0

    actual_overhead = new_floorplan.core_area / base_floorplan.core_area - 1.0
    return EmptyRowInsertionResult(
        placement=placement,
        inserted_rows=len(insertion_points),
        insertion_points=insertion_points,
        requested_overhead=requested_overhead,
        actual_overhead=actual_overhead,
        num_fillers=num_fillers,
    )
