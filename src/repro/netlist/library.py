"""Standard-cell library model.

The paper implements its circuits in an STM 65 nm standard-cell technology.
That library is proprietary, so this module provides a small, self-contained
library whose *aggregate* characteristics (cell area, pin capacitance, drive
resistance, leakage, site geometry) are calibrated to public 65 nm-class
numbers.  Only those aggregates enter the post-placement techniques: the
methods need cell areas to compute utilization and whitespace, per-cell power
to build the power map, and delays to check the timing overhead.

The library is exposed through :class:`CellLibrary`, a container of
:class:`MasterCell` definitions plus the row/site geometry used by the
placement substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

# ---------------------------------------------------------------------------
# Technology constants (65 nm-class).
# ---------------------------------------------------------------------------

#: Supply voltage in volts for the 65 nm-class process.
VDD = 1.0

#: Placement site width in micrometres.
SITE_WIDTH = 0.2

#: Placement row (and cell) height in micrometres.
ROW_HEIGHT = 1.8

#: Wire capacitance per micrometre of estimated length, in femtofarads.
WIRE_CAP_PER_UM = 0.2

#: Wire resistance per micrometre of estimated length, in ohms.
WIRE_RES_PER_UM = 1.0

#: Nominal analysis temperature in degrees Celsius.
NOMINAL_TEMPERATURE = 25.0

#: Fractional increase in cell delay per 10 degrees Celsius (paper: the MOS
#: current drive decreases ~4% per 10 C).
CELL_DELAY_TEMP_COEFF = 0.04 / 10.0

#: Fractional increase in interconnect delay per 10 degrees Celsius (paper:
#: ~5% per 10 C).
WIRE_DELAY_TEMP_COEFF = 0.05 / 10.0


# ---------------------------------------------------------------------------
# Logic functions used by the vectorized logic simulator.
#
# Each function receives a list of NumPy boolean arrays (one per input pin,
# in pin order) and returns one NumPy boolean array per output pin.
# ---------------------------------------------------------------------------


def _fn_const0(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    base = inputs[0] if inputs else np.zeros(1, dtype=bool)
    return (np.zeros_like(base, dtype=bool),)


def _fn_buf(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    return (inputs[0].copy(),)


def _fn_inv(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    return (~inputs[0],)


def _fn_and(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    out = inputs[0].copy()
    for arr in inputs[1:]:
        out &= arr
    return (out,)


def _fn_nand(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    return (~_fn_and(inputs)[0],)


def _fn_or(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    out = inputs[0].copy()
    for arr in inputs[1:]:
        out |= arr
    return (out,)


def _fn_nor(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    return (~_fn_or(inputs)[0],)


def _fn_xor(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    out = inputs[0].copy()
    for arr in inputs[1:]:
        out ^= arr
    return (out,)


def _fn_xnor(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    return (~_fn_xor(inputs)[0],)


def _fn_mux2(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    a, b, sel = inputs
    return (np.where(sel, b, a).astype(bool),)


def _fn_aoi21(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    a, b, c = inputs
    return (~((a & b) | c),)


def _fn_oai21(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    a, b, c = inputs
    return (~((a | b) & c),)


def _fn_ha(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    a, b = inputs
    return (a ^ b, a & b)


def _fn_fa(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    a, b, cin = inputs
    s = a ^ b ^ cin
    cout = (a & b) | (cin & (a ^ b))
    return (s, cout)


def _fn_dff(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    # Combinationally, the flip-flop output does not depend on D; the
    # sequential behaviour is handled explicitly by the logic simulator.
    return (inputs[0].copy(),)


def _fn_filler(inputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
    return _fn_const0(inputs)


#: Maps every built-in logic function to the vector-op code the compiled
#: array engine (:mod:`repro.netlist.compiled`) evaluates whole levels with.
#: Custom master cells whose function is not listed here still simulate
#: correctly — the compiled engine falls back to calling their ``function``
#: cell by cell within the level.
VECTOR_OP_CODES = {
    _fn_const0: "const0",
    _fn_buf: "buf",
    _fn_inv: "inv",
    _fn_and: "and",
    _fn_nand: "nand",
    _fn_or: "or",
    _fn_nor: "nor",
    _fn_xor: "xor",
    _fn_xnor: "xnor",
    _fn_mux2: "mux2",
    _fn_aoi21: "aoi21",
    _fn_oai21: "oai21",
    _fn_ha: "ha",
    _fn_fa: "fa",
    _fn_dff: "buf",
    _fn_filler: "const0",
}


# ---------------------------------------------------------------------------
# Master cell definition.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MasterCell:
    """A library (master) cell definition.

    Attributes:
        name: Library cell name, e.g. ``"NAND2_X1"``.
        inputs: Ordered input pin names.
        outputs: Ordered output pin names.
        width_sites: Cell width in placement sites.
        input_cap_ff: Capacitance per input pin in femtofarads.
        drive_res_kohm: Equivalent output drive resistance in kilo-ohms.
        intrinsic_delay_ps: Intrinsic (unloaded) delay in picoseconds.
        leakage_nw: Static leakage power in nanowatts at nominal temperature.
        internal_energy_fj: Internal switching energy per output transition
            in femtojoules.
        function: Vectorized logic function mapping input arrays to output
            arrays, or ``None`` for non-logic cells (fillers).
        is_sequential: ``True`` for flip-flops and latches.
        is_filler: ``True`` for zero-power dummy/filler cells.
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    width_sites: int
    input_cap_ff: float
    drive_res_kohm: float
    intrinsic_delay_ps: float
    leakage_nw: float
    internal_energy_fj: float
    function: Optional[Callable[[Sequence[np.ndarray]], Tuple[np.ndarray, ...]]] = None
    is_sequential: bool = False
    is_filler: bool = False

    @property
    def width_um(self) -> float:
        """Cell width in micrometres."""
        return self.width_sites * SITE_WIDTH

    @property
    def height_um(self) -> float:
        """Cell height in micrometres (one row)."""
        return ROW_HEIGHT

    @property
    def area_um2(self) -> float:
        """Cell area in square micrometres."""
        return self.width_um * self.height_um

    @property
    def num_pins(self) -> int:
        """Total number of signal pins."""
        return len(self.inputs) + len(self.outputs)

    def evaluate(self, input_values: Sequence[np.ndarray]) -> Tuple[np.ndarray, ...]:
        """Evaluate the cell's logic function on vectorized pin values.

        Args:
            input_values: One boolean array per input pin, in pin order.

        Returns:
            One boolean array per output pin, in pin order.

        Raises:
            ValueError: If the cell has no logic function (e.g. a filler).
        """
        if self.function is None:
            raise ValueError(f"cell {self.name} has no logic function")
        return self.function(input_values)


class CellLibrary:
    """A collection of master cells plus row/site geometry.

    The default library (see :func:`default_library`) models a 65 nm-class
    standard-cell set sufficient to build the paper's synthetic arithmetic
    benchmark: basic gates, compound gates, half/full adders, a mux, a
    flip-flop, and filler (dummy) cells of several widths.
    """

    def __init__(
        self,
        cells: Sequence[MasterCell],
        site_width: float = SITE_WIDTH,
        row_height: float = ROW_HEIGHT,
        vdd: float = VDD,
    ) -> None:
        self._cells: Dict[str, MasterCell] = {}
        for cell in cells:
            if cell.name in self._cells:
                raise ValueError(f"duplicate master cell {cell.name}")
            self._cells[cell.name] = cell
        self.site_width = site_width
        self.row_height = row_height
        self.vdd = vdd

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> MasterCell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError(f"unknown master cell {name!r}") from None

    def __iter__(self):
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def names(self) -> List[str]:
        """Names of all master cells in the library."""
        return list(self._cells)

    def get(self, name: str) -> Optional[MasterCell]:
        """Return the master cell with ``name`` or ``None``."""
        return self._cells.get(name)

    def add(self, cell: MasterCell) -> None:
        """Add a master cell, rejecting duplicates."""
        if cell.name in self._cells:
            raise ValueError(f"duplicate master cell {cell.name}")
        self._cells[cell.name] = cell

    def filler_cells(self) -> List[MasterCell]:
        """Return filler (dummy) cells sorted by decreasing width."""
        fillers = [c for c in self._cells.values() if c.is_filler]
        return sorted(fillers, key=lambda c: -c.width_sites)

    def logic_cells(self) -> List[MasterCell]:
        """Return non-filler cells."""
        return [c for c in self._cells.values() if not c.is_filler]

    def sequential_cells(self) -> List[MasterCell]:
        """Return sequential cells (flip-flops)."""
        return [c for c in self._cells.values() if c.is_sequential]


def default_library() -> CellLibrary:
    """Build the default 65 nm-class cell library.

    Returns:
        A :class:`CellLibrary` with combinational gates, adder cells, a
        2:1 mux, a D flip-flop and filler cells of widths 1, 2, 4, 8, 16
        and 32 sites.
    """
    cells: List[MasterCell] = [
        MasterCell("INV_X1", ("A",), ("Y",), 3, 1.2, 6.0, 8.0, 12.0, 0.4, _fn_inv),
        MasterCell("INV_X2", ("A",), ("Y",), 4, 2.2, 3.2, 7.0, 22.0, 0.7, _fn_inv),
        MasterCell("BUF_X1", ("A",), ("Y",), 4, 1.3, 5.5, 16.0, 18.0, 0.8, _fn_buf),
        MasterCell("BUF_X4", ("A",), ("Y",), 7, 3.5, 1.6, 14.0, 55.0, 2.2, _fn_buf),
        MasterCell("NAND2_X1", ("A", "B"), ("Y",), 4, 1.4, 6.5, 10.0, 18.0, 0.6, _fn_nand),
        MasterCell("NAND3_X1", ("A", "B", "C"), ("Y",), 5, 1.5, 7.5, 13.0, 25.0, 0.8, _fn_nand),
        MasterCell("NOR2_X1", ("A", "B"), ("Y",), 4, 1.5, 8.0, 11.0, 20.0, 0.6, _fn_nor),
        MasterCell("NOR3_X1", ("A", "B", "C"), ("Y",), 5, 1.6, 9.5, 15.0, 28.0, 0.9, _fn_nor),
        MasterCell("AND2_X1", ("A", "B"), ("Y",), 5, 1.3, 6.8, 18.0, 24.0, 0.9, _fn_and),
        MasterCell("OR2_X1", ("A", "B"), ("Y",), 5, 1.4, 7.2, 19.0, 26.0, 0.9, _fn_or),
        MasterCell("XOR2_X1", ("A", "B"), ("Y",), 7, 2.4, 7.0, 24.0, 40.0, 1.6, _fn_xor),
        MasterCell("XNOR2_X1", ("A", "B"), ("Y",), 7, 2.4, 7.0, 24.0, 40.0, 1.6, _fn_xnor),
        MasterCell("AOI21_X1", ("A", "B", "C"), ("Y",), 5, 1.5, 7.8, 14.0, 26.0, 0.8, _fn_aoi21),
        MasterCell("OAI21_X1", ("A", "B", "C"), ("Y",), 5, 1.5, 7.8, 14.0, 26.0, 0.8, _fn_oai21),
        MasterCell("MUX2_X1", ("A", "B", "S"), ("Y",), 8, 1.8, 7.0, 26.0, 45.0, 1.8, _fn_mux2),
        MasterCell("HA_X1", ("A", "B"), ("S", "CO"), 9, 2.2, 7.0, 28.0, 55.0, 2.2, _fn_ha),
        MasterCell("FA_X1", ("A", "B", "CI"), ("S", "CO"), 13, 2.6, 7.2, 40.0, 90.0, 3.6, _fn_fa),
        MasterCell(
            "DFF_X1", ("D",), ("Q",), 15, 1.8, 6.5, 55.0, 110.0, 4.5, _fn_dff, is_sequential=True
        ),
    ]
    for width in (1, 2, 4, 8, 16, 32):
        cells.append(
            MasterCell(
                f"FILL_X{width}",
                (),
                (),
                width,
                0.0,
                0.0,
                0.0,
                0.0,
                0.0,
                _fn_filler,
                is_filler=True,
            )
        )
    return CellLibrary(cells)
