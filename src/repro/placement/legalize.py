"""Legalization: snap target positions to legal, non-overlapping row sites.

Two legalizers are provided:

* :func:`pack_into_region` — region-constrained row packing.  Cells are
  binned to the region's rows by their target y, ordered by target x, and
  spread evenly across each row.  Used by the top-level placer to realise
  the slicing-partition placement (one region per arithmetic unit), which
  yields the uniform cell density a commercial placer targets.
* :func:`tetris_legalize` — the classic Tetris/abacus-style greedy
  legalizer that processes cells in order of target x and appends each one
  to the row minimising its displacement.  Used for incremental legalisation
  after local moves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import CellInstance
from .floorplan import Rect
from .placement import Placement


def _region_rows(placement: Placement, region: Rect) -> List[int]:
    """Indices of rows whose vertical span lies (mostly) inside ``region``."""
    row_height = placement.floorplan.row_height
    rows = []
    for row in placement.rows:
        mid = row.y + row_height / 2.0
        if region.y0 <= mid < region.y1:
            rows.append(row.index)
    return rows


def pack_into_region(
    placement: Placement,
    cells: Sequence[CellInstance],
    region: Rect,
    targets: Optional[Dict[str, Tuple[float, float]]] = None,
) -> None:
    """Legally place ``cells`` inside ``region`` with uniform density.

    Cells are distributed over the region's rows proportionally to row
    capacity, honouring their target positions when provided: cells with a
    lower target y go to lower rows, and within a row cells are ordered by
    target x and spread evenly between the region's left and right edges.

    Args:
        placement: The placement database (rows are modified in place).
        cells: Cells to place; any existing row assignment is discarded.
        region: Region rectangle; must intersect at least one row.
        targets: Optional mapping cell name -> target (x, y) centre.  Cells
            without a target keep their current position as the target, or
            the region centre if unplaced.

    Raises:
        ValueError: If the region covers no rows or the cells do not fit in
            the region's total row capacity.
    """
    row_indices = _region_rows(placement, region)
    if not row_indices:
        raise ValueError("region does not cover any placement row")

    x0 = max(region.x0, 0.0)
    x1 = min(region.x1, placement.floorplan.core_width)
    span = x1 - x0
    total_capacity = span * len(row_indices)
    total_width = sum(c.width for c in cells)
    if total_width > total_capacity + 1e-6:
        raise ValueError(
            f"cells (width {total_width:.1f}um) do not fit region capacity "
            f"({total_capacity:.1f}um)"
        )

    def target_of(cell: CellInstance) -> Tuple[float, float]:
        if targets is not None and cell.name in targets:
            return targets[cell.name]
        if cell.is_placed:
            return cell.center
        return region.center

    # Detach from any previous rows.
    for cell in cells:
        placement.remove(cell)

    # Order by target y then x, and split into per-row groups of roughly
    # equal total width so density is uniform across the region.
    ordered = sorted(cells, key=lambda c: (target_of(c)[1], target_of(c)[0]))
    num_rows = len(row_indices)
    per_row_width = total_width / num_rows if num_rows else 0.0

    groups: List[List[CellInstance]] = [[] for _ in range(num_rows)]
    acc = 0.0
    row_cursor = 0
    for cell in ordered:
        if acc > per_row_width * (row_cursor + 1) - cell.width / 2.0 and row_cursor < num_rows - 1:
            row_cursor += 1
        groups[row_cursor].append(cell)
        acc += cell.width

    for group, row_index in zip(groups, row_indices):
        row = placement.rows[row_index]
        group.sort(key=lambda c: target_of(c)[0])
        cursor = x0
        # Temporarily append; spacing handled below.
        for cell in group:
            row.add(cell, cursor)
            cursor += cell.width
        _spread_span(placement, row_index, group, x0, x1)


def _spread_span(
    placement: Placement, row_index: int, group: Sequence[CellInstance], x0: float, x1: float
) -> None:
    """Evenly distribute ``group`` (already in the row) over ``[x0, x1]``."""
    row = placement.rows[row_index]
    site = placement.floorplan.site_width
    total_width = sum(c.width for c in group)
    slack = (x1 - x0) - total_width
    if slack < 0 or not group:
        return
    gap = slack / (len(group) + 1)
    cursor = x0 + gap
    for cell in sorted(group, key=lambda c: c.x):
        x = placement.floorplan.snap_x(cursor)
        x = min(max(x, x0), x1 - cell.width)
        cell.place(x, row.y, row.index)
        cursor = max(cursor + cell.width + gap, x + cell.width)
    row.sort()
    _resolve_row_overlaps(row, site)


def _resolve_row_overlaps(row, site_width: float) -> None:
    """Shift cells right (then clamp left) to remove any residual overlap."""
    row.sort()
    cursor = row.x_start
    for cell in row.cells:
        x = max(cell.x, cursor)
        cell.place(x, row.y, row.index)
        cursor = x + cell.width
    # If the last cell spilled out of the row, push the chain back left.
    overflow = cursor - row.x_end
    if overflow > 1e-9:
        cursor = row.x_end
        for cell in reversed(row.cells):
            x = min(cell.x, cursor - cell.width)
            cell.place(x, row.y, row.index)
            cursor = x


def tetris_legalize(
    placement: Placement,
    cells: Sequence[CellInstance],
    targets: Optional[Dict[str, Tuple[float, float]]] = None,
    region: Optional[Rect] = None,
) -> None:
    """Greedy Tetris-style legalization of ``cells``.

    Cells are processed in increasing target x; each cell is appended to the
    row (restricted to ``region`` when given) that minimises the resulting
    displacement from its target position, at the row's current fill cursor.

    Args:
        placement: Placement database (modified in place).
        cells: Cells to legalise.
        targets: Optional cell name -> target centre mapping; defaults to
            each cell's current position.
        region: Optional region restricting the candidate rows and x span.
    """
    floorplan = placement.floorplan
    row_indices = (
        _region_rows(placement, region) if region is not None else list(range(len(placement.rows)))
    )
    if not row_indices:
        raise ValueError("no rows available for legalization")
    x_min = max(region.x0, 0.0) if region is not None else 0.0
    x_max = min(region.x1, floorplan.core_width) if region is not None else floorplan.core_width

    def target_of(cell: CellInstance) -> Tuple[float, float]:
        if targets is not None and cell.name in targets:
            return targets[cell.name]
        if cell.is_placed:
            return cell.center
        return floorplan.core_rect.center

    for cell in cells:
        placement.remove(cell)

    cursors = {idx: max(x_min, placement.rows[idx].x_start) for idx in row_indices}
    for idx in row_indices:
        row = placement.rows[idx]
        for existing in row.cells:
            cursors[idx] = max(cursors[idx], existing.x + existing.width)

    for cell in sorted(cells, key=lambda c: target_of(c)[0]):
        tx, ty = target_of(cell)
        best_row = None
        best_cost = float("inf")
        for idx in row_indices:
            cursor = cursors[idx]
            if cursor + cell.width > x_max + 1e-9:
                continue
            row_y = placement.rows[idx].y
            cost = abs(cursor - tx) + abs(row_y + floorplan.row_height / 2.0 - ty)
            if cost < best_cost:
                best_cost = cost
                best_row = idx
        if best_row is None:
            raise ValueError(f"no row can accommodate cell {cell.name}")
        row = placement.rows[best_row]
        x = floorplan.snap_x(max(cursors[best_row], x_min))
        x = min(x, x_max - cell.width)
        row.add(cell, x)
        row.sort()
        cursors[best_row] = x + cell.width
