#!/usr/bin/env python3
"""Campaign runner: a (strategy x overhead) grid with solver caching.

Reproduces a scaled-down Figure 6 through the :class:`repro.flow.Campaign`
runner: all grid points share one geometry-keyed solver cache (the hotspot
wrapper rides on the Default outline at every overhead, so the grid
factorises fewer matrices than it has points), points run on a thread pool,
and the records land in ``results/`` as JSON and CSV.

The same flow is available from the shell::

    python -m repro sweep --small --out results

Run with ``--full`` for the paper-sized benchmark.
"""

from __future__ import annotations

import argparse
import logging

from repro.analysis import figure6_report
from repro.bench import (
    build_synthetic_circuit,
    scattered_hotspots_workload,
    small_synthetic_circuit,
)
from repro.flow import Campaign, ExperimentSetup, SolverCache


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full ~12k-cell benchmark (slower)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker threads (default: one per CPU)")
    parser.add_argument("--out", default="results",
                        help="output directory (default: results/)")
    args = parser.parse_args()
    logging.basicConfig(level=logging.INFO, format="%(message)s")

    # 1. Baseline flow, with the cache warmed by the baseline solve.
    netlist = build_synthetic_circuit() if args.full else small_synthetic_circuit()
    workload = scattered_hotspots_workload(netlist)
    cache = SolverCache()
    setup = ExperimentSetup.prepare(netlist, workload, cache=cache)

    # 2. The grid: every strategy at four overheads, one shared cache.
    campaign = Campaign(
        setup,
        strategies=("default", "eri", "hw"),
        overheads=(0.08, 0.161, 0.25, 0.322),
        cache=cache,
        name="figure6-example",
    )
    result = campaign.run(max_workers=args.jobs)

    # 3. Report and persist.
    print()
    print(figure6_report(result.outcomes()))
    stats = cache.stats()
    print(f"\n{len(result.records)} points in {result.metadata['elapsed_s']:.2f}s; "
          f"solver cache answered {stats.hits} of {stats.hits + stats.misses} "
          f"lookups from {stats.misses} factorisations")
    print(f"wrote {result.to_json(f'{args.out}/campaign_sweep.json')}")
    print(f"wrote {result.to_csv(f'{args.out}/campaign_sweep.csv')}")


if __name__ == "__main__":
    main()
