"""The area-management tool (Figure 2 of the paper).

"The initial thermal map, together with the placed netlist info and a
user-specified area overhead, are processed by our area management tool,
which, using one of the two strategies, yields a modified placed netlist
with better thermal properties."

:class:`AreaManager` is that tool: it takes the placed design, the cell-by-
cell power report and the thermal map, detects the hotspots, and applies
the requested strategy — ``default`` (uniform utilization relaxation),
``eri`` (empty row insertion) or ``hw`` (hotspot wrapper, applied on top of
the default solution, as in the paper's Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Sequence

from ..placement import Placement
from ..power import PowerReport
from ..thermal import Package, ThermalMap, simulate_placement
from .default_spread import DefaultSpreadResult, apply_default_spread
from .empty_row import EmptyRowInsertionResult, apply_empty_row_insertion, rows_for_overhead
from .hotspot import Hotspot, detect_hotspots
from .wrapper import HotspotWrapperResult, apply_hotspot_wrapper


#: Default hotspot-detection threshold for empty row insertion: the method
#: acts on "the area around a given hotspot", so a generous fraction of the
#: warm region is included.
ERI_HOTSPOT_THRESHOLD = 0.5

#: Default hotspot-detection threshold for the hotspot wrapper: the method
#: is "particularly useful for small concentrated hotspots", so only the
#: tight core of each hotspot is wrapped.
HW_HOTSPOT_THRESHOLD = 0.75


class Strategy(str, Enum):
    """Whitespace-allocation strategies."""

    DEFAULT = "default"
    EMPTY_ROW_INSERTION = "eri"
    HOTSPOT_WRAPPER = "hw"

    @classmethod
    def parse(cls, value: "Strategy | str") -> "Strategy":
        """Accept either a :class:`Strategy` or its string value."""
        if isinstance(value, Strategy):
            return value
        try:
            return cls(value.lower())
        except ValueError:
            raise ValueError(
                f"unknown strategy {value!r}; expected one of "
                f"{[s.value for s in cls]}"
            ) from None


@dataclass
class AreaManagementConfig:
    """Configuration of the area-management tool.

    Attributes:
        area_overhead: User-specified fractional area overhead.
        strategy: Whitespace-allocation strategy.
        hotspot_threshold: Fraction of the lateral temperature range above
            which a thermal cell belongs to a hotspot.  ``None`` (the
            default) selects a per-strategy value: empty row insertion
            targets the broader warm area around each hotspot
            (:data:`ERI_HOTSPOT_THRESHOLD`), while the hotspot wrapper needs
            tight, concentrated hotspots (:data:`HW_HOTSPOT_THRESHOLD`).
        max_hotspots: Only target the hottest N hotspots (``None`` = all).
        wrapper_ring_um: Whitespace-ring width for the hotspot wrapper.
        wrapper_max_source_units: Units treated as a hotspot's source.
        add_fillers: Fill created whitespace with dummy cells.
    """

    area_overhead: float = 0.15
    strategy: Strategy = Strategy.EMPTY_ROW_INSERTION
    hotspot_threshold: Optional[float] = None
    max_hotspots: Optional[int] = None
    wrapper_ring_um: float = 6.0
    wrapper_max_source_units: int = 2
    add_fillers: bool = True

    def __post_init__(self) -> None:
        self.strategy = Strategy.parse(self.strategy)
        if self.area_overhead < 0.0:
            raise ValueError("area_overhead must be non-negative")
        if self.hotspot_threshold is not None and not 0.0 < self.hotspot_threshold <= 1.0:
            raise ValueError("hotspot_threshold must be in (0, 1]")

    @property
    def effective_hotspot_threshold(self) -> float:
        """The detection threshold, resolved per strategy when unset."""
        if self.hotspot_threshold is not None:
            return self.hotspot_threshold
        if self.strategy is Strategy.HOTSPOT_WRAPPER:
            return HW_HOTSPOT_THRESHOLD
        return ERI_HOTSPOT_THRESHOLD


@dataclass
class AreaManagementResult:
    """The modified placed netlist plus book-keeping.

    Attributes:
        placement: The new placement.
        strategy: Strategy that produced it.
        hotspots: Hotspots detected on the input thermal map.
        requested_overhead: Overhead requested by the user.
        actual_overhead: Core-area overhead actually introduced (0.0 for the
            hotspot wrapper, which redistributes existing whitespace).
        inserted_rows: Rows inserted (ERI only).
        num_fillers: Filler cells inserted.
        details: The strategy-specific result object.
    """

    placement: Placement
    strategy: Strategy
    hotspots: List[Hotspot]
    requested_overhead: float
    actual_overhead: float
    inserted_rows: int = 0
    num_fillers: int = 0
    details: object = None


class AreaManager:
    """Post-placement whitespace manager.

    Args:
        config: Tool configuration.
    """

    def __init__(self, config: Optional[AreaManagementConfig] = None) -> None:
        self.config = config if config is not None else AreaManagementConfig()

    # ------------------------------------------------------------------

    def detect(
        self,
        placement: Placement,
        thermal_map: ThermalMap,
        power: Optional[PowerReport] = None,
    ) -> List[Hotspot]:
        """Detect hotspots with the configured (per-strategy) threshold."""
        return detect_hotspots(
            thermal_map,
            placement,
            power=power,
            threshold_fraction=self.config.effective_hotspot_threshold,
            max_hotspots=self.config.max_hotspots,
        )

    def optimize(
        self,
        placement: Placement,
        power: PowerReport,
        thermal_map: ThermalMap,
        hotspots: Optional[Sequence[Hotspot]] = None,
    ) -> AreaManagementResult:
        """Produce the modified placed netlist for the configured strategy.

        Args:
            placement: The baseline placed design.
            power: Cell-by-cell power report.
            thermal_map: Thermal map of the baseline placement.
            hotspots: Pre-detected hotspots; detected here when omitted.

        Returns:
            An :class:`AreaManagementResult`.
        """
        config = self.config
        spots = list(hotspots) if hotspots is not None else self.detect(
            placement, thermal_map, power
        )

        if config.strategy is Strategy.DEFAULT:
            default_result = apply_default_spread(
                placement, config.area_overhead, add_fillers=config.add_fillers
            )
            return AreaManagementResult(
                placement=default_result.placement,
                strategy=config.strategy,
                hotspots=spots,
                requested_overhead=config.area_overhead,
                actual_overhead=default_result.actual_overhead,
                num_fillers=default_result.num_fillers,
                details=default_result,
            )

        if config.strategy is Strategy.EMPTY_ROW_INSERTION:
            eri_result = apply_empty_row_insertion(
                placement,
                spots,
                area_overhead=config.area_overhead,
                add_fillers=config.add_fillers,
            )
            return AreaManagementResult(
                placement=eri_result.placement,
                strategy=config.strategy,
                hotspots=spots,
                requested_overhead=config.area_overhead,
                actual_overhead=eri_result.actual_overhead,
                inserted_rows=eri_result.inserted_rows,
                num_fillers=eri_result.num_fillers,
                details=eri_result,
            )

        # Hotspot wrapper: start from the Default solution at the requested
        # overhead (as in the paper's Figure 6), re-detect the hotspots on
        # that placement's own thermal map, then wrap them.
        default_result = apply_default_spread(
            placement, config.area_overhead, add_fillers=False
        )
        hw_result = apply_hotspot_wrapper(
            default_result.placement,
            self._project_hotspots(spots, placement, default_result.placement),
            ring_width_um=config.wrapper_ring_um,
            max_source_units=config.wrapper_max_source_units,
            max_hotspots=config.max_hotspots,
            add_fillers=config.add_fillers,
        )
        return AreaManagementResult(
            placement=hw_result.placement,
            strategy=config.strategy,
            hotspots=spots,
            requested_overhead=config.area_overhead,
            actual_overhead=default_result.actual_overhead,
            num_fillers=hw_result.num_fillers,
            details=hw_result,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _project_hotspots(
        hotspots: Sequence[Hotspot], source: Placement, target: Placement
    ) -> List[Hotspot]:
        """Scale hotspot rectangles from one core outline to another.

        When the hotspot wrapper starts from a relaxed-utilization (larger)
        placement, the hotspots detected on the baseline map are projected
        onto the new core by scaling their rectangles with the core-size
        ratio; the dominant units (which is what the wrapper actually acts
        on) are preserved.
        """
        sx = target.floorplan.core_width / source.floorplan.core_width
        sy = target.floorplan.core_height / source.floorplan.core_height
        projected: List[Hotspot] = []
        for hotspot in hotspots:
            rect = hotspot.rect
            from ..placement.floorplan import Rect as _Rect

            projected.append(
                Hotspot(
                    index=hotspot.index,
                    bins=list(hotspot.bins),
                    rect=_Rect(rect.x0 * sx, rect.y0 * sy, rect.x1 * sx, rect.y1 * sy),
                    peak_celsius=hotspot.peak_celsius,
                    peak_bin=hotspot.peak_bin,
                    dominant_units=list(hotspot.dominant_units),
                    power_w=hotspot.power_w,
                    num_cells=hotspot.num_cells,
                )
            )
        return projected

    def optimize_and_resimulate(
        self,
        placement: Placement,
        power: PowerReport,
        thermal_map: ThermalMap,
        package: Optional[Package] = None,
        nx: int = 40,
        ny: int = 40,
    ) -> tuple:
        """Run :meth:`optimize` and re-run the thermal simulation on the result.

        Returns:
            ``(result, new_thermal_map)``.
        """
        result = self.optimize(placement, power, thermal_map)
        new_map = simulate_placement(result.placement, power, package=package, nx=nx, ny=ny)
        return result, new_map
