"""Staged flow-graph executor over content-addressed artifacts.

:class:`FlowGraph` decomposes the monolithic evaluation pipeline
(netlist -> placement -> power -> thermal -> STA) into six explicit stages::

    synth ──────┬─> legalize ─> thermal ─> sta        (baseline branch)
    power ──────┤
    whitespace ─┴─> legalize ─> thermal ─> sta        (per-strategy branch)

Each stage method computes a deterministic content hash of its inputs
(:mod:`repro.flow.artifacts`), looks the result up in the
:class:`~repro.flow.artifacts.ArtifactStore`, and executes only on a miss —
so a multi-strategy sweep pays for the shared prefix (``synth``, ``power``)
once and re-runs only the ``whitespace -> thermal -> sta`` suffix per
strategy, and a repeated sweep against an on-disk store re-runs nothing at
all.  Stage bodies call exactly the same underlying functions as the
monolithic path (:func:`repro.placement.placer.place_design`,
:class:`~repro.core.area_manager.AreaManager`,
:class:`~repro.thermal.solver.ThermalSolver`, ...), so staged results are
bitwise-identical to monolithic ones — the golden-equivalence suite
(``tests/test_flow_graph_equivalence.py``) asserts this.

Thread safety: stage execution is single-flight per ``(stage, key)`` —
concurrent :class:`~repro.flow.runner.Campaign` workers asking for the same
artifact block on one build — and the per-stage execution/hit counters are
kept under one lock, so tests can assert exact counts.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Callable, Dict, Optional, Tuple

from ..core import AreaManagementConfig, AreaManager, StrategySpec
from ..engine import get_engine
from ..netlist import Netlist
from ..placement import Placement, place_design
from ..power import PowerModel, PowerReport, build_power_map, estimate_activity
from ..power.power_map import PowerMap
from ..thermal import Package, ThermalGrid, ThermalMap, default_package
from ..thermal.solver import grid_for_placement, resolve_thermal_method
from ..timing import DelayModel, StaticTimingAnalyzer
from .artifacts import (
    FLOW_KEY_VERSION,
    ArtifactStore,
    LegalizedArtifact,
    PlacementArtifact,
    PowerArtifact,
    StaArtifact,
    ThermalArtifact,
    WhitespaceArtifact,
    grid_digest,
    hash_parts,
    netlist_digest,
    package_digest,
    placement_digest,
    power_digest,
    power_map_digest,
    thermal_map_digest,
    workload_digest,
)
from .cache import SolverCache

#: Stage names in pipeline order.
STAGES = ("synth", "power", "whitespace", "legalize", "thermal", "sta")


class FlowGraph:
    """Incremental executor of the staged physical-design flow.

    Args:
        store: Content-addressed artifact store shared by all stages; a
            fresh in-memory :class:`ArtifactStore` is created when omitted.
            Pass one with a ``root`` to persist artifacts across processes.
        solver_cache: :class:`SolverCache` the ``thermal`` stage draws
            prepared solvers from (and whose ``method`` selects the
            backend); a fresh unbounded cache is created when omitted.

    Attributes:
        stage_executions: Per-stage count of actual stage-body executions.
        stage_hits: Per-stage count of lookups served from the store.
    """

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        solver_cache: Optional[SolverCache] = None,
    ) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.solver_cache = (
            solver_cache if solver_cache is not None else SolverCache()
        )
        self._lock = threading.Lock()
        self._building: Dict[Tuple[str, str], threading.Lock] = {}
        self.stage_executions: Counter = Counter()
        self.stage_hits: Counter = Counter()

    # ------------------------------------------------------------------
    # Executor core
    # ------------------------------------------------------------------

    def _run(
        self,
        stage: str,
        key: str,
        build: Callable[[], object],
        cacheable: Optional[Callable[[object], bool]] = None,
    ):
        """Return the artifact for ``(stage, key)``, executing on a miss.

        Single-flight: concurrent requests for the same key block on a
        per-key lock so the stage body runs exactly once; requests for
        different keys build in parallel.  When ``cacheable`` is given and
        rejects the freshly built artifact, it is returned but *not*
        published to the store (the thermal stage uses this to keep
        degraded fallback solves out of the content-addressed cache).
        """
        artifact = self.store.get(stage, key)
        if artifact is not None:
            with self._lock:
                self.stage_hits[stage] += 1
            return artifact
        with self._lock:
            build_lock = self._building.setdefault((stage, key), threading.Lock())
        try:
            with build_lock:
                artifact = self.store.get(stage, key)
                if artifact is not None:
                    with self._lock:
                        self.stage_hits[stage] += 1
                    return artifact
                artifact = build()
                with self._lock:
                    self.stage_executions[stage] += 1
                if cacheable is None or cacheable(artifact):
                    self.store.put(stage, key, artifact)
                return artifact
        finally:
            with self._lock:
                self._building.pop((stage, key), None)

    def stats(self) -> Dict[str, object]:
        """Per-stage counters plus the store's, for run metadata."""
        with self._lock:
            executions = dict(self.stage_executions)
            hits = dict(self.stage_hits)
        return {
            "stage_executions": executions,
            "stage_hits": hits,
            "artifact_store": self.store.stats().as_dict(),
        }

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def synth(
        self,
        netlist: Netlist,
        utilization: float = 0.85,
        use_quadratic: bool = True,
    ) -> PlacementArtifact:
        """``synth``/global-place: floorplan and place at ``utilization``.

        Keyed on the netlist's structural content plus the placer knobs —
        the whole-design prefix every strategy evaluation shares.
        """
        key = hash_parts(
            FLOW_KEY_VERSION, "synth",
            netlist_digest(netlist), utilization, use_quadratic,
        )

        def build() -> PlacementArtifact:
            placement = place_design(
                netlist, utilization=utilization, use_quadratic=use_quadratic
            )
            return PlacementArtifact(key=key, placement=placement)

        return self._run("synth", key, build)

    def power(
        self,
        netlist: Netlist,
        workload,
        num_cycles: int = 24,
        batch_size: int = 32,
        seed: int = 2010,
    ) -> PowerArtifact:
        """``power``: logic-simulate the workload, estimate per-cell power.

        Keyed on the design, the workload's resolved toggle probabilities,
        the simulation knobs and the active execution engine (compiled and
        reference logic simulation are not bit-identical).
        """
        key = hash_parts(
            FLOW_KEY_VERSION, "power",
            netlist_digest(netlist), workload_digest(workload, netlist),
            num_cycles, batch_size, seed, get_engine(),
        )

        def build() -> PowerArtifact:
            activity = estimate_activity(
                netlist,
                workload.port_toggle_probabilities(netlist),
                num_cycles=num_cycles,
                batch_size=batch_size,
                seed=seed,
            )
            report = PowerModel().estimate(netlist, activity)
            return PowerArtifact(key=key, power=report)

        return self._run("power", key, build)

    def whitespace(
        self,
        placement: Placement,
        power: PowerReport,
        thermal_map: ThermalMap,
        strategy: StrategySpec = "eri",
        area_overhead: float = 0.15,
        hotspot_threshold: Optional[float] = None,
        wrapper_ring_um: float = 6.0,
        config: Optional[AreaManagementConfig] = None,
    ) -> WhitespaceArtifact:
        """``whitespace``: apply one area-management strategy.

        Keyed on the baseline placement, the power report, the thermal map
        the hotspots are detected on, and the *canonical* strategy spec
        plus every knob of the resolved config — so ``"hw:ring_um=8"`` and
        ``"hw:ring_um=8.0"`` share an artifact while any real parameter
        change invalidates it.

        Args:
            config: Pre-built :class:`AreaManagementConfig`; overrides the
                individual strategy arguments (used by
                :meth:`AreaManager.optimize_and_resimulate`).
        """
        if config is None:
            config = AreaManagementConfig(
                area_overhead=area_overhead,
                strategy=strategy,
                hotspot_threshold=hotspot_threshold,
                wrapper_ring_um=wrapper_ring_um,
            )
        key = hash_parts(
            FLOW_KEY_VERSION, "whitespace",
            placement_digest(placement), power_digest(power),
            thermal_map_digest(thermal_map),
            config.strategy_impl.spec, config.area_overhead,
            config.hotspot_threshold, config.max_hotspots,
            config.wrapper_ring_um, config.wrapper_max_source_units,
            config.add_fillers, get_engine(),
        )

        def build() -> WhitespaceArtifact:
            result = AreaManager(config).optimize(placement, power, thermal_map)
            return WhitespaceArtifact(
                key=key,
                placement=result.placement,
                strategy_spec=config.strategy_impl.spec,
                requested_overhead=config.area_overhead,
                actual_overhead=result.actual_overhead,
                inserted_rows=result.inserted_rows,
                num_fillers=result.num_fillers,
            )

        return self._run("whitespace", key, build)

    def legalize(
        self,
        placement: Placement,
        power: PowerReport,
        nx: int = 40,
        ny: int = 40,
        package: Optional[Package] = None,
    ) -> LegalizedArtifact:
        """``legalize``: bin power onto the grid covering the die outline.

        Keyed on the (transformed) placement's content, the power report,
        the grid resolution, the package and the engine.
        """
        pkg = package if package is not None else default_package()
        key = hash_parts(
            FLOW_KEY_VERSION, "legalize",
            placement_digest(placement), power_digest(power),
            nx, ny, package_digest(pkg), get_engine(),
        )

        def build() -> LegalizedArtifact:
            power_map = build_power_map(placement, power, nx=nx, ny=ny, over_die=True)
            grid = grid_for_placement(placement, package=pkg, nx=nx, ny=ny)
            return LegalizedArtifact(key=key, power_map=power_map, grid=grid)

        return self._run("legalize", key, build)

    def thermal(
        self,
        power_map: PowerMap,
        grid: ThermalGrid,
        warm_start: Optional[ThermalMap] = None,
        method: Optional[str] = None,
    ) -> ThermalArtifact:
        """``thermal``: solve the steady-state network for ``power_map``.

        The solver comes from the graph's :class:`SolverCache`, so die
        outlines revisited across strategies share one factorisation.  The
        key includes the *resolved* backend, and — for multigrid only — the
        warm-start field's digest: LU ignores ``x0`` entirely, while the
        multigrid iterate depends on it at the bit level.

        Args:
            method: Per-call backend override; defaults to the solver
                cache's configured method.
        """
        resolved = resolve_thermal_method(
            self.solver_cache.method if method is None else method, grid
        )
        warm = warm_start if resolved == "multigrid" else None
        key = hash_parts(
            FLOW_KEY_VERSION, "thermal",
            power_map_digest(power_map), grid_digest(grid), resolved,
            thermal_map_digest(warm) if warm is not None else None,
        )

        def build() -> ThermalArtifact:
            solver = self.solver_cache.solver(grid, method=resolved)
            rises = warm_start.grid_rises if warm_start is not None else None
            thermal_map = solver.solve_power_map(power_map, x0=rises)
            return ThermalArtifact(key=key, thermal_map=thermal_map, method=resolved)

        def cacheable(artifact) -> bool:
            # A degraded (LU-fallback) map under a multigrid key would be
            # served verbatim to later healthy runs — keep it out of the
            # content-addressed store.
            return not getattr(artifact.thermal_map, "fallback_used", False)

        return self._run("thermal", key, build, cacheable=cacheable)

    def sta(
        self,
        placement: Placement,
        temperature: float,
        clock_period_ps: float = 1000.0,
    ) -> StaArtifact:
        """``sta``: static timing analysis at the solved temperature.

        Keyed on the placement content (wire delays depend on net lengths,
        so coordinates are part of the input), the delay-model temperature,
        the clock period and the engine.
        """
        key = hash_parts(
            FLOW_KEY_VERSION, "sta",
            placement_digest(placement), temperature, clock_period_ps,
            get_engine(),
        )

        def build() -> StaArtifact:
            delay_model = DelayModel(temperature=temperature)
            timing = StaticTimingAnalyzer(
                placement.netlist,
                delay_model=delay_model,
                clock_period_ps=clock_period_ps,
            ).analyze()
            return StaArtifact(key=key, timing=timing)

        return self._run("sta", key, build)


__all__ = ["STAGES", "FlowGraph"]
