"""Stage benchmarks: the compiled array engine versus the reference paths.

Measures the flow's hot stages on the full (~12k cell) synthetic benchmark
— logic simulation + power estimation, static timing, thermal-grid binning,
the steady-state thermal solve — and the quickstart flow end-to-end, with
the compiled engine against the reference per-object loops.  Results are
written to ``BENCH_pipeline.json`` at the repository root so the perf
trajectory is tracked as data, not anecdotes.

Thresholds (asserted at full size): >=3x on logic-sim + power, >=2.8x on
the end-to-end quickstart flow, >=2x on STA, >=3x on binning, >=2.8x on a
warm-started thermal feedback sequence (multigrid versus LU) — the two
solver-stage floors sit ~10% under the typically measured 3.2x so runner
noise cannot flake the suite; the recorded numbers tell the real story.
Set ``REPRO_BENCH_SMOKE=1`` to run on the scaled-down benchmark (and a
reduced thermal grid) instead (CI smoke): numbers are still recorded and
backends are still checked for agreement, but the speedup floors are not
enforced — tiny designs make wall-clock ratios meaningless on noisy
runners.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import (
    build_synthetic_circuit,
    scattered_hotspots_workload,
    small_synthetic_circuit,
)
from repro.core import AreaManagementConfig, AreaManager
from repro.engine import use_engine
from repro.flow import (
    ArtifactStore,
    ExperimentSetup,
    FlowGraph,
    SolverCache,
    evaluate_strategy,
)
from repro.placement import place_design
from repro.power import (
    LogicSimulator,
    PowerModel,
    SwitchingActivity,
    build_power_map,
    generate_vectors,
)
from repro.thermal import ThermalSolver, grid_for_placement, simulate_placement
from repro.timing import StaticTimingAnalyzer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Speedup floors demanded of the compiled engine (full-size runs only).
MIN_LOGICSIM_POWER_SPEEDUP = 3.0
MIN_END_TO_END_SPEEDUP = 2.8
MIN_STA_SPEEDUP = 2.0
MIN_BINNING_SPEEDUP = 3.0
MIN_THERMAL_SOLVE_SPEEDUP = 2.8
MIN_STAGED_REPLAY_SPEEDUP = 3.0
MIN_RESUME_SPEEDUP = 5.0

#: Thermal grid resolution of the thermal_solve stage: the paper's 40 x 40
#: at full size, reduced for CI smoke so the LU baseline stays cheap.
THERMAL_GRID = 24 if SMOKE else 40

RESULTS: dict = {}


def _best(fn, repeats: int = 3):
    """Best wall-clock of ``repeats`` runs; returns (seconds, last result).

    Garbage from earlier benchmark modules is collected before each run so
    a GC pause triggered by unrelated fixtures never lands inside a timed
    region.
    """
    best = float("inf")
    value = None
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _record(stage: str, reference_s: float, compiled_s: float, **extra) -> float:
    speedup = reference_s / compiled_s
    RESULTS[stage] = {
        "reference_s": round(reference_s, 6),
        "compiled_s": round(compiled_s, 6),
        "speedup": round(speedup, 3),
        **extra,
    }
    print(f"\n[{stage}] reference {reference_s:.3f}s -> compiled "
          f"{compiled_s:.3f}s ({speedup:.2f}x)")
    return speedup


@pytest.fixture(scope="module")
def pipeline_circuit():
    """A dedicated circuit instance (not shared with the other benchmarks,
    so re-placing it here cannot stale their session fixtures)."""
    return small_synthetic_circuit() if SMOKE else build_synthetic_circuit()


@pytest.fixture(scope="module", autouse=True)
def write_bench_json(pipeline_circuit):
    """Persist whatever stages ran to BENCH_pipeline.json on teardown."""
    yield
    payload = {
        "benchmark": "pipeline_stages",
        "smoke": SMOKE,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "circuit": {
            "name": pipeline_circuit.name,
            "cells": pipeline_circuit.num_cells,
            "nets": pipeline_circuit.num_nets,
        },
        "stages": RESULTS,
    }
    path = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {path}")


class TestPipelineStages:
    def test_logicsim_power_stage(self, pipeline_circuit):
        """Logic simulation + power estimation: the flow's hottest stage."""
        netlist = pipeline_circuit
        workload = scattered_hotspots_workload(netlist)
        vectors = generate_vectors(
            netlist, workload.port_toggle_probabilities(netlist),
            num_cycles=24, batch_size=32, seed=2010,
        )

        def stage(engine):
            with use_engine(engine):
                simulator = LogicSimulator(netlist)
                result = simulator.simulate(vectors)
                activity = SwitchingActivity.from_simulation(netlist, result)
                power = PowerModel().estimate(netlist, activity)
            return power.total()

        netlist.compiled()  # one-time lowering, outside the timed region
        compiled_s, compiled_total = _best(lambda: stage("compiled"))
        reference_s, reference_total = _best(lambda: stage("reference"), repeats=1)

        assert compiled_total == pytest.approx(reference_total, rel=1e-12)
        speedup = _record("logicsim_power", reference_s, compiled_s,
                          num_cycles=24, batch_size=32)
        if not SMOKE:
            assert speedup >= MIN_LOGICSIM_POWER_SPEEDUP, (
                f"logic-sim+power only {speedup:.2f}x faster than reference"
            )

    def test_sta_stage(self, pipeline_circuit):
        """Static timing analysis on the placed design."""
        netlist = pipeline_circuit
        place_design(netlist, utilization=0.85)
        analyzer = StaticTimingAnalyzer(netlist)

        compiled_s, compiled_report = _best(
            lambda: analyzer.analyze(engine="compiled")
        )
        reference_s, reference_report = _best(
            lambda: analyzer.analyze(engine="reference")
        )

        assert compiled_report.critical_path_ps == pytest.approx(
            reference_report.critical_path_ps, rel=1e-12
        )
        assert compiled_report.worst_path.endpoint == reference_report.worst_path.endpoint
        speedup = _record("sta", reference_s, compiled_s,
                          num_endpoints=compiled_report.num_endpoints)
        if not SMOKE:
            assert speedup >= MIN_STA_SPEEDUP, (
                f"STA only {speedup:.2f}x faster than reference"
            )

    def test_binning_stage(self, pipeline_circuit):
        """Power-map binning (cells -> thermal grid)."""
        netlist = pipeline_circuit
        placement = place_design(netlist, utilization=0.85)
        activity = SwitchingActivity.uniform(netlist, 0.2)
        power = PowerModel().estimate(netlist, activity)

        compiled_s, compiled_map = _best(
            lambda: build_power_map(placement, power, engine="compiled"), repeats=5
        )
        reference_s, reference_map = _best(
            lambda: build_power_map(placement, power, engine="reference")
        )

        np.testing.assert_allclose(
            compiled_map.power_w, reference_map.power_w, rtol=1e-12, atol=1e-18
        )
        speedup = _record("power_binning", reference_s, compiled_s)
        if not SMOKE:
            assert speedup >= MIN_BINNING_SPEEDUP, (
                f"binning only {speedup:.2f}x faster than reference"
            )

    def test_thermal_solve_stage(self, pipeline_circuit):
        """Steady-state thermal solve: LU versus multigrid, cold and warm.

        Times the shape of the leakage-feedback loop — one solver setup for
        a fresh die geometry followed by several re-solves with slightly
        changed power — which is exactly what every sweep point and
        feedback iteration pays.  The LU path factorises once and solves
        triangularly; the multigrid path builds its hierarchy and
        warm-starts every re-solve from the previous temperature field.
        """
        netlist = pipeline_circuit
        placement = place_design(netlist, utilization=0.85)
        activity = SwitchingActivity.uniform(netlist, 0.2)
        power = PowerModel().estimate(netlist, activity)
        grid = grid_for_placement(placement, nx=THERMAL_GRID, ny=THERMAL_GRID)
        base_map = build_power_map(
            placement, power, nx=THERMAL_GRID, ny=THERMAL_GRID
        ).power_w
        # Leakage-feedback-sized perturbations of the power map.
        rng = np.random.default_rng(2010)
        re_solves = [
            base_map * (1.0 + 0.002 * rng.random(base_map.shape))
            for _ in range(3)
        ]

        def lu_sequence():
            solver = ThermalSolver(grid, method="lu")
            maps = [solver.solve(base_map)]
            maps.extend(solver.solve(power_map) for power_map in re_solves)
            return maps

        def mg_sequence():
            solver = ThermalSolver(grid, method="multigrid")
            maps = [solver.solve(base_map)]
            for power_map in re_solves:
                maps.append(solver.solve(power_map, x0=maps[-1].grid_rises))
            return maps

        # Interleave the timing rounds so machine-load drift during the
        # benchmark biases neither backend.
        lu_s = mg_s = float("inf")
        lu_maps = mg_maps = None
        for _ in range(4):
            gc.collect()
            start = time.perf_counter()
            lu_maps = lu_sequence()
            lu_s = min(lu_s, time.perf_counter() - start)
            gc.collect()
            start = time.perf_counter()
            mg_maps = mg_sequence()
            mg_s = min(mg_s, time.perf_counter() - start)

        # Backend agreement on every map of the sequence.
        for lu_map, mg_map in zip(lu_maps, mg_maps):
            scale = np.abs(lu_map.rise_map()).max()
            worst = np.abs(mg_map.rise_map() - lu_map.rise_map()).max() / scale
            assert worst <= 1e-8, f"multigrid off by {worst:.2e} relative"

        # Per-solve timings for the record: cold includes solver setup.
        def lu_cold():
            return ThermalSolver(grid, method="lu").solve(base_map)

        def mg_cold():
            return ThermalSolver(grid, method="multigrid").solve(base_map)

        lu_cold_s, _ = _best(lu_cold)
        mg_cold_s, _ = _best(mg_cold)
        warm_solver = ThermalSolver(grid, method="multigrid")
        warm_map = warm_solver.solve(base_map)
        mg_warm_s, _ = _best(
            lambda: warm_solver.solve(re_solves[0], x0=warm_map.grid_rises)
        )

        speedup = _record(
            "thermal_solve", lu_s, mg_s,
            floor=MIN_THERMAL_SOLVE_SPEEDUP,
            grid=f"{THERMAL_GRID}x{THERMAL_GRID}x{grid.nz}",
            num_re_solves=len(re_solves),
            lu_cold_s=round(lu_cold_s, 6),
            mg_cold_s=round(mg_cold_s, 6),
            mg_warm_solve_s=round(mg_warm_s, 6),
        )
        if not SMOKE:
            assert speedup >= MIN_THERMAL_SOLVE_SPEEDUP, (
                f"warm-started multigrid feedback sequence only {speedup:.2f}x "
                f"faster than the LU path"
            )

    def test_staged_sweep(self):
        """3-strategy sweep through the staged flow graph.

        Correctness is asserted at every size (including smoke): the cold
        staged sweep runs the shared prefix — placement and power
        estimation — exactly once for all three strategies, a warm replay
        over the same store executes *zero* stages, and both are bitwise
        identical to the monolithic sweep.  The recorded speedup compares
        the monolithic sweep against the warm staged replay, which is the
        cost of re-running yesterday's sweep against an unchanged design.
        """
        strategies = ("default", "eri", "hw")
        overhead = 0.15

        def fresh_inputs():
            netlist = (
                small_synthetic_circuit() if SMOKE else build_synthetic_circuit()
            )
            return netlist, scattered_hotspots_workload(netlist)

        def sweep(setup, flow=None, cache=None):
            return [
                evaluate_strategy(
                    setup, strategy, overhead, analyze_timing=True,
                    cache=cache, flow=flow,
                )
                for strategy in strategies
            ]

        netlist, workload = fresh_inputs()
        cache = SolverCache()
        gc.collect()
        start = time.perf_counter()
        mono_setup = ExperimentSetup.prepare(netlist, workload, cache=cache)
        mono = sweep(mono_setup, cache=cache)
        mono_s = time.perf_counter() - start

        flow = FlowGraph(store=ArtifactStore())
        netlist, workload = fresh_inputs()
        gc.collect()
        start = time.perf_counter()
        staged_setup = ExperimentSetup.prepare(netlist, workload, flow=flow)
        cold = sweep(staged_setup, flow=flow)
        cold_s = time.perf_counter() - start

        executions = dict(flow.stage_executions)
        assert executions["synth"] == 1, (
            f"3-strategy sweep ran synth {executions['synth']}x, expected once"
        )
        assert executions["power"] == 1, (
            f"3-strategy sweep ran power {executions['power']}x, expected once"
        )
        assert cold == mono, "staged sweep diverged from monolithic sweep"

        # Warm replay: a content-equal circuit through the warm store.
        netlist, workload = fresh_inputs()
        gc.collect()
        start = time.perf_counter()
        warm_setup = ExperimentSetup.prepare(netlist, workload, flow=flow)
        warm = sweep(warm_setup, flow=flow)
        warm_s = time.perf_counter() - start

        assert warm == mono, "warm staged replay diverged from monolithic sweep"
        assert dict(flow.stage_executions) == executions, (
            "warm replay re-executed stages"
        )

        speedup = _record(
            "staged_sweep", mono_s, warm_s,
            floor=MIN_STAGED_REPLAY_SPEEDUP,
            strategies=list(strategies),
            cold_staged_s=round(cold_s, 6),
            stage_executions=executions,
        )
        if not SMOKE:
            assert speedup >= MIN_STAGED_REPLAY_SPEEDUP, (
                f"warm staged replay only {speedup:.2f}x faster than the "
                f"monolithic sweep"
            )

    def test_campaign_resume(self, tmp_path):
        """Warm campaign replay against a persistent result store.

        A cold campaign evaluates every grid point and publishes each
        record to an on-disk :class:`ResultStore`; the warm rerun — a
        fresh store instance over the same root, as after a restart —
        answers the whole grid from disk and evaluates nothing.  That
        replay is the cost of resuming an interrupted (or repeated) sweep,
        and it must dominate recomputation.  Correctness is asserted at
        every size: zero points evaluated on the warm run and records
        identical to the cold run's.
        """
        from repro.flow import Campaign, ResultStore

        strategies = ("default", "eri", "hw")
        overheads = (0.05, 0.1, 0.15, 0.2)
        netlist = (
            small_synthetic_circuit() if SMOKE else build_synthetic_circuit()
        )
        workload = scattered_hotspots_workload(netlist)
        setup = ExperimentSetup.prepare(netlist, workload)
        root = tmp_path / "results"

        def run(tag):
            campaign = Campaign(
                setup, strategies, overheads,
                result_store=ResultStore(root=root), name=tag,
            )
            return campaign.run()

        gc.collect()
        start = time.perf_counter()
        cold = run("bench-cold")
        cold_s = time.perf_counter() - start
        assert cold.metadata["num_evaluated"] == len(cold.records)

        warm_s, warm = _best(lambda: run("bench-warm"))
        assert warm.metadata["num_evaluated"] == 0
        assert warm.metadata["store_hits"] == len(cold.records)
        assert [record.outcome for record in warm.records] == [
            record.outcome for record in cold.records
        ]

        speedup = _record(
            "campaign_resume", cold_s, warm_s,
            floor=MIN_RESUME_SPEEDUP,
            num_points=len(cold.records),
            store_root_entries=warm.metadata["result_store"]["disk_hits"],
        )
        if not SMOKE:
            assert speedup >= MIN_RESUME_SPEEDUP, (
                f"warm campaign replay only {speedup:.2f}x faster than the "
                f"cold run"
            )

    def test_quickstart_end_to_end(self):
        """The full quickstart flow: place, simulate, solve, ERI, re-solve.

        Each engine runs the complete flow on its own fresh circuit so
        neither inherits compiled state or prepared solvers from the other.
        The reference side is pinned to the LU backend (the original
        system); the compiled side uses the default auto-selected solver,
        which picks multigrid at the quickstart grid.
        """
        def quickstart(engine, solver_method):
            netlist = (
                small_synthetic_circuit() if SMOKE else build_synthetic_circuit()
            )
            cache = SolverCache(method=solver_method)
            with use_engine(engine):
                start = time.perf_counter()
                workload = scattered_hotspots_workload(netlist)
                setup = ExperimentSetup.prepare(
                    netlist, workload, base_utilization=0.85, cache=cache
                )
                manager = AreaManager(
                    AreaManagementConfig(strategy="eri", area_overhead=0.15)
                )
                result = manager.optimize(
                    setup.placement, setup.power, setup.thermal_map
                )
                new_map = simulate_placement(
                    result.placement, setup.power, package=setup.package,
                    cache=cache, warm_start=setup.thermal_map,
                )
                elapsed = time.perf_counter() - start
            return elapsed, new_map.reduction_versus(setup.thermal_map)

        times = {"compiled": float("inf"), "reference": float("inf")}
        reductions = {}
        for _ in range(3):
            for engine, solver_method in (
                ("compiled", "auto"), ("reference", "lu"),
            ):
                gc.collect()
                elapsed, reduction = quickstart(engine, solver_method)
                times[engine] = min(times[engine], elapsed)
                reductions[engine] = reduction

        # The engines agree to rounding; the solver backends (multigrid on
        # the compiled side, LU on the reference side) to their iteration
        # tolerance.
        assert reductions["compiled"] == pytest.approx(
            reductions["reference"], rel=1e-6
        )
        speedup = _record(
            "quickstart_end_to_end", times["reference"], times["compiled"],
            floor=MIN_END_TO_END_SPEEDUP,
            temperature_reduction=round(reductions["compiled"], 6),
        )
        if not SMOKE:
            assert speedup >= MIN_END_TO_END_SPEEDUP, (
                f"quickstart flow only {speedup:.2f}x faster than reference"
            )
