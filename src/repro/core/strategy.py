"""The pluggable whitespace-strategy API.

The paper's area-management tool applies "one of the two strategies" to a
placed netlist (Figure 2); the tool itself is strategy-agnostic.  This
module makes that boundary a first-class plugin API:

* :class:`WhitespaceStrategy` — the ABC every technique implements: a
  ``name``, a ``default_hotspot_threshold`` and an
  ``apply(ctx) -> StrategyResult`` method.
* :class:`StrategyContext` / :class:`StrategyResult` — the fixed contract
  between the :class:`~repro.core.area_manager.AreaManager` and a strategy:
  the baseline placement, power report, thermal map, pre-detected hotspots
  and tool configuration in; the transformed placement and its book-keeping
  out.
* a process-wide **registry** — :func:`register_strategy` (usable as a
  decorator), :func:`available_strategies`, :func:`strategy_class` and
  :func:`resolve_strategy`.  Importing :mod:`repro.core` registers the
  built-in strategies; third-party code registers its own without touching
  this package (see ``examples/custom_strategy.py``).
* a parameterized **spec grammar** — ``"hw"``,
  ``"hw:ring_um=8,max_source_units=3"`` or
  ``{"name": "hw", "ring_um": 8}`` — so sweep grids can vary strategy
  parameters without code changes.
"""

from __future__ import annotations

import abc
import difflib
import re
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)

from ..placement import Placement
from ..power import PowerReport
from ..thermal import ThermalMap
from .hotspot import Hotspot, detect_hotspots

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .area_manager import AreaManagementConfig


#: A strategy spec: a name, a parameterized ``"name:key=val,..."`` string, a
#: ``{"name": ..., **params}`` mapping, or an already-resolved instance.
StrategySpec = Union[str, Mapping[str, object], "WhitespaceStrategy"]

_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")


@dataclass
class StrategyContext:
    """Everything a strategy may read when transforming a placement.

    Attributes:
        placement: The baseline placed design (strategies must not mutate
            it; every built-in works on a cloned netlist).
        power: Cell-by-cell power report of the baseline.
        thermal_map: Thermal map of the baseline placement.
        hotspots: Hotspots pre-detected at the strategy's effective
            threshold, hottest first.
        config: The full :class:`~repro.core.area_manager.AreaManagementConfig`
            (area overhead, filler policy, wrapper geometry defaults, ...).
    """

    placement: Placement
    power: PowerReport
    thermal_map: ThermalMap
    hotspots: List[Hotspot]
    config: "AreaManagementConfig"

    @property
    def area_overhead(self) -> float:
        """The user-requested fractional area overhead."""
        return self.config.area_overhead

    @property
    def add_fillers(self) -> bool:
        """Whether created whitespace should be filled with dummy cells."""
        return self.config.add_fillers

    def detect(
        self,
        threshold_fraction: float,
        max_hotspots: Optional[int] = None,
    ) -> List[Hotspot]:
        """Re-detect hotspots on the baseline map at another threshold.

        Used by strategies that need a second view of the thermal field —
        e.g. ``hybrid`` detects the broad warm region at its own threshold
        and the tight concentrated peaks at the wrapper's.
        """
        return detect_hotspots(
            self.thermal_map,
            self.placement,
            power=self.power,
            threshold_fraction=threshold_fraction,
            max_hotspots=(
                max_hotspots if max_hotspots is not None else self.config.max_hotspots
            ),
        )


@dataclass
class StrategyResult:
    """What a strategy hands back to the area manager.

    Attributes:
        placement: The transformed placement (on a cloned netlist).
        actual_overhead: Core-area overhead actually introduced (0.0 for
            techniques that only redistribute existing whitespace).
        inserted_rows: Empty rows inserted, when the technique inserts rows.
        num_fillers: Filler cells inserted into created whitespace.
        details: Strategy-specific result object(s) for deeper inspection.
    """

    placement: Placement
    actual_overhead: float
    inserted_rows: int = 0
    num_fillers: int = 0
    details: object = None


class WhitespaceStrategy(abc.ABC):
    """Base class of every whitespace-allocation technique.

    Subclasses set the class attributes and implement :meth:`apply`:

    * ``name`` — the registry key and spec name (lowercase, ``[a-z0-9_-]``).
    * ``default_hotspot_threshold`` — hotspot-detection threshold used when
      neither the tool configuration nor the spec overrides it.
    * ``param_defaults`` — the tunable parameters and their defaults; spec
      parameters are validated against this mapping and coerced to the
      default's type.  Every strategy additionally accepts a
      ``hotspot_threshold`` parameter.

    Instances are cheap, immutable value objects: construction validates
    the parameter overrides, ``apply`` does the work.
    """

    name: ClassVar[str]
    default_hotspot_threshold: ClassVar[float] = 0.5
    param_defaults: ClassVar[Mapping[str, object]] = {}

    def __init__(self, **params: object) -> None:
        self.overrides: Dict[str, object] = self._validate_params(params)

    # -- parameters ----------------------------------------------------------

    @classmethod
    def _validate_params(cls, params: Mapping[str, object]) -> Dict[str, object]:
        """Check parameter names against :attr:`param_defaults` and coerce types."""
        allowed = dict(cls.param_defaults)
        validated: Dict[str, object] = {}
        for key, value in params.items():
            if key == "hotspot_threshold":
                value = float(value)  # type: ignore[arg-type]
                if not 0.0 < value <= 1.0:
                    raise ValueError(
                        f"strategy {cls.name!r}: hotspot_threshold must be in (0, 1], "
                        f"got {value}"
                    )
                validated[key] = value
                continue
            if key not in allowed:
                known = ", ".join(sorted(allowed) + ["hotspot_threshold"]) or "none"
                raise ValueError(
                    f"strategy {cls.name!r} has no parameter {key!r} "
                    f"(accepted: {known})"
                )
            default = allowed[key]
            try:
                if isinstance(default, bool):
                    value = _as_bool(value)
                elif isinstance(default, int):
                    value = _as_int(value)
                elif isinstance(default, float):
                    value = float(value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                raise ValueError(
                    f"strategy {cls.name!r}: parameter {key!r} expects "
                    f"{type(default).__name__}, got {value!r}"
                ) from None
            validated[key] = value
        return validated

    @property
    def params(self) -> Dict[str, object]:
        """The effective parameters: defaults merged with the overrides."""
        merged: Dict[str, object] = dict(self.param_defaults)
        merged.update(self.overrides)
        return merged

    def param(self, key: str, fallback: object = None) -> object:
        """One effective parameter: override, else default, else ``fallback``."""
        if key in self.overrides:
            return self.overrides[key]
        return self.param_defaults.get(key, fallback)

    # -- identity ------------------------------------------------------------

    @property
    def spec(self) -> str:
        """The canonical spec string (round-trips through the grammar)."""
        return format_strategy_spec(self.name, self.overrides)

    def effective_hotspot_threshold(self) -> float:
        """Detection threshold: the ``hotspot_threshold`` param or the class default."""
        override = self.overrides.get("hotspot_threshold")
        return float(override) if override is not None else self.default_hotspot_threshold

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.spec!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, WhitespaceStrategy) and self.spec == other.spec

    def __hash__(self) -> int:
        return hash(self.spec)

    # -- the actual work -----------------------------------------------------

    @abc.abstractmethod
    def apply(self, ctx: StrategyContext) -> StrategyResult:
        """Transform the baseline placement; must not mutate the context."""


# -- registry ----------------------------------------------------------------

_REGISTRY: Dict[str, Type[WhitespaceStrategy]] = {}


def register_strategy(
    cls: Optional[Type[WhitespaceStrategy]] = None, *, replace: bool = False
) -> Union[Type[WhitespaceStrategy], Callable[[Type[WhitespaceStrategy]], Type[WhitespaceStrategy]]]:
    """Register a :class:`WhitespaceStrategy` subclass under its ``name``.

    Usable bare (``@register_strategy``) or with options
    (``@register_strategy(replace=True)``).  Registration is process-wide;
    duplicate names are rejected unless ``replace=True``.

    Returns:
        The class unchanged, so it stacks as a decorator.

    Raises:
        TypeError: If ``cls`` is not a concrete ``WhitespaceStrategy``.
        ValueError: If the name is malformed or already registered.
    """

    def _register(cls: Type[WhitespaceStrategy]) -> Type[WhitespaceStrategy]:
        if not (isinstance(cls, type) and issubclass(cls, WhitespaceStrategy)):
            raise TypeError(
                f"register_strategy expects a WhitespaceStrategy subclass, got {cls!r}"
            )
        name = getattr(cls, "name", None)
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ValueError(
                f"strategy class {cls.__name__} needs a lowercase 'name' matching "
                f"{_NAME_RE.pattern!r}, got {name!r}"
            )
        if getattr(cls.apply, "__isabstractmethod__", False):
            raise TypeError(f"strategy {name!r} does not implement apply()")
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"strategy name {name!r} is already registered "
                f"(by {_REGISTRY[name].__name__}); pass replace=True to override"
            )
        _REGISTRY[name] = cls
        return cls

    return _register(cls) if cls is not None else _register


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (primarily for tests)."""
    _REGISTRY.pop(name, None)


def available_strategies() -> Tuple[str, ...]:
    """Registered strategy names, in registration order."""
    return tuple(_REGISTRY)


def strategy_class(name: str) -> Type[WhitespaceStrategy]:
    """The registered class for ``name``.

    Raises:
        ValueError: If no strategy of that name is registered; the message
            lists the registry and suggests close matches.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(_unknown_strategy_message(name)) from None


def _unknown_strategy_message(name: str) -> str:
    known = available_strategies()
    message = f"unknown strategy {name!r}"
    close = difflib.get_close_matches(name, known, n=1, cutoff=0.6)
    if close:
        message += f"; did you mean {close[0]!r}?"
    message += f" (registered: {', '.join(known) or 'none'})"
    return message


# -- spec grammar ------------------------------------------------------------


def _as_bool(value: object) -> bool:
    if isinstance(value, bool):
        return value
    # _parse_scalar turns the spec strings "1"/"0" into ints before a bool
    # parameter sees them, so 0/1 must round-trip here too.
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        lowered = value.lower()
        if lowered in ("true", "yes", "on", "1"):
            return True
        if lowered in ("false", "no", "off", "0"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


def _as_int(value: object) -> int:
    """Exact int coercion: rejects fractional floats instead of truncating."""
    if isinstance(value, float) and value != int(value):
        raise ValueError(f"not an integer: {value!r}")
    return int(value)  # type: ignore[arg-type]


def _parse_scalar(text: str) -> object:
    """Best-effort scalar parsing for spec parameter values."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def parse_strategy_spec(spec: StrategySpec) -> Tuple[str, Dict[str, object]]:
    """Split a spec into ``(name, params)`` without touching the registry.

    Accepted forms::

        "hw"                                  # bare name
        "hw:ring_um=8,max_source_units=3"     # parameterized string
        {"name": "hw", "ring_um": 8}          # flat mapping
        {"name": "hw", "params": {...}}       # nested mapping
        resolved_instance                     # passed through

    Raises:
        TypeError: If ``spec`` is neither str, mapping nor strategy.
        ValueError: If the string or mapping is malformed.
    """
    if isinstance(spec, WhitespaceStrategy):
        return spec.name, dict(spec.overrides)
    if isinstance(spec, Mapping):
        payload = dict(spec)
        name = payload.pop("name", None)
        if not isinstance(name, str):
            raise ValueError(f"strategy spec mapping needs a 'name' key: {spec!r}")
        nested = payload.pop("params", None)
        if nested is not None:
            if not isinstance(nested, Mapping):
                raise ValueError(f"'params' of spec {name!r} must be a mapping")
            payload.update(nested)
        return name.strip().lower(), payload
    if not isinstance(spec, str):
        raise TypeError(
            f"strategy spec must be a str, mapping or WhitespaceStrategy, "
            f"got {type(spec).__name__}"
        )
    name, _, param_text = spec.partition(":")
    name = name.strip().lower()
    if not name:
        raise ValueError(f"empty strategy name in spec {spec!r}")
    params: Dict[str, object] = {}
    if param_text.strip():
        for item in param_text.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise ValueError(
                    f"malformed parameter {item!r} in spec {spec!r}; "
                    f"expected 'key=value'"
                )
            params[key] = _parse_scalar(value.strip())
    return name, params


def format_strategy_spec(name: str, params: Mapping[str, object]) -> str:
    """The canonical string form of ``(name, params)``.

    Parameters are sorted by key, so equal specs format identically and
    :func:`parse_strategy_spec` round-trips the result.
    """
    if not params:
        return name
    rendered = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"{name}:{rendered}"


def split_spec_list(text: str) -> List[str]:
    """Split a comma-separated list of specs, keeping parameter commas.

    ``"default,hw:ring_um=8,max_source_units=3,eri"`` splits into
    ``["default", "hw:ring_um=8,max_source_units=3", "eri"]``: a segment
    containing ``=`` (and no ``:`` before it) continues the previous spec's
    parameter list rather than starting a new spec.
    """
    specs: List[str] = []
    for segment in text.split(","):
        segment = segment.strip()
        if not segment:
            continue
        eq = segment.find("=")
        colon = segment.find(":")
        continues = eq != -1 and (colon == -1 or eq < colon)
        if continues and specs:
            specs[-1] += f",{segment}"
        else:
            specs.append(segment)
    return specs


def resolve_strategy(spec: StrategySpec) -> WhitespaceStrategy:
    """Resolve any accepted spec form into a strategy instance.

    Args:
        spec: A name, parameterized string, mapping, or instance (returned
            as-is).  :class:`~repro.core.area_manager.Strategy` enum members
            are plain strings and resolve through the string branch.

    Returns:
        A validated, parameter-bound :class:`WhitespaceStrategy`.

    Raises:
        TypeError: On spec objects of the wrong type.
        ValueError: On unknown names (with a "did you mean" hint) or bad
            parameters.
    """
    if isinstance(spec, WhitespaceStrategy):
        return spec
    name, params = parse_strategy_spec(spec)
    return strategy_class(name)(**params)


def describe_strategies() -> List[Dict[str, object]]:
    """One summary row per registered strategy (what ``repro strategies`` prints)."""
    rows: List[Dict[str, object]] = []
    for name in available_strategies():
        cls = _REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append(
            {
                "name": name,
                "class": f"{cls.__module__}.{cls.__name__}",
                "default_hotspot_threshold": cls.default_hotspot_threshold,
                "params": dict(cls.param_defaults),
                "summary": doc[0] if doc else "",
            }
        )
    return rows
