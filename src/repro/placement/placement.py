"""Row-based placement database.

:class:`Placement` is the object the post-placement techniques manipulate:
it couples a netlist with a :class:`~repro.placement.floorplan.Floorplan`
and keeps, for every placement row, the ordered list of cells in that row.
It provides legality checks, wirelength and utilization queries, and the
row-level editing operations (insert, remove, pack, spread) that the empty
row insertion and hotspot wrapper transformations are built from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import CellInstance, Netlist
from .floorplan import Floorplan, Rect


class Row:
    """A single placement row: ordered, non-overlapping cells.

    Attributes:
        index: Row index (0 = bottom).
        y: Bottom y coordinate in micrometres.
        x_start: Left edge of the usable row span.
        x_end: Right edge of the usable row span.
    """

    def __init__(self, index: int, y: float, x_start: float, x_end: float) -> None:
        self.index = index
        self.y = y
        self.x_start = x_start
        self.x_end = x_end
        self.cells: List[CellInstance] = []

    # -- queries -------------------------------------------------------------

    @property
    def width(self) -> float:
        """Usable row width in micrometres."""
        return self.x_end - self.x_start

    @property
    def occupied_width(self) -> float:
        """Sum of widths of cells currently in the row."""
        return sum(cell.width for cell in self.cells)

    @property
    def free_width(self) -> float:
        """Row width not covered by cells."""
        return self.width - self.occupied_width

    def utilization(self) -> float:
        """Fraction of the row width covered by cells."""
        if self.width <= 0:
            return 0.0
        return self.occupied_width / self.width

    def sort(self) -> None:
        """Sort cells by their x coordinate."""
        self.cells.sort(key=lambda c: c.x)

    def gaps(self) -> List[Tuple[float, float]]:
        """Free intervals ``(x0, x1)`` between cells, left to right."""
        self.sort()
        gaps: List[Tuple[float, float]] = []
        cursor = self.x_start
        for cell in self.cells:
            if cell.x > cursor:
                gaps.append((cursor, cell.x))
            cursor = max(cursor, cell.x + cell.width)
        if cursor < self.x_end:
            gaps.append((cursor, self.x_end))
        return gaps

    def overlaps(self) -> List[Tuple[str, str]]:
        """Pairs of cell names that overlap in this row."""
        self.sort()
        bad: List[Tuple[str, str]] = []
        for left, right in zip(self.cells, self.cells[1:]):
            if left.x + left.width > right.x + 1e-9:
                bad.append((left.name, right.name))
        return bad

    # -- editing -------------------------------------------------------------

    def add(self, cell: CellInstance, x: float) -> None:
        """Place ``cell`` at ``x`` in this row (legality not enforced)."""
        cell.place(x, self.y, self.index)
        self.cells.append(cell)

    def remove(self, cell: CellInstance) -> None:
        """Remove ``cell`` from the row (its coordinates are left untouched)."""
        self.cells.remove(cell)

    def pack(self, origin: Optional[float] = None) -> None:
        """Pack cells left-to-right from ``origin`` removing all gaps."""
        self.sort()
        cursor = self.x_start if origin is None else origin
        for cell in self.cells:
            cell.place(cursor, self.y, self.index)
            cursor += cell.width

    def spread(self, x0: Optional[float] = None, x1: Optional[float] = None) -> None:
        """Distribute cells evenly (equal gaps) over ``[x0, x1]``.

        Defaults to the full row span.  Cell order is preserved.  If the
        cells do not fit, they are packed from ``x0`` instead.
        """
        self.sort()
        lo = self.x_start if x0 is None else x0
        hi = self.x_end if x1 is None else x1
        total_width = sum(c.width for c in self.cells)
        slack = (hi - lo) - total_width
        if not self.cells:
            return
        if slack <= 0:
            cursor = lo
            for cell in self.cells:
                cell.place(cursor, self.y, self.index)
                cursor += cell.width
            return
        gap = slack / (len(self.cells) + 1)
        cursor = lo + gap
        for cell in self.cells:
            cell.place(cursor, self.y, self.index)
            cursor += cell.width + gap

    def insert_at_best_gap(self, cell: CellInstance, target_x: float) -> bool:
        """Insert ``cell`` in the free gap closest to ``target_x``.

        Returns:
            ``True`` on success, ``False`` if no gap is wide enough.
        """
        best: Optional[Tuple[float, float]] = None
        best_cost = float("inf")
        for gap_start, gap_end in self.gaps():
            if gap_end - gap_start < cell.width - 1e-9:
                continue
            x = min(max(target_x, gap_start), gap_end - cell.width)
            cost = abs(x - target_x)
            if cost < best_cost:
                best_cost = cost
                best = (x, gap_start)
        if best is None:
            return False
        self.add(cell, best[0])
        self.sort()
        return True

    def cells_in_span(self, x0: float, x1: float) -> List[CellInstance]:
        """Cells whose centre x lies in ``[x0, x1)``."""
        return [c for c in self.cells if x0 <= c.x + c.width / 2.0 < x1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Row({self.index}, y={self.y:.1f}, cells={len(self.cells)})"


class Placement:
    """A placed design: netlist + floorplan + per-row cell lists.

    Attributes:
        netlist: The placed design.
        floorplan: Core/row geometry.
        regions: Optional mapping of unit name to the region it was placed
            in; populated by the placer and used by the hotspot wrapper.
    """

    def __init__(self, netlist: Netlist, floorplan: Floorplan) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.regions: Dict[str, Rect] = {}
        self.rows: List[Row] = [
            Row(i, floorplan.row_y(i), 0.0, floorplan.core_width)
            for i in range(floorplan.num_rows)
        ]

    # ------------------------------------------------------------------
    # Row/cell management
    # ------------------------------------------------------------------

    def row(self, index: int) -> Row:
        """Return row ``index``."""
        return self.rows[index]

    def assign(self, cell: CellInstance, row_index: int, x: float) -> None:
        """Place ``cell`` in row ``row_index`` at coordinate ``x``."""
        self.rows[row_index].add(cell, x)

    def remove(self, cell: CellInstance) -> None:
        """Detach ``cell`` from whatever row holds it."""
        if cell.row is not None and 0 <= cell.row < len(self.rows):
            row = self.rows[cell.row]
            if cell in row.cells:
                row.remove(cell)

    def rebuild_rows(self) -> None:
        """Rebuild the per-row cell lists from the cells' coordinates.

        This is the supported entry point after assigning ``cell.x`` /
        ``cell.y`` directly (bypassing :meth:`CellInstance.place`), so it
        also advances the placement epoch — cached coordinate arrays must
        see the moves.
        """
        for row in self.rows:
            row.cells.clear()
        for cell in self.netlist.cells.values():
            if not cell.is_placed:
                continue
            index = self.floorplan.row_of_y(cell.y + 1e-9)
            cell.row = index
            cell.y = self.rows[index].y
            self.rows[index].cells.append(cell)
        for row in self.rows:
            row.sort()
        CellInstance.bump_placement_epoch()

    def placed_cells(self, include_fillers: bool = True) -> List[CellInstance]:
        """All placed cells, optionally excluding fillers."""
        return [
            c
            for c in self.netlist.cells.values()
            if c.is_placed and (include_fillers or not c.is_filler)
        ]

    def cells_in_rect(self, rect: Rect, include_fillers: bool = False) -> List[CellInstance]:
        """Cells whose centre lies inside ``rect``."""
        found: List[CellInstance] = []
        for cell in self.placed_cells(include_fillers=include_fillers):
            cx, cy = cell.center
            if rect.contains(cx, cy):
                found.append(cell)
        return found

    def rows_in_span(self, y0: float, y1: float) -> List[Row]:
        """Rows whose vertical span intersects ``[y0, y1)``."""
        return [
            row
            for row in self.rows
            if row.y + self.floorplan.row_height > y0 and row.y < y1
        ]

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def utilization(self) -> float:
        """Core utilization factor (logic cell area / core area)."""
        return self.floorplan.utilization(self.netlist)

    def cell_center_arrays(self) -> Tuple:
        """Per-cell centre coordinate arrays ``(cx, cy, placed_mask)``.

        Aligned with the netlist's compiled cell order and cached against
        the process-wide placement epoch (see
        :meth:`repro.netlist.compiled.CompiledNetlist.cell_center_arrays`),
        so the thermal-grid binning and temperature lookups pay the gather
        only when cells have actually moved.
        """
        return self.netlist.compiled().cell_center_arrays()

    def total_hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets, in micrometres."""
        return float(self.netlist.compiled().net_hpwl_um().sum())

    def core_area(self) -> float:
        """Core area in square micrometres."""
        return self.floorplan.core_area

    def row_utilizations(self) -> List[float]:
        """Utilization of each row, bottom to top."""
        return [row.utilization() for row in self.rows]

    # ------------------------------------------------------------------
    # Legality
    # ------------------------------------------------------------------

    def check_legal(self, tolerance: float = 1e-6) -> List[str]:
        """Check placement legality.

        Verifies that every non-filler cell is placed, lies inside the core,
        sits exactly on its row's y coordinate, and that no two cells in a
        row overlap.

        Returns:
            A list of human-readable violations (empty when legal).
        """
        problems: List[str] = []
        for cell in self.netlist.cells.values():
            if cell.is_filler and not cell.is_placed:
                continue
            if not cell.is_placed:
                problems.append(f"cell {cell.name} is not placed")
                continue
            if cell.x < -tolerance or cell.x + cell.width > self.floorplan.core_width + tolerance:
                problems.append(f"cell {cell.name} exceeds core width")
            if cell.y < -tolerance or cell.y + cell.height > self.floorplan.core_height + tolerance:
                problems.append(f"cell {cell.name} exceeds core height")
            if cell.row is None:
                problems.append(f"cell {cell.name} has no row assignment")
            elif abs(cell.y - self.floorplan.row_y(cell.row)) > tolerance:
                problems.append(f"cell {cell.name} not aligned to row {cell.row}")
        for row in self.rows:
            for left, right in row.overlaps():
                problems.append(f"cells {left} and {right} overlap in row {row.index}")
        return problems

    # ------------------------------------------------------------------
    # Whitespace / relocation helpers used by the core techniques
    # ------------------------------------------------------------------

    def evict_from_rect(
        self, rect: Rect, keep_units: Sequence[str] = (), include_fillers: bool = False
    ) -> List[CellInstance]:
        """Remove from their rows all cells inside ``rect`` not in ``keep_units``.

        The cells' coordinates are cleared of row membership but preserved as
        a relocation hint; the caller is responsible for re-inserting them
        (see :meth:`relocate_outside`).

        Returns:
            The evicted cells.
        """
        keep = set(keep_units)
        evicted: List[CellInstance] = []
        for cell in self.cells_in_rect(rect, include_fillers=include_fillers):
            if cell.unit in keep:
                continue
            self.remove(cell)
            evicted.append(cell)
        return evicted

    def relocate_outside(self, cells: Sequence[CellInstance], rect: Rect) -> List[CellInstance]:
        """Re-insert evicted cells into the nearest legal free space outside ``rect``.

        Cells are inserted into row gaps, preferring rows close to their
        original y and positions close to their original x, while keeping
        their centres outside ``rect``.

        Returns:
            Cells that could not be relocated (no free space found).
        """
        failed: List[CellInstance] = []
        row_height = self.floorplan.row_height

        # ``rect`` is fixed for the whole call and the sub-interval chosen by
        # :meth:`_gap_outside_rect` is always the longest one, so each row's
        # usable intervals can be computed once and reused for every cell,
        # invalidated only when a relocation mutates that row.  A cell fits a
        # gap exactly when the gap's longest usable sub-interval is at least
        # as wide, so the per-cell test collapses to one comparison.
        usable_cache: dict = {}

        def usable_intervals(row_index: int) -> List[Tuple[float, float]]:
            cached = usable_cache.get(row_index)
            if cached is None:
                row = self.rows[row_index]
                row_mid_y = row.y + row_height / 2.0
                cached = []
                for gap_start, gap_end in row.gaps():
                    interval = self._gap_outside_rect(
                        gap_start, gap_end, rect, row_mid_y, 0.0
                    )
                    if interval is not None and interval[1] > interval[0]:
                        cached.append(interval)
                usable_cache[row_index] = cached
            return cached

        for cell in sorted(cells, key=lambda c: -c.width):
            origin_x = cell.x if cell.x is not None else 0.0
            origin_y = cell.y if cell.y is not None else 0.0
            origin_row = self.floorplan.row_of_y(origin_y)
            width = cell.width
            placed = False
            # Search rows by increasing distance from the original row.
            for offset in range(0, len(self.rows)):
                for row_index in {origin_row - offset, origin_row + offset}:
                    if row_index < 0 or row_index >= len(self.rows):
                        continue
                    if placed:
                        break
                    for lo, hi in usable_intervals(row_index):
                        if hi - lo < width:
                            continue
                        row = self.rows[row_index]
                        x = min(max(origin_x, lo), hi - width)
                        row.add(cell, x)
                        row.sort()
                        usable_cache.pop(row_index, None)
                        placed = True
                        break
                if placed:
                    break
            if not placed:
                failed.append(cell)
        return failed

    def force_insert(self, cell: CellInstance, avoid_rect: Optional[Rect] = None) -> bool:
        """Insert ``cell`` even when no single free gap is wide enough.

        Whitespace in a spread-out placement is fragmented into many small
        gaps; this helper picks the closest row with enough *total* free
        width (preferring rows outside ``avoid_rect``), packs that row to
        consolidate its whitespace, and appends the cell at the packed end.
        Used as a last resort by the hotspot wrapper so evicted cells never
        end up overlapping.

        Returns:
            ``True`` if the cell was inserted, ``False`` if no row has
            enough free width.
        """
        origin_row = self.floorplan.row_of_y((cell.y or 0.0) + 1e-9)
        row_height = self.floorplan.row_height

        def row_priority(row: Row) -> Tuple[int, int]:
            mid_y = row.y + row_height / 2.0
            inside_avoid = (
                1
                if avoid_rect is not None
                and avoid_rect.y0 <= mid_y < avoid_rect.y1
                and avoid_rect.area > 0
                else 0
            )
            return (inside_avoid, abs(row.index - origin_row))

        for row in sorted(self.rows, key=row_priority):
            if row.free_width >= cell.width - 1e-9:
                row.pack()
                cursor = row.x_start + row.occupied_width
                row.add(cell, cursor)
                row.sort()
                return True
        return False

    @staticmethod
    def _gap_outside_rect(
        gap_start: float, gap_end: float, rect: Rect, row_mid_y: float, width: float
    ) -> Optional[Tuple[float, float]]:
        """Largest sub-interval of a row gap whose centre stays outside ``rect``.

        Returns ``None`` if no sub-interval of at least ``width`` exists.
        """
        if not (rect.y0 <= row_mid_y < rect.y1):
            # The row does not intersect the rectangle vertically.
            if gap_end - gap_start >= width:
                return (gap_start, gap_end)
            return None
        # Row crosses the rectangle: usable sub-gaps are left and right of it.
        candidates = []
        left = (gap_start, min(gap_end, rect.x0))
        right = (max(gap_start, rect.x1), gap_end)
        for lo, hi in (left, right):
            if hi - lo >= width:
                candidates.append((lo, hi))
        if not candidates:
            return None
        return max(candidates, key=lambda interval: interval[1] - interval[0])

    def copy(self) -> "Placement":
        """Deep-copy the placement (cloned netlist, same floorplan geometry).

        Post-placement transformations work on the copy so the baseline
        placement stays available for before/after comparisons.
        """
        cloned_netlist = self.netlist.copy()
        duplicate = Placement(cloned_netlist, self.floorplan)
        duplicate.regions = dict(self.regions)
        duplicate.rebuild_rows()
        return duplicate

    def __reduce__(self):
        """Pickle via the netlist's flat state plus geometry.

        Rows are derived data (rebuilt from cell coordinates exactly as
        :meth:`copy` does), so only the netlist, the floorplan and the
        region map are serialized.
        """
        return (
            _placement_from_state,
            (self.netlist, self.floorplan, dict(self.regions)),
        )

    def statistics(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "core_width_um": self.floorplan.core_width,
            "core_height_um": self.floorplan.core_height,
            "core_area_um2": self.floorplan.core_area,
            "die_area_um2": self.floorplan.die_area,
            "num_rows": float(self.floorplan.num_rows),
            "utilization": self.utilization(),
            "total_hpwl_um": self.total_hpwl(),
            "num_placed_cells": float(len(self.placed_cells())),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Placement({self.netlist.name}, rows={len(self.rows)}, "
            f"util={self.utilization():.3f})"
        )


def _placement_from_state(
    netlist: Netlist, floorplan: Floorplan, regions: Dict[str, Rect]
) -> Placement:
    """Rebuild a placement from the state emitted by ``__reduce__``."""
    placement = Placement(netlist, floorplan)
    placement.regions = regions
    placement.rebuild_rows()
    return placement
