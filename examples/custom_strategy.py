#!/usr/bin/env python3
"""Registering a third-party whitespace strategy — no edits to ``src/repro``.

The strategy layer is an open plugin API: subclass
:class:`repro.core.WhitespaceStrategy`, decorate it with
:func:`repro.core.register_strategy`, and every entry point — the
:class:`~repro.core.AreaManager`, :func:`repro.flow.evaluate_strategy`,
the :class:`repro.flow.Campaign` grid runner and the ``repro`` CLI —
dispatches to it by name, parameterized specs included.

This example registers a "checkerboard" strategy (empty rows at a fixed
stride across the whole core — a deliberately simple planner that is
neither hotspot-local nor temperature-weighted) and runs it through a
small campaign next to the built-ins::

    PYTHONPATH=src:examples python examples/custom_strategy.py
"""

from __future__ import annotations

import logging

from repro.analysis import figure6_report
from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.core import (
    StrategyContext,
    StrategyResult,
    WhitespaceStrategy,
    apply_row_insertions,
    register_strategy,
    rows_for_overhead,
)
from repro.flow import Campaign, ExperimentSetup, SolverCache


@register_strategy
class CheckerboardStrategy(WhitespaceStrategy):
    """Empty rows at a fixed stride across the whole core.

    The ``stride`` parameter sets the spacing of candidate rows: the
    empty-row budget for the requested overhead is spent on every
    ``stride``-th baseline row, wrapping around until the budget is gone.
    """

    name = "checkerboard"
    default_hotspot_threshold = 0.5
    param_defaults = {"stride": 2}

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        stride = max(1, int(self.param("stride")))
        budget = rows_for_overhead(ctx.placement, ctx.area_overhead)
        num_rows = ctx.placement.floorplan.num_rows
        points = sorted((i * stride) % num_rows for i in range(budget))
        result = apply_row_insertions(
            ctx.placement,
            points,
            requested_overhead=ctx.area_overhead,
            add_fillers=ctx.add_fillers,
        )
        return StrategyResult(
            placement=result.placement,
            actual_overhead=result.actual_overhead,
            inserted_rows=result.inserted_rows,
            num_fillers=result.num_fillers,
            details=result,
        )


def main() -> None:
    logging.basicConfig(level=logging.INFO, format="%(message)s")

    netlist = small_synthetic_circuit()
    workload = scattered_hotspots_workload(netlist)
    cache = SolverCache()
    setup = ExperimentSetup.prepare(netlist, workload, cache=cache)

    # The registered name — parameterized spec forms included — is a
    # first-class citizen of the campaign grid.
    campaign = Campaign(
        setup,
        strategies=("eri", "checkerboard", "checkerboard:stride=4"),
        overheads=(0.10, 0.20),
        cache=cache,
        name="custom-strategy-example",
    )
    result = campaign.run()

    print()
    print(figure6_report(result.outcomes()))
    for record in result.records:
        if record.strategy_params:
            print(f"{record.point.strategy}: params {record.strategy_params}")


if __name__ == "__main__":
    main()
