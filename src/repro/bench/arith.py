"""Gate-level generators for arithmetic units.

The paper's benchmark is a synthetic circuit of about 12,000 standard cells
"composed of nine arithmetic units of various sizes", synthesized with a
commercial flow.  We do not have that flow, so this module generates the
arithmetic units directly as gate-level netlists over the default cell
library: ripple-carry and carry-lookahead adders, carry-save adder trees,
array and Wallace-tree multipliers, and multiply-accumulate units, each with
registered inputs and outputs so the design is sequential and can be clocked
at the paper's 1 GHz.

Every generator returns a standalone :class:`~repro.netlist.netlist.Netlist`
that the synthetic-benchmark builder merges (with a per-unit prefix) into the
full design.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..netlist import CellLibrary, Netlist, default_library


class _Builder:
    """Small helper for constructing gate-level netlists.

    Tracks a monotonically increasing id for generated instance and net
    names, and offers one-line helpers for common gates so the arithmetic
    generators read like dataflow descriptions.
    """

    def __init__(self, name: str, library: Optional[CellLibrary] = None) -> None:
        self.netlist = Netlist(name, library if library is not None else default_library())
        self._next_id = 0

    # -- naming --------------------------------------------------------------

    def _fresh(self, stem: str) -> str:
        self._next_id += 1
        return f"{stem}_{self._next_id}"

    # -- ports ---------------------------------------------------------------

    def input_bus(self, name: str, width: int) -> List[str]:
        """Declare a primary input bus and return its per-bit net names."""
        nets = []
        for bit in range(width):
            port_name = f"{name}_{bit}"
            self.netlist.add_port(port_name, "input")
            self.netlist.connect_port(port_name, port_name)
            nets.append(port_name)
        return nets

    def output_bus(self, name: str, width: int, nets: Sequence[str]) -> None:
        """Declare a primary output bus driven by ``nets``."""
        if len(nets) != width:
            raise ValueError(f"output bus {name}: expected {width} nets, got {len(nets)}")
        for bit, net in enumerate(nets):
            port_name = f"{name}_{bit}"
            self.netlist.add_port(port_name, "output")
            self._connect_output_port(port_name, net)

    def _connect_output_port(self, port_name: str, net_name: str) -> None:
        net = self.netlist.add_net(net_name)
        net.add_sink_port(self.netlist.ports[port_name])

    # -- gates ---------------------------------------------------------------

    def gate(self, master: str, inputs: Sequence[str], stem: str = "g") -> str:
        """Instantiate a single-output gate and return its output net name."""
        inst = self.netlist.add_cell(self._fresh(stem), master)
        pin_names = inst.master.inputs
        if len(inputs) != len(pin_names):
            raise ValueError(
                f"{master} expects {len(pin_names)} inputs, got {len(inputs)}"
            )
        for pin_name, net_name in zip(pin_names, inputs):
            self.netlist.connect(net_name, inst.pin(pin_name))
        out_net = self._fresh("n")
        self.netlist.connect(out_net, inst.pin(inst.master.outputs[0]))
        return out_net

    def gate2(self, master: str, inputs: Sequence[str], stem: str = "g") -> Tuple[str, str]:
        """Instantiate a two-output gate (HA/FA); return its output nets."""
        inst = self.netlist.add_cell(self._fresh(stem), master)
        for pin_name, net_name in zip(inst.master.inputs, inputs):
            self.netlist.connect(net_name, inst.pin(pin_name))
        outs = []
        for out_pin in inst.master.outputs:
            out_net = self._fresh("n")
            self.netlist.connect(out_net, inst.pin(out_pin))
            outs.append(out_net)
        return outs[0], outs[1]

    def inv(self, a: str) -> str:
        return self.gate("INV_X1", [a], "inv")

    def and2(self, a: str, b: str) -> str:
        return self.gate("AND2_X1", [a, b], "and")

    def or2(self, a: str, b: str) -> str:
        return self.gate("OR2_X1", [a, b], "or")

    def xor2(self, a: str, b: str) -> str:
        return self.gate("XOR2_X1", [a, b], "xor")

    def nand2(self, a: str, b: str) -> str:
        return self.gate("NAND2_X1", [a, b], "nand")

    def nor2(self, a: str, b: str) -> str:
        return self.gate("NOR2_X1", [a, b], "nor")

    def mux2(self, a: str, b: str, sel: str) -> str:
        return self.gate("MUX2_X1", [a, b, sel], "mux")

    def half_adder(self, a: str, b: str) -> Tuple[str, str]:
        """Return ``(sum, carry)`` nets of a half adder."""
        return self.gate2("HA_X1", [a, b], "ha")

    def full_adder(self, a: str, b: str, cin: str) -> Tuple[str, str]:
        """Return ``(sum, carry)`` nets of a full adder."""
        return self.gate2("FA_X1", [a, b, cin], "fa")

    def dff(self, d: str) -> str:
        """Register a net through a D flip-flop and return the Q net."""
        inst = self.netlist.add_cell(self._fresh("dff"), "DFF_X1")
        self.netlist.connect(d, inst.pin("D"))
        q_net = self._fresh("q")
        self.netlist.connect(q_net, inst.pin("Q"))
        return q_net

    def register_bus(self, nets: Sequence[str]) -> List[str]:
        """Register every bit of a bus and return the Q net names."""
        return [self.dff(net) for net in nets]

    def constant_zero(self) -> str:
        """Return a net tied low (a NOR of a registered feedback loop is
        avoided; instead an input-less constant is modelled by XOR(a, a))."""
        # A constant-0 net built from an existing primary input keeps the
        # netlist purely structural without a tie cell: x XOR x == 0.
        some_input = next(iter(self.netlist.primary_inputs), None)
        if some_input is None:
            raise ValueError("constant_zero requires at least one primary input")
        return self.xor2(some_input.name, some_input.name)


# ---------------------------------------------------------------------------
# Adders
# ---------------------------------------------------------------------------


def ripple_carry_adder(width: int, name: str = "rca",
                       library: Optional[CellLibrary] = None,
                       registered: bool = True) -> Netlist:
    """Generate a ripple-carry adder.

    Args:
        width: Operand width in bits.
        name: Design name.
        library: Cell library; defaults to :func:`default_library`.
        registered: When ``True``, operands and results pass through D
            flip-flops (registered inputs and outputs).

    Returns:
        The adder netlist with ports ``a_*``, ``b_*``, ``cin_0``, ``s_*``
        and ``cout_0``.
    """
    builder = _Builder(name, library)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    cin = builder.input_bus("cin", 1)[0]
    if registered:
        a = builder.register_bus(a)
        b = builder.register_bus(b)
        cin = builder.dff(cin)

    sums: List[str] = []
    carry = cin
    for bit in range(width):
        s, carry = builder.full_adder(a[bit], b[bit], carry)
        sums.append(s)

    if registered:
        sums = builder.register_bus(sums)
        carry = builder.dff(carry)
    builder.output_bus("s", width, sums)
    builder.output_bus("cout", 1, [carry])
    return builder.netlist


def carry_lookahead_adder(width: int, name: str = "cla",
                          library: Optional[CellLibrary] = None,
                          registered: bool = True) -> Netlist:
    """Generate a carry-lookahead adder with 4-bit lookahead groups.

    Within each 4-bit group, carries are computed from propagate/generate
    terms with explicit AND/OR gates; groups are chained ripple-style.

    Args:
        width: Operand width in bits.
        name: Design name.
        library: Cell library; defaults to :func:`default_library`.
        registered: Register operands and results through flip-flops.

    Returns:
        The adder netlist with ports ``a_*``, ``b_*``, ``cin_0``, ``s_*``
        and ``cout_0``.
    """
    builder = _Builder(name, library)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    cin = builder.input_bus("cin", 1)[0]
    if registered:
        a = builder.register_bus(a)
        b = builder.register_bus(b)
        cin = builder.dff(cin)

    propagate = [builder.xor2(a[i], b[i]) for i in range(width)]
    generate = [builder.and2(a[i], b[i]) for i in range(width)]

    sums: List[str] = []
    carry = cin
    for group_start in range(0, width, 4):
        group_end = min(group_start + 4, width)
        carries = [carry]
        for i in range(group_start, group_end):
            # c[i+1] = g[i] + p[i] * c[i]
            term = builder.and2(propagate[i], carries[-1])
            carries.append(builder.or2(generate[i], term))
        for offset, i in enumerate(range(group_start, group_end)):
            sums.append(builder.xor2(propagate[i], carries[offset]))
        carry = carries[-1]

    if registered:
        sums = builder.register_bus(sums)
        carry = builder.dff(carry)
    builder.output_bus("s", width, sums)
    builder.output_bus("cout", 1, [carry])
    return builder.netlist


def carry_save_adder_tree(width: int, num_operands: int = 4, name: str = "csa",
                          library: Optional[CellLibrary] = None,
                          registered: bool = True) -> Netlist:
    """Generate a carry-save adder tree summing ``num_operands`` operands.

    Operands are reduced with 3:2 carry-save stages down to two vectors,
    which are then summed with a ripple-carry stage.

    Args:
        width: Operand width in bits.
        num_operands: Number of input operands (>= 2).
        name: Design name.
        library: Cell library; defaults to :func:`default_library`.
        registered: Register operands and results through flip-flops.

    Returns:
        The netlist with ports ``op<k>_*`` and ``s_*`` (width + ceil(log2)
        extra bits are truncated to ``width + 2`` result bits).
    """
    if num_operands < 2:
        raise ValueError("carry_save_adder_tree requires at least 2 operands")
    builder = _Builder(name, library)
    operands: List[List[str]] = []
    for k in range(num_operands):
        bus = builder.input_bus(f"op{k}", width)
        if registered:
            bus = builder.register_bus(bus)
        operands.append(bus)

    result_width = width + 2
    zero = builder.constant_zero()

    def pad(bus: List[str]) -> List[str]:
        return bus + [zero] * (result_width - len(bus))

    vectors = [pad(bus) for bus in operands]

    # 3:2 reduction until only two vectors remain.
    while len(vectors) > 2:
        next_vectors: List[List[str]] = []
        idx = 0
        while idx + 2 < len(vectors):
            x, y, z = vectors[idx], vectors[idx + 1], vectors[idx + 2]
            sum_vec: List[str] = []
            carry_vec: List[str] = [zero]
            for bit in range(result_width):
                s, c = builder.full_adder(x[bit], y[bit], z[bit])
                sum_vec.append(s)
                if bit + 1 < result_width:
                    carry_vec.append(c)
            next_vectors.append(sum_vec)
            next_vectors.append(carry_vec[:result_width])
            idx += 3
        next_vectors.extend(vectors[idx:])
        vectors = next_vectors

    # Final carry-propagate addition of the remaining two vectors.
    final_a, final_b = vectors
    sums: List[str] = []
    carry = zero
    for bit in range(result_width):
        s, carry = builder.full_adder(final_a[bit], final_b[bit], carry)
        sums.append(s)

    if registered:
        sums = builder.register_bus(sums)
    builder.output_bus("s", result_width, sums)
    return builder.netlist


# ---------------------------------------------------------------------------
# Multipliers
# ---------------------------------------------------------------------------


def _partial_products(builder: _Builder, a: Sequence[str], b: Sequence[str]) -> List[List[str]]:
    """AND-gate partial product matrix ``pp[j][i] = a[i] & b[j]``."""
    return [[builder.and2(a[i], b[j]) for i in range(len(a))] for j in range(len(b))]


def array_multiplier(width: int, name: str = "arraymul",
                     library: Optional[CellLibrary] = None,
                     registered: bool = True) -> Netlist:
    """Generate an unsigned array (carry-save) multiplier.

    The classic array structure: an AND-gate partial-product matrix reduced
    row by row with half/full adders, followed by a ripple-carry final row.

    Args:
        width: Operand width in bits.
        name: Design name.
        library: Cell library; defaults to :func:`default_library`.
        registered: Register operands and the product through flip-flops.

    Returns:
        The multiplier netlist with ports ``a_*``, ``b_*`` and ``p_*``
        (product of ``2 * width`` bits).
    """
    builder = _Builder(name, library)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    if registered:
        a = builder.register_bus(a)
        b = builder.register_bus(b)

    pp = _partial_products(builder, a, b)

    # Row-by-row carry-save accumulation.
    # running_sum[i] holds bit i of the partial result aligned to bit 0.
    product: List[str] = [pp[0][0]]
    running = pp[0][1:]  # bits 1..width-1 of row 0
    zero = builder.constant_zero()

    for row in range(1, width):
        row_bits = pp[row]
        new_running: List[str] = []
        carry = zero
        for col in range(width):
            acc_bit = running[col] if col < len(running) else zero
            if col == 0:
                s, carry = builder.half_adder(acc_bit, row_bits[col])
                # carry from HA joins the FA chain at the next column
                product.append(s)
                prev_carry = carry
            else:
                s, prev_carry = builder.full_adder(acc_bit, row_bits[col], prev_carry)
                new_running.append(s)
        new_running.append(prev_carry)
        running = new_running

    # Remaining high bits of the accumulated sum form the top product bits.
    product.extend(running)
    product = product[: 2 * width]
    while len(product) < 2 * width:
        product.append(zero)

    if registered:
        product = builder.register_bus(product)
    builder.output_bus("p", 2 * width, product)
    return builder.netlist


def wallace_multiplier(width: int, name: str = "wallacemul",
                       library: Optional[CellLibrary] = None,
                       registered: bool = True) -> Netlist:
    """Generate an unsigned Wallace-tree multiplier.

    Partial products are reduced column-wise with 3:2 (full adder) and 2:2
    (half adder) compressors until every column holds at most two bits, then
    a ripple-carry adder produces the final product.

    Args:
        width: Operand width in bits.
        name: Design name.
        library: Cell library; defaults to :func:`default_library`.
        registered: Register operands and the product through flip-flops.

    Returns:
        The multiplier netlist with ports ``a_*``, ``b_*`` and ``p_*``
        (product of ``2 * width`` bits).
    """
    builder = _Builder(name, library)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    if registered:
        a = builder.register_bus(a)
        b = builder.register_bus(b)

    # columns[k] = list of nets whose weight is 2^k
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for j in range(width):
        for i in range(width):
            columns[i + j].append(builder.and2(a[i], b[j]))

    # Wallace reduction.
    while any(len(col) > 2 for col in columns):
        new_columns: List[List[str]] = [[] for _ in range(2 * width)]
        for k, col in enumerate(columns):
            idx = 0
            while len(col) - idx >= 3:
                s, c = builder.full_adder(col[idx], col[idx + 1], col[idx + 2])
                new_columns[k].append(s)
                if k + 1 < 2 * width:
                    new_columns[k + 1].append(c)
                idx += 3
            if len(col) - idx == 2:
                s, c = builder.half_adder(col[idx], col[idx + 1])
                new_columns[k].append(s)
                if k + 1 < 2 * width:
                    new_columns[k + 1].append(c)
                idx += 2
            new_columns[k].extend(col[idx:])
        columns = new_columns

    # Final carry-propagate addition.
    zero = builder.constant_zero()
    product: List[str] = []
    carry = zero
    for k in range(2 * width):
        col = columns[k]
        x = col[0] if len(col) > 0 else zero
        y = col[1] if len(col) > 1 else zero
        s, carry = builder.full_adder(x, y, carry)
        product.append(s)

    if registered:
        product = builder.register_bus(product)
    builder.output_bus("p", 2 * width, product)
    return builder.netlist


def multiply_accumulate(width: int, name: str = "mac",
                        library: Optional[CellLibrary] = None) -> Netlist:
    """Generate a multiply-accumulate unit.

    The unit multiplies two ``width``-bit operands with an array multiplier
    structure and adds the product into a ``2 * width + 2``-bit accumulator
    register each cycle.

    Args:
        width: Operand width in bits.
        name: Design name.
        library: Cell library; defaults to :func:`default_library`.

    Returns:
        The MAC netlist with ports ``a_*``, ``b_*`` and ``acc_*``.
    """
    builder = _Builder(name, library)
    a = builder.register_bus(builder.input_bus("a", width))
    b = builder.register_bus(builder.input_bus("b", width))

    # Partial-product reduction (same column-wise scheme as Wallace).
    acc_width = 2 * width + 2
    columns: List[List[str]] = [[] for _ in range(acc_width)]
    for j in range(width):
        for i in range(width):
            columns[i + j].append(builder.and2(a[i], b[j]))

    while any(len(col) > 2 for col in columns):
        new_columns: List[List[str]] = [[] for _ in range(acc_width)]
        for k, col in enumerate(columns):
            idx = 0
            while len(col) - idx >= 3:
                s, c = builder.full_adder(col[idx], col[idx + 1], col[idx + 2])
                new_columns[k].append(s)
                if k + 1 < acc_width:
                    new_columns[k + 1].append(c)
                idx += 3
            if len(col) - idx == 2:
                s, c = builder.half_adder(col[idx], col[idx + 1])
                new_columns[k].append(s)
                if k + 1 < acc_width:
                    new_columns[k + 1].append(c)
                idx += 2
            new_columns[k].extend(col[idx:])
        columns = new_columns

    zero = builder.constant_zero()
    product: List[str] = []
    carry = zero
    for k in range(acc_width):
        col = columns[k]
        x = col[0] if len(col) > 0 else zero
        y = col[1] if len(col) > 1 else zero
        s, carry = builder.full_adder(x, y, carry)
        product.append(s)

    # Accumulator: acc_next = acc + product; acc register feeds back.
    # Build the register first by creating DFFs whose D nets are assigned
    # after the adder is constructed.
    acc_dffs = [builder.netlist.add_cell(f"accreg_{k}", "DFF_X1") for k in range(acc_width)]
    acc_q: List[str] = []
    for k, dff in enumerate(acc_dffs):
        q_net = f"acc_q_{k}"
        builder.netlist.connect(q_net, dff.pin("Q"))
        acc_q.append(q_net)

    carry = zero
    acc_next: List[str] = []
    for k in range(acc_width):
        s, carry = builder.full_adder(product[k], acc_q[k], carry)
        acc_next.append(s)

    for k, dff in enumerate(acc_dffs):
        builder.netlist.connect(acc_next[k], dff.pin("D"))

    builder.output_bus("acc", acc_width, acc_q)
    return builder.netlist
