"""Quadratic (analytical) global placement.

The paper's circuits are placed with a commercial tool (Synopsys IC
Compiler).  As a substitute, this module implements the classic quadratic
placement formulation: minimise the weighted sum of squared pin-to-pin
distances, with primary ports fixed on the core boundary and a weak anchor
pulling every cell towards the centre of the region its logical unit was
assigned to by the slicing partition.  The resulting target positions are
then legalised per region (see :mod:`repro.placement.legalize`).

Nets are modelled with the standard clique approximation: a ``p``-pin net
contributes edges of weight ``1 / (p - 1)`` between every pair of its
terminals, which reproduces the net's quadratic star cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..netlist import Netlist
from .floorplan import Floorplan, Rect


@dataclass
class GlobalPlacementResult:
    """Target (un-legalised) positions produced by the quadratic placer.

    Attributes:
        positions: Mapping cell name -> (x, y) target centre in micrometres.
        objective: Final quadratic wirelength objective value.
    """

    positions: Dict[str, Tuple[float, float]]
    objective: float


def assign_port_positions(netlist: Netlist, floorplan: Floorplan) -> None:
    """Spread primary ports evenly around the core boundary.

    Ports are ordered by name and distributed clockwise along the core
    perimeter starting at the lower-left corner.  Positions are stored on
    the ports themselves (``port.x``, ``port.y``).
    """
    ports = sorted(netlist.ports.values(), key=lambda p: p.name)
    if not ports:
        return
    width = floorplan.core_width
    height = floorplan.core_height
    perimeter = 2.0 * (width + height)
    step = perimeter / len(ports)
    for i, port in enumerate(ports):
        distance = (i + 0.5) * step
        if distance < width:
            port.x, port.y = distance, 0.0
        elif distance < width + height:
            port.x, port.y = width, distance - width
        elif distance < 2.0 * width + height:
            port.x, port.y = 2.0 * width + height - distance, height
        else:
            port.x, port.y = 0.0, perimeter - distance


class QuadraticPlacer:
    """Analytical global placer based on a sparse quadratic program.

    Args:
        netlist: The design to place.
        floorplan: Core geometry; ports must already have boundary positions
            (see :func:`assign_port_positions`).
        regions: Optional mapping unit name -> :class:`Rect`; each cell is
            anchored to its unit's region centre.
        anchor_weight: Weight of the region-centre anchor (relative to a
            two-pin net weight of 1.0).
        max_clique_pins: Nets with more terminals than this are modelled by
            connecting each pin to the net's (fixed-point iterated) centroid
            instead of a full clique, to keep the matrix sparse.
    """

    def __init__(
        self,
        netlist: Netlist,
        floorplan: Floorplan,
        regions: Optional[Dict[str, Rect]] = None,
        anchor_weight: float = 0.25,
        max_clique_pins: int = 16,
    ) -> None:
        self.netlist = netlist
        self.floorplan = floorplan
        self.regions = regions or {}
        self.anchor_weight = anchor_weight
        self.max_clique_pins = max_clique_pins

        self._movable = [c for c in netlist.cells.values() if not c.is_filler and not c.fixed]
        self._index = {cell.name: i for i, cell in enumerate(self._movable)}

    # ------------------------------------------------------------------

    def _net_terminals(self, net) -> Tuple[List[int], List[Tuple[float, float]]]:
        """Split a net's terminals into movable cell indices and fixed points."""
        movable: List[int] = []
        fixed: List[Tuple[float, float]] = []
        pins = []
        if net.driver_pin is not None:
            pins.append(net.driver_pin)
        pins.extend(net.sink_pins)
        for pin in pins:
            idx = self._index.get(pin.cell.name)
            if idx is None:
                if pin.cell.is_placed:
                    fixed.append(pin.cell.center)
            else:
                movable.append(idx)
        ports = []
        if net.driver_port is not None:
            ports.append(net.driver_port)
        ports.extend(net.sink_ports)
        for port in ports:
            if port.x is not None and port.y is not None:
                fixed.append((port.x, port.y))
        return movable, fixed

    def _build_system(self):
        """Assemble the Laplacian-like system matrices and RHS vectors."""
        n = len(self._movable)
        diag = np.zeros(n)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        bx = np.zeros(n)
        by = np.zeros(n)

        def add_edge(i: int, j: int, w: float) -> None:
            diag[i] += w
            diag[j] += w
            rows.append(i)
            cols.append(j)
            vals.append(-w)
            rows.append(j)
            cols.append(i)
            vals.append(-w)

        def add_fixed(i: int, x: float, y: float, w: float) -> None:
            diag[i] += w
            bx[i] += w * x
            by[i] += w * y

        for net in self.netlist.nets.values():
            movable, fixed = self._net_terminals(net)
            num_terms = len(movable) + len(fixed)
            if num_terms < 2:
                continue
            if num_terms <= self.max_clique_pins:
                weight = 1.0 / (num_terms - 1)
                for a in range(len(movable)):
                    for b in range(a + 1, len(movable)):
                        add_edge(movable[a], movable[b], weight)
                    for fx, fy in fixed:
                        add_fixed(movable[a], fx, fy, weight)
            else:
                # Star model: connect every movable pin to the centroid of
                # the fixed pins (or the core centre when there are none).
                weight = 2.0 / num_terms
                if fixed:
                    cx = sum(p[0] for p in fixed) / len(fixed)
                    cy = sum(p[1] for p in fixed) / len(fixed)
                else:
                    cx, cy = self.floorplan.core_rect.center
                for idx in movable:
                    add_fixed(idx, cx, cy, weight)

        # Region-centre anchors keep every cell attracted to its unit region
        # and guarantee a non-singular system.
        core_center = self.floorplan.core_rect.center
        for i, cell in enumerate(self._movable):
            region = self.regions.get(cell.unit)
            cx, cy = region.center if region is not None else core_center
            add_fixed(i, cx, cy, self.anchor_weight)

        laplacian = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        laplacian = laplacian + sp.diags(diag)
        return laplacian, bx, by

    def run(self) -> GlobalPlacementResult:
        """Solve the quadratic program and return target cell positions."""
        if not self._movable:
            return GlobalPlacementResult({}, 0.0)
        matrix, bx, by = self._build_system()
        x = self._solve(matrix, bx)
        y = self._solve(matrix, by)

        # Clamp to the core.
        x = np.clip(x, 0.0, self.floorplan.core_width)
        y = np.clip(y, 0.0, self.floorplan.core_height)

        positions = {
            cell.name: (float(x[i]), float(y[i])) for i, cell in enumerate(self._movable)
        }
        objective = float(x @ (matrix @ x) - 2 * bx @ x + y @ (matrix @ y) - 2 * by @ y)
        return GlobalPlacementResult(positions, objective)

    @staticmethod
    def _solve(matrix: sp.csr_matrix, rhs: np.ndarray) -> np.ndarray:
        """Solve the SPD system with conjugate gradients (LU fallback)."""
        solution, info = spla.cg(matrix, rhs, rtol=1e-6, maxiter=2000)
        if info != 0:
            solution = spla.spsolve(matrix.tocsc(), rhs)
        return np.asarray(solution, dtype=float)
