"""Cross-cutting property-based tests on the core data structures.

These complement the per-module tests with invariants that must hold for
*any* input: legality of row packing, conservation of cell area and power
under the transformations, and geometric consistency of the thermal grid.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench import ripple_carry_adder
from repro.core import apply_empty_row_insertion, detect_hotspots
from repro.netlist import Netlist, default_library
from repro.placement import Floorplan, Placement, insert_fillers, place_design
from repro.power import PowerModel, SwitchingActivity
from repro.thermal import ThermalGrid, ThermalSolver, default_package


_LIBRARY = default_library()
_GATE_NAMES = [c.name for c in _LIBRARY.logic_cells() if not c.is_sequential]


class TestRowPackingProperties:
    @given(
        widths=st.lists(st.sampled_from(_GATE_NAMES), min_size=1, max_size=25),
        row_width=st.floats(60.0, 200.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_pack_and_spread_never_overlap(self, widths, row_width):
        netlist = Netlist("prop", _LIBRARY)
        floorplan = Floorplan(core_width=row_width, core_height=1.8)
        placement = Placement(netlist, floorplan)
        cells = [netlist.add_cell(f"c{i}", master) for i, master in enumerate(widths)]
        total_width = sum(c.width for c in cells)
        if total_width > row_width:
            return  # not a legal instance of the problem
        row = placement.rows[0]
        for cell in cells:
            row.add(cell, 0.0)
        row.pack()
        assert row.overlaps() == []
        row.spread()
        assert row.overlaps() == []
        assert all(0.0 <= c.x and c.x + c.width <= row_width + 1e-6 for c in cells)

    @given(
        widths=st.lists(st.sampled_from(_GATE_NAMES), min_size=1, max_size=20),
    )
    @settings(max_examples=20, deadline=None)
    def test_filler_insertion_covers_whitespace(self, widths):
        netlist = Netlist("prop_fill", _LIBRARY)
        floorplan = Floorplan(core_width=80.0, core_height=1.8)
        placement = Placement(netlist, floorplan)
        cells = [netlist.add_cell(f"c{i}", master) for i, master in enumerate(widths)]
        if sum(c.width for c in cells) > floorplan.core_width:
            return
        row = placement.rows[0]
        for cell in cells:
            row.add(cell, 0.0)
        row.pack()
        insert_fillers(placement)
        assert placement.check_legal() == []
        covered = sum(c.area for c in netlist.cells.values())
        # Whitespace is covered up to the narrowest filler (1 site) rounding.
        assert covered == pytest.approx(floorplan.core_area, abs=2 * 0.2 * 1.8)


class TestTransformationProperties:
    @given(num_rows=st.integers(1, 12))
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_eri_preserves_cell_area_and_power(
        self, small_placement, small_power, small_thermal, num_rows
    ):
        hotspots = detect_hotspots(small_thermal, small_placement, power=small_power,
                                   threshold_fraction=0.5)
        result = apply_empty_row_insertion(small_placement, hotspots, num_rows=num_rows,
                                           add_fillers=False)
        # Logic cell area is invariant (only whitespace is added).
        assert result.placement.netlist.total_cell_area() == pytest.approx(
            small_placement.netlist.total_cell_area()
        )
        # Power is keyed by cell name, so the report still applies: the total
        # power of the transformed design is identical.
        total = sum(
            small_power.power_of(c.name)
            for c in result.placement.netlist.logic_cells()
        )
        assert total == pytest.approx(small_power.total(), rel=1e-9)
        # Overhead accounting matches the row count exactly.
        assert result.actual_overhead == pytest.approx(
            num_rows / small_placement.floorplan.num_rows, rel=1e-9
        )

    @given(utilization=st.floats(0.55, 0.9))
    @settings(max_examples=6, deadline=None)
    def test_placement_legal_at_any_utilization(self, utilization):
        netlist = ripple_carry_adder(12)
        placement = place_design(netlist, utilization=utilization, use_quadratic=False,
                                 detailed=False)
        assert placement.check_legal() == []
        assert placement.utilization() <= utilization + 1e-9


class TestThermalProperties:
    @given(
        nx=st.integers(4, 16),
        ny=st.integers(4, 16),
        scale=st.floats(0.1, 10.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_solution_scales_linearly_with_power(self, nx, ny, scale):
        grid = ThermalGrid(100.0, 100.0, nx=nx, ny=ny, package=default_package())
        solver = ThermalSolver(grid)
        rng = np.random.default_rng(nx * 100 + ny)
        power = rng.random((ny, nx)) * 1e-5
        base = solver.solve(power)
        scaled = solver.solve(power * scale)
        assert np.allclose(scaled.rise_map(), base.rise_map() * scale, rtol=1e-9, atol=1e-12)

    @given(extra=st.floats(1e-6, 1e-3))
    @settings(max_examples=10, deadline=None)
    def test_monotonicity_adding_power_never_cools(self, extra):
        grid = ThermalGrid(80.0, 80.0, nx=8, ny=8, package=default_package())
        solver = ThermalSolver(grid)
        power = np.full((8, 8), 1e-5)
        base = solver.solve(power)
        power_more = power.copy()
        power_more[3, 4] += extra
        more = solver.solve(power_more)
        assert (more.rise_map() >= base.rise_map() - 1e-12).all()


class TestPowerModelProperties:
    @given(rate=st.floats(0.0, 1.0))
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_power_monotone_in_activity(self, tiny_netlist, rate):
        model = PowerModel()
        low = model.estimate(tiny_netlist, SwitchingActivity.uniform(tiny_netlist, rate))
        high = model.estimate(
            tiny_netlist, SwitchingActivity.uniform(tiny_netlist, min(rate + 0.1, 1.0))
        )
        assert high.total() >= low.total() - 1e-15
