"""Process-wide memory governor for the sweep daemon.

A long-lived ``repro serve`` accumulates memory in three places: the
in-memory tiers of the :class:`~repro.flow.store.ResultStore` and
:class:`~repro.flow.artifacts.ArtifactStore` (unbounded by default), the
factorised-solver cache, and transient batch state.  Left alone, the
kernel OOM-killer is the backstop — which takes every in-flight request
down with it.  :class:`ResourceGovernor` degrades *gracefully* instead,
down a three-step ladder keyed to RSS against a configured budget:

``ok``
    Below ``elevated_fraction`` (default 80%) of the budget: caches run
    at their configured sizes.
``elevated``
    Above it: the in-memory LRU tiers of the artifact and result stores
    are halved (disk tiers keep everything, so this trades latency for
    headroom, never correctness).
``critical``
    At/above the budget: memory tiers are disabled outright (store-only
    reads) and :meth:`should_shed` turns on, telling the server to shed
    queued work and refuse new sweeps with a ``retry_after_s`` hint until
    pressure clears.  Caps are restored once RSS drops back to ``ok``.

RSS comes from ``/proc/self/statm`` (Linux), falling back to
``resource.getrusage`` peak RSS — stdlib only, a few microseconds per
sample, so the server checks on every admission and after every batch.

Fault seam: ``governor.pressure`` fires on every check; a seeded plan
can force a ``critical`` episode deterministically (an injected fault is
interpreted as "the budget is exhausted"), which is how the overload
chaos harness exercises the ladder without actually allocating gigabytes.
"""

from __future__ import annotations

import os
import resource
import threading
from typing import Callable, Dict, Optional

from ..faults import InjectedFault, inject

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def process_rss_mb() -> float:
    """Resident set size of this process in MiB (stdlib only).

    Prefers ``/proc/self/statm`` (current RSS, Linux); falls back to
    ``ru_maxrss`` (peak RSS, portable) when procfs is unavailable.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE / (1024 * 1024)
    except (OSError, IndexError, ValueError):
        # ru_maxrss is KiB on Linux (and bytes on macOS, where this
        # branch is the fallback of a fallback; close enough for a cap).
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


class ResourceGovernor:
    """Budget-driven degradation for the daemon's in-memory caches.

    Thread-safe; :meth:`check` may be called from request handlers and
    the batch scheduler concurrently.  With no budget configured the
    governor only samples (for ``health()``'s ``rss_mb``) and never
    degrades anything.

    Args:
        max_rss_mb: Memory budget; ``None`` disables the ladder.
        result_store: Store whose memory tier is shrunk under pressure.
        artifact_store: Artifact cache whose LRU is shrunk under pressure.
        elevated_fraction: Budget fraction where shrinking starts.
        rss_fn: RSS sampler (injectable for deterministic tests).
    """

    def __init__(
        self,
        max_rss_mb: Optional[float] = None,
        result_store=None,
        artifact_store=None,
        elevated_fraction: float = 0.8,
        rss_fn: Callable[[], float] = process_rss_mb,
    ) -> None:
        if max_rss_mb is not None and max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be > 0, got {max_rss_mb}")
        if not 0.0 < elevated_fraction < 1.0:
            raise ValueError(
                f"elevated_fraction must be in (0, 1), got {elevated_fraction}"
            )
        self.max_rss_mb = max_rss_mb
        self.elevated_fraction = elevated_fraction
        self._rss_fn = rss_fn
        self._result_store = result_store
        self._artifact_store = artifact_store
        self._lock = threading.Lock()
        self._level = "ok"
        self._saved_caps: Dict[str, Optional[int]] = {}
        self._last_rss_mb = 0.0
        self.pressure_events = 0
        self.lru_shrinks = 0

    # -- sampling ------------------------------------------------------------

    def rss_mb(self) -> float:
        """Current RSS sample (also refreshes the cached reading)."""
        value = float(self._rss_fn())
        with self._lock:
            self._last_rss_mb = value
        return value

    @property
    def level(self) -> str:
        """The ladder step decided by the most recent :meth:`check`."""
        with self._lock:
            return self._level

    def should_shed(self) -> bool:
        """True while the last check saw critical pressure."""
        return self.level == "critical"

    # -- the ladder ----------------------------------------------------------

    def check(self) -> str:
        """Sample RSS, walk the ladder, return the current level."""
        rss = self.rss_mb()
        level = "ok"
        if self.max_rss_mb is not None:
            if rss >= self.max_rss_mb:
                level = "critical"
            elif rss >= self.elevated_fraction * self.max_rss_mb:
                level = "elevated"
        try:
            inject("governor.pressure", {
                "rss_mb": round(rss, 1), "level": level,
            })
        except InjectedFault:
            # The chaos plan says the budget is exhausted: take the
            # critical path exactly as a real OOM-adjacent sample would.
            level = "critical"
        with self._lock:
            previous = self._level
            self._level = level
            if level != "ok" and previous == "ok":
                self.pressure_events += 1
        if level == "elevated" and previous != "elevated":
            self._halve_memory_tiers()
        elif level == "critical" and previous != "critical":
            self._disable_memory_tiers()
        elif level == "ok" and previous != "ok":
            self._restore_memory_tiers()
        return level

    def _stores(self):
        for name, store in (
            ("result", self._result_store),
            ("artifact", self._artifact_store),
        ):
            if store is not None:
                yield name, store

    def _halve_memory_tiers(self) -> None:
        for _, store in self._stores():
            target = len(store) // 2
            evicted = store.shrink(target)
            if evicted:
                with self._lock:
                    self.lru_shrinks += 1

    def _disable_memory_tiers(self) -> None:
        with self._lock:
            for name, store in self._stores():
                if name not in self._saved_caps:
                    self._saved_caps[name] = store.maxsize
        for _, store in self._stores():
            store.maxsize = 0
            store.shrink(0)
        with self._lock:
            self.lru_shrinks += 1

    def _restore_memory_tiers(self) -> None:
        with self._lock:
            saved = dict(self._saved_caps)
            self._saved_caps.clear()
        for name, store in self._stores():
            if name in saved:
                store.maxsize = saved[name]

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "rss_mb": round(self._last_rss_mb, 1),
                "max_rss_mb": self.max_rss_mb,
                "pressure": self._level,
                "pressure_events": self.pressure_events,
                "lru_shrinks": self.lru_shrinks,
            }


__all__ = ["ResourceGovernor", "process_rss_mb"]
