"""Placement substrate: floorplanning, global placement, legalization."""

from .floorplan import Floorplan, Rect, slicing_partition
from .placement import Placement, Row
from .global_place import GlobalPlacementResult, QuadraticPlacer, assign_port_positions
from .legalize import pack_into_region, tetris_legalize
from .density import cell_density_map, density_in_rect, peak_density
from .filler import filler_area, insert_fillers, remove_fillers
from .detailed import improve_placement, improve_row
from .placer import place_design, replace_at_utilization

__all__ = [
    "Floorplan",
    "Rect",
    "slicing_partition",
    "Placement",
    "Row",
    "GlobalPlacementResult",
    "QuadraticPlacer",
    "assign_port_positions",
    "pack_into_region",
    "tetris_legalize",
    "cell_density_map",
    "density_in_rect",
    "peak_density",
    "filler_area",
    "insert_fillers",
    "remove_fillers",
    "improve_placement",
    "improve_row",
    "place_design",
    "replace_at_utilization",
]
