"""Crash-consistent store auditing and repair (``repro fsck``).

A hard kill (``kill -9``, OOM) can interrupt the artifact and result
stores at exactly two seams: between taking an ``O_EXCL`` single-flight
claim and releasing it, and between staging a ``.tmp.*`` blob and the
atomic ``os.replace`` that publishes it.  Neither seam can corrupt a
*published* entry — readers always see the old blob or the new one — but
the debris left behind is real: an orphaned claim makes every later
writer of that key wait out the full :data:`~repro.flow.store.STALE_CLAIM_S`
window, and stale temp files accumulate forever.  Damaged entries (torn
by the filesystem itself, bit-flipped, truncated) are a third category:
the read path already self-heals them on access, but an audit should
find them *before* a campaign trips over them.

Two entry points:

* :func:`fsck_store` — the operator-grade auditor behind ``repro fsck``.
  Scans one store root for orphaned claims, temp debris, entries whose
  key does not parse, and (unless disabled) blobs whose SHA-256 fails
  verification.  With ``repair=True`` debris is deleted and damaged
  entries are quarantined atomically under ``<root>/.quarantine/``.  The
  tool assumes the store is quiesced — claims and temp files are treated
  as garbage regardless of age.
* :func:`recover_store` — the fast startup pass :class:`~repro.flow.runner.Campaign`
  and the serve daemon run before touching a store.  It must be safe
  against *live* peers sharing the store, so it only removes temp files
  whose writer process is verifiably gone and claims older than the
  stale threshold; blob payloads are not verified (corrupt entries
  self-heal on first read).
"""

from __future__ import annotations

import logging
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from .artifacts import BlobIntegrityError, read_blob
from .store import STALE_CLAIM_S, _ENTRY_SUFFIXES

logger = logging.getLogger(__name__)

#: Directory (under the store root) damaged entries are quarantined into.
QUARANTINE_DIR = ".quarantine"

#: Length of a store key: :func:`~repro.flow.artifacts.hash_parts` is a
#: 16-byte blake2b, hex-encoded.
_KEY_HEX_LEN = 32


@dataclass
class FsckReport:
    """What one :func:`fsck_store` (or :func:`recover_store`) pass found.

    Path lists hold everything *found*; ``num_repaired`` counts how many
    of them were actually deleted or quarantined (0 on a check-only run).
    """

    root: Path
    entries_checked: int = 0
    orphaned_claims: List[Path] = field(default_factory=list)
    stale_tmp: List[Path] = field(default_factory=list)
    corrupt_blobs: List[Path] = field(default_factory=list)
    bad_keys: List[Path] = field(default_factory=list)
    num_repaired: int = 0
    repair_errors: int = 0

    @property
    def num_problems(self) -> int:
        return (
            len(self.orphaned_claims)
            + len(self.stale_tmp)
            + len(self.corrupt_blobs)
            + len(self.bad_keys)
        )

    @property
    def clean(self) -> bool:
        """True when the scan found nothing wrong."""
        return self.num_problems == 0

    def summary(self) -> str:
        """One human line: what was found, and what was done about it."""
        if self.clean:
            return (
                f"{self.root}: clean "
                f"({self.entries_checked} entr{'y' if self.entries_checked == 1 else 'ies'} verified)"
            )
        parts = []
        if self.orphaned_claims:
            parts.append(f"{len(self.orphaned_claims)} orphaned claim(s)")
        if self.stale_tmp:
            parts.append(f"{len(self.stale_tmp)} stale tmp file(s)")
        if self.corrupt_blobs:
            parts.append(f"{len(self.corrupt_blobs)} corrupt blob(s)")
        if self.bad_keys:
            parts.append(f"{len(self.bad_keys)} unparseable key(s)")
        action = (
            f"repaired {self.num_repaired}"
            if self.num_repaired
            else "not repaired (run with --repair)"
        )
        if self.repair_errors:
            action += f", {self.repair_errors} repair error(s)"
        return f"{self.root}: {', '.join(parts)} - {action}"


def _iter_store_files(root: Path):
    """Every regular file under ``root``, quarantine excluded."""
    for path in sorted(root.rglob("*")):
        if QUARANTINE_DIR in path.parts:
            continue
        if path.is_file():
            yield path


def _writer_alive(path: Path) -> Optional[bool]:
    """Whether the process that staged a ``.tmp.<pid>.<tid>`` file lives.

    Returns ``None`` when the name carries no parseable pid (treated as
    abandoned debris by callers that must stay conservative elsewhere).
    """
    name = path.name
    marker = ".tmp."
    start = name.find(marker)
    if start < 0:
        return None
    fields = name[start + len(marker):].split(".")
    if not fields or not fields[0].isdigit():
        return None
    pid = int(fields[0])
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return None
    return True


def _remove(path: Path, report: FsckReport) -> None:
    try:
        path.unlink()
        report.num_repaired += 1
    except FileNotFoundError:
        report.num_repaired += 1  # a concurrent repair beat us to it
    except OSError as error:
        report.repair_errors += 1
        logger.warning("fsck: could not remove %s: %s", path, error)


def _quarantine(root: Path, path: Path, report: FsckReport) -> None:
    """Atomically move a damaged entry under ``<root>/.quarantine/``."""
    target_dir = root / QUARANTINE_DIR
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / path.name
        if target.exists():
            target = target_dir / f"{path.name}.{int(time.time() * 1e6)}"
        os.replace(path, target)
        report.num_repaired += 1
    except OSError as error:
        report.repair_errors += 1
        logger.warning("fsck: could not quarantine %s: %s", path, error)


def fsck_store(
    root: Union[str, Path],
    repair: bool = False,
    verify_blobs: bool = True,
) -> FsckReport:
    """Audit (and optionally repair) one artifact- or result-store root.

    Finds, in one pass over the tree:

    * **Orphaned claims** — ``.lock`` files; with no live owner process a
      claim is pure obstruction.  The store is assumed quiesced, so every
      claim found is reported (and, with ``repair``, deleted).
    * **Stale temp files** — ``.tmp.*`` staging files a crashed writer
      never published.  Deleted under ``repair``.
    * **Corrupt blobs** — entries whose magic, SHA-256 or pickling fails
      (``verify_blobs=False`` skips the payload reads for very large
      stores).  Quarantined under ``<root>/.quarantine/`` so an operator
      can inspect them; a rerun then recomputes the affected points.
    * **Unparseable keys** — entry files whose stem is not a store key
      (e.g. a partially renamed file); quarantined likewise.

    Args:
        root: Store directory (missing roots report clean).
        repair: Actually delete/quarantine what the scan finds.
        verify_blobs: Read and checksum every entry payload.

    Returns:
        A :class:`FsckReport`; ``report.clean`` on a healthy store.
    """
    root = Path(root)
    report = FsckReport(root=root)
    if not root.exists():
        return report
    for path in _iter_store_files(root):
        if path.suffix == ".lock":
            report.orphaned_claims.append(path)
            if repair:
                _remove(path, report)
            continue
        if ".tmp." in path.name:
            report.stale_tmp.append(path)
            if repair:
                _remove(path, report)
            continue
        if path.suffix not in _ENTRY_SUFFIXES:
            continue  # not ours (README drops, operator notes, ...)
        stem = path.stem
        if len(stem) != _KEY_HEX_LEN or any(
            c not in "0123456789abcdef" for c in stem
        ):
            report.bad_keys.append(path)
            if repair:
                _quarantine(root, path, report)
            continue
        report.entries_checked += 1
        if not verify_blobs:
            continue
        try:
            read_blob(path)
        except OSError:
            continue  # vanished mid-scan (concurrent prune): not a fault
        except BlobIntegrityError:
            report.corrupt_blobs.append(path)
            if repair:
                _quarantine(root, path, report)
    return report


def recover_store(
    root: Union[str, Path],
    stale_claim_s: float = STALE_CLAIM_S,
    now: Optional[float] = None,
) -> FsckReport:
    """Fast startup recovery: clear a crashed predecessor's debris.

    Unlike :func:`fsck_store` this runs while *other* campaigns, shard
    workers or serve daemons may legitimately share the store, so it only
    removes what is provably (or by the stale-claim contract, safely)
    abandoned:

    * ``.tmp.*`` files whose staging writer process no longer exists (the
      pid is part of the filename); files with a live or unverifiable
      writer are left alone.
    * ``.lock`` claims older than ``stale_claim_s`` — the same threshold
      the single-flight waiters already apply lazily; clearing them
      eagerly just saves the first writer the wait.

    Blob payloads are not verified: a corrupt entry is evicted and
    recomputed by the read path the moment anything touches it.
    Everything removed is also recorded in the returned report's
    ``stale_tmp`` / ``orphaned_claims`` lists.
    """
    root = Path(root)
    report = FsckReport(root=root)
    if not root.exists():
        return report
    reference = time.time() if now is None else now
    for path in _iter_store_files(root):
        if ".tmp." in path.name:
            if _writer_alive(path) is False:
                report.stale_tmp.append(path)
                _remove(path, report)
            continue
        if path.suffix == ".lock":
            try:
                age = reference - path.stat().st_mtime
            except OSError:
                continue  # released between listing and stat
            if age > stale_claim_s:
                report.orphaned_claims.append(path)
                _remove(path, report)
    return report


__all__ = [
    "FsckReport",
    "QUARANTINE_DIR",
    "fsck_store",
    "recover_store",
]
