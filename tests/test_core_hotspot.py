"""Tests for hotspot detection."""

import numpy as np
import pytest

from repro.core import detect_hotspots, hotspot_summary
from repro.thermal import ThermalMap


def _synthetic_map(placement, bumps, base_rise=8.0, ambient=25.0):
    """Build a ThermalMap with Gaussian bumps at given grid locations."""
    ny = nx = 40
    rise = np.full((ny, nx), base_rise)
    ys, xs = np.mgrid[0:ny, 0:nx]
    for (cy, cx, amplitude, sigma) in bumps:
        rise += amplitude * np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2)))
    return ThermalMap(temperatures=rise + ambient, ambient=ambient)


class TestDetection:
    def test_single_bump_detected(self, small_placement):
        thermal_map = _synthetic_map(small_placement, [(10, 30, 4.0, 3.0)])
        hotspots = detect_hotspots(thermal_map, small_placement, threshold_fraction=0.5)
        assert len(hotspots) == 1
        assert hotspots[0].peak_bin == (10, 30)
        assert hotspots[0].num_bins >= 4

    def test_two_bumps_detected_separately(self, small_placement):
        thermal_map = _synthetic_map(
            small_placement, [(8, 8, 4.0, 2.0), (30, 32, 3.5, 2.0)]
        )
        hotspots = detect_hotspots(thermal_map, small_placement, threshold_fraction=0.5)
        assert len(hotspots) == 2
        # Sorted hottest first.
        assert hotspots[0].peak_celsius >= hotspots[1].peak_celsius

    def test_threshold_controls_extent(self, small_placement):
        thermal_map = _synthetic_map(small_placement, [(20, 20, 5.0, 4.0)])
        broad = detect_hotspots(thermal_map, small_placement, threshold_fraction=0.4)
        tight = detect_hotspots(thermal_map, small_placement, threshold_fraction=0.9)
        assert broad[0].num_bins > tight[0].num_bins

    def test_engines_agree_exactly(self, small_placement, small_power):
        """Compiled bincount attribution == reference dict accumulation.

        Same hotspots, same cell counts, bitwise-equal unit powers and —
        critically — identical dominant_units ordering, including the
        first-seen tie-break the dict accumulation implies.
        """
        thermal_map = _synthetic_map(
            small_placement, [(8, 8, 4.0, 2.5), (30, 32, 3.5, 2.5)]
        )
        for power in (small_power, None):
            compiled = detect_hotspots(
                thermal_map, small_placement, power=power,
                threshold_fraction=0.5, engine="compiled",
            )
            reference = detect_hotspots(
                thermal_map, small_placement, power=power,
                threshold_fraction=0.5, engine="reference",
            )
            assert len(compiled) == len(reference) > 0
            for fast, slow in zip(compiled, reference):
                assert fast.bins == slow.bins
                assert fast.rect == slow.rect
                assert fast.num_cells == slow.num_cells
                assert fast.dominant_units == slow.dominant_units
                assert fast.power_w == pytest.approx(slow.power_w, rel=1e-12)

    def test_max_hotspots_limits_count(self, small_placement):
        thermal_map = _synthetic_map(
            small_placement,
            [(6, 6, 4.0, 1.5), (6, 34, 3.9, 1.5), (34, 6, 3.8, 1.5), (34, 34, 3.7, 1.5)],
        )
        hotspots = detect_hotspots(
            thermal_map, small_placement, threshold_fraction=0.5, max_hotspots=2
        )
        assert len(hotspots) == 2

    def test_flat_map_has_no_hotspots(self, small_placement):
        thermal_map = _synthetic_map(small_placement, [])
        assert detect_hotspots(thermal_map, small_placement) == []

    def test_invalid_threshold_rejected(self, small_placement, small_thermal):
        with pytest.raises(ValueError):
            detect_hotspots(small_thermal, small_placement, threshold_fraction=0.0)
        with pytest.raises(ValueError):
            detect_hotspots(small_thermal, small_placement, threshold_fraction=1.5)

    def test_rect_clipped_to_core(self, small_placement):
        thermal_map = _synthetic_map(small_placement, [(0, 0, 5.0, 3.0)])
        hotspots = detect_hotspots(thermal_map, small_placement, threshold_fraction=0.5)
        core = small_placement.floorplan.core_rect
        rect = hotspots[0].rect
        assert rect.x0 >= core.x0 - 1e-9
        assert rect.y0 >= core.y0 - 1e-9

    def test_indices_are_consecutive(self, small_placement):
        thermal_map = _synthetic_map(
            small_placement, [(8, 8, 4.0, 2.0), (30, 32, 3.5, 2.0)]
        )
        hotspots = detect_hotspots(thermal_map, small_placement, threshold_fraction=0.5)
        assert [h.index for h in hotspots] == list(range(len(hotspots)))


class TestHotspotAttributes:
    def test_dominant_units_from_power(self, small_placement, small_power, small_thermal):
        hotspots = detect_hotspots(
            small_thermal, small_placement, power=small_power, threshold_fraction=0.5
        )
        assert hotspots, "the benchmark workload must produce at least one hotspot"
        top = hotspots[0]
        assert top.dominant_units
        assert top.power_w > 0.0
        assert top.num_cells > 0

    def test_dominant_units_are_the_active_ones(
        self, small_placement, small_power, small_thermal, small_workload
    ):
        hotspots = detect_hotspots(
            small_thermal, small_placement, power=small_power, threshold_fraction=0.6
        )
        leading_units = {h.dominant_units[0] for h in hotspots if h.dominant_units}
        assert leading_units & set(small_workload.active_units)

    def test_row_span_within_core(self, small_placement, small_thermal, small_power):
        hotspots = detect_hotspots(
            small_thermal, small_placement, power=small_power, threshold_fraction=0.5
        )
        first, last = hotspots[0].row_span(small_placement)
        assert 0 <= first <= last < small_placement.floorplan.num_rows

    def test_peak_xy_inside_die(self, small_placement, small_thermal):
        hotspots = detect_hotspots(small_thermal, small_placement, threshold_fraction=0.5)
        x, y = hotspots[0].peak_xy_um
        floorplan = small_placement.floorplan
        assert -floorplan.die_margin <= x <= floorplan.core_width + floorplan.die_margin
        assert -floorplan.die_margin <= y <= floorplan.core_height + floorplan.die_margin

    def test_summary_rows(self, small_placement, small_thermal):
        hotspots = detect_hotspots(small_thermal, small_placement, threshold_fraction=0.5)
        rows = hotspot_summary(hotspots)
        assert len(rows) == len(hotspots)
        assert rows[0]["peak_celsius"] == pytest.approx(hotspots[0].peak_celsius)
