"""Experiment metrics and plain-text reporting."""

from .metrics import (
    ComparisonMetrics,
    area_overhead,
    compare,
    gradient_reduction,
    temperature_reduction,
    timing_overhead,
    wirelength_overhead,
)
from .report import figure6_report, format_table, percent, table1_report

__all__ = [
    "ComparisonMetrics",
    "area_overhead",
    "compare",
    "gradient_reduction",
    "temperature_reduction",
    "timing_overhead",
    "wirelength_overhead",
    "figure6_report",
    "format_table",
    "percent",
    "table1_report",
]
