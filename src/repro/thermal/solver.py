"""Steady-state solver for the thermal network.

The paper solves the RC network with SPICE; at steady state this is a
single sparse linear solve ``G * T = P``.  :class:`ThermalSolver` wraps the
factorisation (so several power maps can be solved against the same die
geometry, as happens during an area-overhead sweep) and
:func:`simulate_placement` is the one-call convenience path from a placed
design plus a power report to a :class:`~repro.thermal.thermal_map.ThermalMap`
— the "Thermal Simulation" box of the paper's Figure 2.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

import numpy as np
import scipy.sparse.linalg as spla

from ..placement import Placement
from ..power import PowerReport, build_power_map, iter_cell_bins
from ..power.power_map import PowerMap
from .grid import ThermalGrid
from .network import ThermalNetwork
from .package import Package, default_package
from .thermal_map import ThermalMap, map_from_solution

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from ..flow.cache import SolverCache

#: Fill-reducing column permutation used by default.  The conductance matrix
#: is a symmetric 7-point stencil, for which SuperLU's ``MMD_AT_PLUS_A``
#: ordering (with symmetric mode) roughly halves both the factorisation time
#: and the fill-in compared to the generic COLAMD default.
DEFAULT_PERMC_SPEC = "MMD_AT_PLUS_A"


class ThermalSolver:
    """Factorised steady-state solver for one die geometry.

    Args:
        grid: Thermal mesh.
        keep_full_field: Store the full 3-D temperature field on results.
        permc_spec: SuperLU column-permutation strategy.  The default
            exploits the matrix symmetry; pass ``"COLAMD"`` with
            ``symmetric_mode=False`` for SuperLU's generic behaviour.
        symmetric_mode: Enable SuperLU's symmetric mode (valid for this
            matrix, which is symmetric positive definite).
    """

    def __init__(
        self,
        grid: ThermalGrid,
        keep_full_field: bool = False,
        permc_spec: str = DEFAULT_PERMC_SPEC,
        symmetric_mode: bool = True,
    ) -> None:
        self.grid = grid
        self.network = ThermalNetwork(grid)
        self.keep_full_field = keep_full_field
        # Factorise the grid-only matrix (pure 7-point stencil); the lumped
        # package node would add a dense row, so it is eliminated via a
        # Sherman-Morrison rank-1 correction in :meth:`solve`.  In symmetric
        # mode the pivot threshold is dropped to keep SuperLU on the
        # diagonal, as the matrix is a diagonally dominant SPD M-matrix;
        # off-diagonal pivoting would only re-introduce fill the symmetric
        # ordering avoids.
        if symmetric_mode:
            splu_kwargs = dict(
                diag_pivot_thresh=0.0, options=dict(SymmetricMode=True)
            )
        else:
            splu_kwargs = dict(options=dict())
        self._factorized = spla.splu(
            self.network.grid_matrix.tocsc(),
            permc_spec=permc_spec,
            **splu_kwargs,
        )
        # Reused RHS buffer: only the active-layer span is ever written, the
        # rest stays zero, so repeated solves (campaign sweeps, the leakage
        # feedback loop) allocate nothing per point.  Thread-local because a
        # SolverCache hands the same solver instance to every Campaign
        # worker thread that shares a die geometry.
        self._rhs_local = threading.local()
        self._package_solve: np.ndarray | None = None
        if self.network.package_node is not None:
            coupling = self.network.package_coupling
            self._package_solve = self._factorized.solve(coupling)
            self._package_denominator = float(
                self.network.package_diagonal - coupling @ self._package_solve
            )

    def solve(self, power_per_cell: np.ndarray) -> ThermalMap:
        """Solve for a power map of shape ``(ny, nx)`` watts per thermal cell.

        Returns:
            The resulting :class:`ThermalMap`.
        """
        buffer = getattr(self._rhs_local, "rhs", None)
        if buffer is None:
            buffer = self._rhs_local.rhs = np.zeros(self.grid.num_nodes)
        rhs = self.network.fill_grid_rhs(power_per_cell, buffer)
        base = self._factorized.solve(rhs)

        if self._package_solve is None:
            solution = base
        else:
            coupling = self.network.package_coupling
            correction = (coupling @ base) / self._package_denominator
            grid_temps = base + correction * self._package_solve
            package_temp = (coupling @ grid_temps) / self.network.package_diagonal
            solution = np.concatenate([grid_temps, [package_temp]])

        return map_from_solution(
            self.grid,
            solution,
            package_node=self.network.package_node,
            keep_full_field=self.keep_full_field,
        )

    def solve_power_map(self, power_map: PowerMap) -> ThermalMap:
        """Solve for a :class:`~repro.power.power_map.PowerMap`."""
        return self.solve(power_map.power_w)


def grid_for_placement(
    placement: Placement,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
) -> ThermalGrid:
    """Build the thermal grid covering a placement's die outline."""
    pkg = package if package is not None else default_package()
    return ThermalGrid.for_die(
        die_width_um=placement.floorplan.die_width,
        die_height_um=placement.floorplan.die_height,
        package=pkg,
        nx=nx,
        ny=ny,
    )


def simulate_placement(
    placement: Placement,
    power: PowerReport,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
    keep_full_field: bool = False,
    solver: Optional[ThermalSolver] = None,
    cache: "Optional[SolverCache]" = None,
    power_map: Optional[PowerMap] = None,
) -> ThermalMap:
    """Run the full thermal-simulation step on a placed, power-annotated design.

    This is the "Thermal Simulation" box of the paper's flow (Figure 2):
    the placed netlist provides cell positions, the power report provides
    cell-by-cell power, both are binned onto the thermal grid and the
    steady-state RC network is solved.

    Args:
        placement: The placed design.
        power: Per-cell power report.
        package: Thermal stack; defaults to :func:`default_package`.
        nx: Grid cells in x.
        ny: Grid cells in y.
        keep_full_field: Keep the 3-D temperature field on the result.
        solver: Pre-built :class:`ThermalSolver` for this placement's die
            geometry; skips grid construction and factorisation entirely.
        cache: A :class:`repro.flow.cache.SolverCache`; the factorisation is
            fetched from (or inserted into) the cache, so repeated calls on
            the same die geometry — as in an area-overhead sweep — pay the
            LU factorisation only once.  Ignored when ``solver`` is given.
        power_map: Pre-binned power map (must match the grid resolution);
            skips the cell-to-bin accumulation.

    Returns:
        The active-layer :class:`ThermalMap`.
    """
    if solver is None:
        if cache is not None:
            solver = cache.solver_for_placement(
                placement, package=package, nx=nx, ny=ny,
                keep_full_field=keep_full_field,
            )
        else:
            grid = grid_for_placement(placement, package=package, nx=nx, ny=ny)
            solver = ThermalSolver(grid, keep_full_field=keep_full_field)
    if power_map is None:
        power_map = build_power_map(placement, power, nx=nx, ny=ny, over_die=True)
    return solver.solve_power_map(power_map)


def cell_temperature_array(
    placement: Placement,
    thermal_map: ThermalMap,
    nx: int = 40,
    ny: int = 40,
    default: float = 25.0,
) -> np.ndarray:
    """Per-cell temperatures as a vector aligned with the compiled cell order.

    One fancy-indexed lookup into the thermal map using the same binning as
    :func:`~repro.power.power_map.build_power_map`.  Unplaced and filler
    cells (which :func:`cell_temperatures` omits from its dict) carry
    ``default``, matching how
    :meth:`~repro.power.power_model.PowerModel.estimate_with_temperature_map`
    treats missing cells.

    Args:
        placement: The placed design.
        thermal_map: An active-layer thermal map at ``(ny, nx)`` resolution.
        nx: Grid cells in x.
        ny: Grid cells in y.
        default: Temperature assigned to cells without a bin lookup.

    Returns:
        Vector of length ``num_cells`` in Celsius.
    """
    from ..power.power_map import cell_bin_indices

    comp = placement.netlist.compiled()
    iy, ix, placed = cell_bin_indices(placement, nx=nx, ny=ny, over_die=True)
    mask = placed & ~comp.is_filler
    temps = np.full(comp.num_cells, float(default))
    temps[mask] = thermal_map.temperatures[iy[mask], ix[mask]]
    return temps


def cell_temperatures(
    placement: Placement,
    thermal_map: ThermalMap,
    nx: int = 40,
    ny: int = 40,
    engine: Optional[str] = None,
) -> dict:
    """Per-cell temperatures read off a thermal map.

    Each cell is looked up in the grid bin containing its centre, using the
    same binning as :func:`~repro.power.power_map.build_power_map`.

    Args:
        placement: The placed design.
        thermal_map: An active-layer thermal map at ``(ny, nx)`` resolution.
        nx: Grid cells in x.
        ny: Grid cells in y.
        engine: ``"compiled"`` (one fancy-indexed lookup) or ``"reference"``
            (cell-at-a-time); defaults to the process-wide engine.

    Returns:
        Mapping of cell name to its bin temperature in Celsius.
    """
    from ..engine import resolve_engine
    from ..power.power_map import cell_bin_indices

    if resolve_engine(engine) == "reference":
        return {
            cell.name: float(thermal_map.temperatures[iy, ix])
            for cell, iy, ix in iter_cell_bins(placement, nx=nx, ny=ny, over_die=True)
        }
    comp = placement.netlist.compiled()
    iy, ix, placed = cell_bin_indices(placement, nx=nx, ny=ny, over_die=True)
    mask = placed & ~comp.is_filler
    temps = thermal_map.temperatures[iy[mask], ix[mask]]
    names = [name for name, keep in zip(comp.cell_names, mask.tolist()) if keep]
    return dict(zip(names, temps.tolist()))


def simulate_with_leakage_feedback(
    placement: Placement,
    activity,
    power_model,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
    iterations: int = 3,
    cache: "Optional[SolverCache]" = None,
    engine: Optional[str] = None,
) -> ThermalMap:
    """Thermal simulation with leakage/temperature feedback iterations.

    The positive feedback between leakage power and temperature mentioned
    in the paper's introduction: each iteration re-evaluates leakage at the
    per-cell temperatures of the previous thermal solve.  The die geometry
    never changes across iterations, so one factorised solver is reused for
    the whole loop.

    Args:
        placement: The placed design.
        activity: Per-net :class:`~repro.power.activity.SwitchingActivity`.
        power_model: A :class:`~repro.power.power_model.PowerModel`.
        package: Thermal stack.
        nx: Grid cells in x.
        ny: Grid cells in y.
        iterations: Number of power/thermal iterations (>= 1).
        cache: Optional :class:`repro.flow.cache.SolverCache` to share the
            factorisation with other simulations of the same geometry.

    Returns:
        The converged :class:`ThermalMap`.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    netlist = placement.netlist
    if cache is not None:
        solver = cache.solver_for_placement(placement, package=package, nx=nx, ny=ny)
    else:
        solver = ThermalSolver(grid_for_placement(placement, package=package, nx=nx, ny=ny))
    from ..engine import resolve_engine, use_engine

    resolved = resolve_engine(engine)
    # Pin the whole loop (including the binning inside simulate_placement,
    # which has no engine parameter of its own) to the resolved engine, so
    # engine="reference" really is a pure reference run.
    with use_engine(resolved):
        power = power_model.estimate(netlist, activity)
        thermal_map = simulate_placement(
            placement, power, package=package, nx=nx, ny=ny, solver=solver
        )
        for _ in range(iterations - 1):
            if resolved == "reference":
                cell_temps = cell_temperatures(placement, thermal_map, nx=nx, ny=ny)
            else:
                # Array round-trip: the per-cell temperature vector feeds
                # the power model directly, with no name-keyed dict between.
                cell_temps = cell_temperature_array(
                    placement, thermal_map, nx=nx, ny=ny,
                    default=power_model.temperature,
                )
            power = power_model.estimate_with_temperature_map(
                netlist, activity, cell_temps
            )
            thermal_map = simulate_placement(
                placement, power, package=package, nx=nx, ny=ny, solver=solver
            )
    return thermal_map
