#!/usr/bin/env python3
"""Scattered small hotspots: regenerate the paper's Figure 6 series.

The paper's first test set activates four small arithmetic units scattered
over the die and sweeps the area overhead for three whitespace-allocation
schemes: Default (uniform utilization relaxation), ERI (empty row
insertion) and HW (hotspot wrapper).  This example runs that sweep and
prints the reduction-versus-overhead table; with matplotlib installed it is
a one-liner to plot it, but the library deliberately has no plotting
dependency.

Use ``--full`` for the paper-sized benchmark (takes a few minutes) or the
default scaled-down benchmark for a quick look.
"""

from __future__ import annotations

import argparse

from repro.analysis import figure6_report
from repro.bench import (
    build_synthetic_circuit,
    scattered_hotspots_workload,
    small_synthetic_circuit,
)
from repro.flow import ExperimentSetup, sweep_overheads
from repro.placement import place_design


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full ~12k-cell benchmark")
    parser.add_argument("--overheads", type=float, nargs="+",
                        default=[0.08, 0.161, 0.25, 0.322],
                        help="area-overhead sweep points")
    parser.add_argument("--timing", action="store_true",
                        help="also report the timing overhead of every point")
    args = parser.parse_args()

    netlist = build_synthetic_circuit() if args.full else small_synthetic_circuit()

    # Place once so the workload can pick genuinely scattered units, exactly
    # like the benchmark harness does.
    placement = place_design(netlist, utilization=0.85)
    workload = scattered_hotspots_workload(netlist, regions=placement.regions)
    print(workload.describe())

    setup = ExperimentSetup.prepare(netlist, workload, base_utilization=0.85)
    print(f"baseline peak rise: {setup.thermal_map.peak_rise:.2f} K "
          f"(gradient {setup.thermal_map.gradient:.2f} K), "
          f"{len(setup.hotspots)} hotspots\n")

    outcomes = sweep_overheads(
        setup,
        overheads=args.overheads,
        strategies=("default", "eri", "hw"),
        analyze_timing=args.timing,
    )
    print(figure6_report(outcomes))

    # Point out the paper's headline observation on the data just produced.
    reference = min(args.overheads, key=lambda o: abs(o - 0.161))
    by_strategy = {
        (o.strategy, o.requested_overhead): o.temperature_reduction for o in outcomes
    }
    default = by_strategy[("default", reference)]
    eri = by_strategy[("eri", reference)]
    hw = by_strategy[("hw", reference)]
    print(f"\nat ~{reference * 100:.1f}% overhead: Default {default * 100:.1f}%, "
          f"ERI {eri * 100:.1f}%, HW {hw * 100:.1f}% peak-rise reduction")
    if eri > default and hw > default:
        print("-> both hotspot-targeted schemes beat blind spreading, "
              "as in the paper's Figure 6.")
    else:
        print("-> on the scaled-down benchmark the schemes are nearly tied; "
              "run with --full (or `pytest benchmarks/test_fig6_efficiency.py`) "
              "to see the paper-sized separation.")


if __name__ == "__main__":
    main()
