"""Typed flow artifacts, content digests and the content-addressed store.

The staged flow graph (:mod:`repro.flow.graph`) re-runs a stage only when
the content hash of its inputs changed.  This module supplies the three
ingredients:

* **Content digests** — deterministic hashes of the domain objects a stage
  consumes (netlists, placements, power reports, power maps, thermal maps,
  workloads, packages).  Digests hash *content*, never object identity:
  a :meth:`~repro.netlist.netlist.Netlist.copy` or a canonical-spec
  re-parse produces the same digest, while any mutation through a netlist
  mutator, a cell move, a strategy-parameter change or a solver-method
  change produces a new one.  Netlist and placement digests are memoised
  against the :class:`~repro.netlist.netlist.Netlist` structural version
  counter and the process-wide
  :attr:`~repro.netlist.cell.CellInstance.placement_epoch`, so unchanged
  objects are hashed once, not once per stage.

* **Artifact dataclasses** — the frozen, typed value each stage produces
  (:class:`PlacementArtifact`, :class:`PowerArtifact`,
  :class:`WhitespaceArtifact`, :class:`LegalizedArtifact`,
  :class:`ThermalArtifact`, :class:`StaArtifact`), each carrying the stage
  input ``key`` it was computed for.

* **:class:`ArtifactStore`** — a thread-safe content-addressed store with
  an in-memory LRU tier and an optional on-disk tier.  Disk entries embed
  a SHA-256 of their payload; a truncated or corrupted entry fails the
  check, is evicted, and the stage recomputes — a stale or damaged
  artifact is never deserialized blindly.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..faults import inject
from ..netlist import Netlist
from ..placement import Placement
from ..power.power_map import PowerMap
from ..power.power_model import PowerReport
from ..thermal import Package, ThermalGrid, ThermalMap
from ..timing import TimingReport
from .cache import package_fingerprint

#: Bump when a digest encoding or stage semantics change incompatibly, so
#: on-disk stores written by older code can never satisfy new lookups.
FLOW_KEY_VERSION = 1


# ---------------------------------------------------------------------------
# Canonical hashing
# ---------------------------------------------------------------------------


def _new_hasher():
    """The digest primitive: BLAKE2b/128 — fast, stable across processes."""
    return hashlib.blake2b(digest_size=16)


def _feed(hasher, value) -> None:
    """Feed one value into ``hasher`` with an unambiguous type-tagged encoding.

    Floats are encoded as raw IEEE-754 bytes so two values hash equal
    exactly when they are bitwise equal — the same strictness the golden
    equivalence suite demands of the flow outputs.
    """
    if value is None:
        hasher.update(b"N")
    elif isinstance(value, bool):
        hasher.update(b"B1" if value else b"B0")
    elif isinstance(value, int):
        data = value.to_bytes((value.bit_length() + 8) // 8 + 1, "little", signed=True)
        hasher.update(b"I" + len(data).to_bytes(4, "little") + data)
    elif isinstance(value, float):
        hasher.update(b"F" + struct.pack("<d", value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        hasher.update(b"S" + len(data).to_bytes(4, "little") + data)
    elif isinstance(value, bytes):
        hasher.update(b"Y" + len(value).to_bytes(4, "little") + value)
    elif isinstance(value, np.ndarray):
        contiguous = np.ascontiguousarray(value)
        hasher.update(b"A")
        _feed(hasher, str(contiguous.dtype))
        _feed(hasher, contiguous.shape and tuple(int(n) for n in contiguous.shape))
        hasher.update(contiguous.tobytes())
    elif isinstance(value, (tuple, list)):
        hasher.update(b"T" + len(value).to_bytes(4, "little"))
        for item in value:
            _feed(hasher, item)
    elif isinstance(value, dict):
        hasher.update(b"D" + len(value).to_bytes(4, "little"))
        for key in sorted(value, key=repr):
            _feed(hasher, key)
            _feed(hasher, value[key])
    elif isinstance(value, (np.integer,)):
        _feed(hasher, int(value))
    elif isinstance(value, (np.floating,)):
        _feed(hasher, float(value))
    else:
        raise TypeError(f"cannot hash {type(value).__name__} into a flow key")


def hash_parts(*parts) -> str:
    """Digest of a sequence of primitive values (see :func:`_feed`)."""
    hasher = _new_hasher()
    for part in parts:
        _feed(hasher, part)
    return hasher.hexdigest()


def array_digest(array: np.ndarray) -> str:
    """Content digest of one array (dtype + shape + raw bytes)."""
    return hash_parts(np.asarray(array))


# ---------------------------------------------------------------------------
# Domain-object digests
# ---------------------------------------------------------------------------


def netlist_digest(netlist: Netlist) -> str:
    """Structural content digest of a netlist (placement-independent).

    Covers cells (in insertion order — iteration order is observable
    through the placer), masters, units, connectivity with sink order, and
    ports.  Memoised against the netlist's structural version counter, so
    repeated stage-key computations on an unchanged design hash once.
    """
    version = netlist._version
    memo = getattr(netlist, "_content_digest_memo", None)
    if memo is not None and memo[0] == version:
        return memo[1]
    hasher = _new_hasher()
    _feed(hasher, ("netlist", netlist.name))
    for cell in netlist.cells.values():
        _feed(hasher, (cell.name, cell.master.name, cell.unit, cell.fixed))
    for port in netlist.ports.values():
        _feed(hasher, (port.name, port.direction))
    for net in netlist.nets.values():
        _feed(hasher, net.name)
        _feed(hasher, net.driver_pin.full_name if net.driver_pin is not None else None)
        _feed(hasher, net.driver_port.name if net.driver_port is not None else None)
        # Sink order is content: it shapes compiled gather order and the
        # floating-point association of every downstream reduction.
        _feed(hasher, [pin.full_name for pin in net.sink_pins])
        _feed(hasher, [p.name for p in net.sink_ports])
    digest = hasher.hexdigest()
    netlist._content_digest_memo = (version, digest)
    return digest


def placement_digest(placement: Placement) -> str:
    """Content digest of a placed design: structure + geometry + coordinates.

    Memoised against ``(netlist version, placement epoch)``; the epoch is
    process-wide, so *any* cell move anywhere invalidates the memo — a
    conservative over-invalidation that costs a re-hash, never a stale key.
    """
    from ..netlist.cell import CellInstance

    netlist = placement.netlist
    state = (netlist._version, CellInstance.placement_epoch)
    memo = getattr(placement, "_content_digest_memo", None)
    if memo is not None and memo[0] == state:
        return memo[1]
    floorplan = placement.floorplan
    hasher = _new_hasher()
    _feed(hasher, ("placement", netlist_digest(netlist)))
    _feed(hasher, (
        floorplan.core_width, floorplan.core_height, floorplan.row_height,
        floorplan.site_width, floorplan.die_margin,
    ))
    for cell in netlist.cells.values():
        _feed(hasher, (cell.x, cell.y, cell.row))
    for port in netlist.ports.values():
        _feed(hasher, (port.x, port.y))
    for unit in sorted(placement.regions):
        rect = placement.regions[unit]
        _feed(hasher, (unit, rect.x0, rect.y0, rect.x1, rect.y1))
    digest = hasher.hexdigest()
    placement._content_digest_memo = (state, digest)
    return digest


def power_digest(power: PowerReport) -> str:
    """Content digest of a per-cell power report.

    Hashes the per-cell component breakdown (switching, internal, leakage)
    plus the model's frequency and temperature, in cell order.  Memoised on
    the report instance — reports are immutable once built.
    """
    memo = getattr(power, "_content_digest_memo", None)
    if memo is not None:
        return memo
    hasher = _new_hasher()
    _feed(hasher, ("power", power.frequency_hz, power.temperature))
    names = power.cell_names
    switching = getattr(power, "_switching", None)
    if names is not None and switching is not None:
        _feed(hasher, list(names))
        _feed(hasher, switching)
        _feed(hasher, power._internal)
        _feed(hasher, power._leakage)
    else:
        for name, cell_power in power.cell_powers.items():
            _feed(hasher, (
                name, cell_power.switching, cell_power.internal, cell_power.leakage,
            ))
    digest = hasher.hexdigest()
    power._content_digest_memo = digest
    return digest


def power_map_digest(power_map: PowerMap) -> str:
    """Content digest of a binned power map (values + bin geometry)."""
    return hash_parts(
        "power_map",
        power_map.power_w,
        power_map.bin_width_um,
        power_map.bin_height_um,
        tuple(power_map.origin_um),
    )


def thermal_map_digest(thermal_map: ThermalMap) -> str:
    """Content digest of a solved thermal map (field + warm-start vector)."""
    return hash_parts(
        "thermal_map",
        thermal_map.temperatures,
        thermal_map.ambient,
        thermal_map.package_temperature,
        thermal_map.grid_rises if thermal_map.grid_rises is not None else None,
    )


def package_digest(package: Package) -> str:
    """Content digest of a thermal package stack."""
    return hash_parts("package", repr(package_fingerprint(package)))


def grid_digest(grid: ThermalGrid) -> str:
    """Content digest of a thermal-mesh geometry (including its package)."""
    return hash_parts(
        "grid", grid.width_um, grid.height_um, grid.nx, grid.ny,
        repr(package_fingerprint(grid.package)),
    )


def workload_digest(workload, netlist: Netlist) -> str:
    """Content digest of a workload *as applied to* a netlist.

    The flow consumes a workload only through its per-port toggle
    probabilities, so that resolved mapping — not the workload's own
    attribute soup — is the content.
    """
    return hash_parts(
        "workload",
        workload.name,
        workload.port_toggle_probabilities(netlist),
    )


# ---------------------------------------------------------------------------
# Stage artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlacementArtifact:
    """``synth`` output: the design placed at the baseline utilization."""

    key: str
    placement: Placement


@dataclass(frozen=True)
class PowerArtifact:
    """``power`` output: the cell-by-cell power report."""

    key: str
    power: PowerReport


@dataclass(frozen=True)
class WhitespaceArtifact:
    """``whitespace`` output: the strategy-transformed placement.

    Carries exactly the fields downstream stages and the outcome
    extraction read (the strategy-specific ``details`` object and detected
    hotspots of :class:`~repro.core.area_manager.AreaManagementResult` are
    deliberately dropped: they are unused downstream and would drag
    arbitrary strategy internals into the serialized store).
    """

    key: str
    placement: Placement
    strategy_spec: str
    requested_overhead: float
    actual_overhead: float
    inserted_rows: int
    num_fillers: int


@dataclass(frozen=True)
class LegalizedArtifact:
    """``legalize`` output: the physical database ready for the solve —
    the transformed placement's power binned onto the thermal grid, plus
    the grid covering its die outline."""

    key: str
    power_map: PowerMap
    grid: ThermalGrid


@dataclass(frozen=True)
class ThermalArtifact:
    """``thermal`` output: the solved temperature field."""

    key: str
    thermal_map: ThermalMap
    method: str


@dataclass(frozen=True)
class StaArtifact:
    """``sta`` output: the timing report at the solved temperature."""

    key: str
    timing: TimingReport


# ---------------------------------------------------------------------------
# Content-addressed store
# ---------------------------------------------------------------------------

#: On-disk entry header magic; the version participates so format changes
#: invalidate old entries instead of misparsing them.
_MAGIC = b"repro-artifact/1\n"


class BlobIntegrityError(Exception):
    """An on-disk entry exists but its payload failed verification.

    Raised by :func:`read_blob` for truncated, bit-flipped or otherwise
    damaged entries — anything whose SHA-256 does not match its header, or
    that matches but does not deserialize.  Callers evict and recompute.
    """


def write_blob(path: Path, obj) -> None:
    """Atomically publish ``obj`` to ``path`` as a verified pickle blob.

    The entry is ``magic + sha256(payload) + payload``, written to a
    process/thread-unique temp file and :func:`os.replace`d into place — a
    concurrent reader sees the old entry or the new one, never a
    half-written file.  Both :class:`ArtifactStore` and
    :class:`~repro.flow.store.ResultStore` persist entries this way.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    blob = _MAGIC + hashlib.sha256(payload).hexdigest().encode("ascii") + b"\n" + payload
    tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
    tmp.write_bytes(blob)
    # Crash seam: an injected ``kind="exit"`` here simulates a kill -9
    # between staging and publication — the ``.tmp.*`` debris left behind
    # is what ``repro fsck`` audits and repairs.
    inject("store.publish", {"path": path.name})
    os.replace(tmp, path)


def read_blob(path: Path):
    """Read and verify a blob written by :func:`write_blob`.

    Returns:
        The deserialized object.

    Raises:
        OSError: The entry does not exist (or cannot be read).
        BlobIntegrityError: The entry exists but fails the integrity check
            or does not unpickle.
    """
    blob = path.read_bytes()
    if not blob.startswith(_MAGIC):
        raise BlobIntegrityError(f"{path}: bad magic")
    header_end = len(_MAGIC) + 64 + 1
    expected = blob[len(_MAGIC):header_end - 1].decode("ascii", "replace")
    payload = blob[header_end:]
    if hashlib.sha256(payload).hexdigest() != expected:
        raise BlobIntegrityError(f"{path}: payload digest mismatch")
    try:
        return pickle.loads(payload)
    except Exception as error:
        # A payload that hashes correctly but does not deserialize (e.g.
        # written by an incompatible code version despite the magic) is
        # treated exactly like corruption.
        raise BlobIntegrityError(f"{path}: payload does not deserialize") from error


@dataclass(frozen=True)
class StoreStats:
    """Artifact-store counters at one point in time.

    Attributes:
        hits: Lookups answered from the store (memory or disk).
        misses: Lookups that found nothing usable.
        disk_hits: Subset of ``hits`` that were read (and verified) from disk.
        writes: Artifacts inserted.
        corrupt_evictions: On-disk entries evicted because their payload
            failed the integrity check or did not deserialize.
        memory_size: Entries currently held in memory.
    """

    hits: int
    misses: int
    disk_hits: int
    writes: int
    corrupt_evictions: int
    memory_size: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON metadata."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "writes": self.writes,
            "corrupt_evictions": self.corrupt_evictions,
            "memory_size": self.memory_size,
            "hit_rate": self.hit_rate,
        }


class ArtifactStore:
    """Thread-safe content-addressed artifact store (memory + optional disk).

    Entries are addressed by ``(stage, key)`` where ``key`` is the stage's
    input content hash; the store never interprets keys.  The in-memory
    tier is an LRU bounded by ``maxsize``; when ``root`` is given, every
    insert is also persisted to ``<root>/<stage>/<key>.art`` so later
    processes resume sweeps incrementally.

    Disk entries are ``magic + sha256(payload) + payload``; a read verifies
    the digest before unpickling.  Truncated, bit-flipped or garbage
    entries fail the check, are deleted, and the lookup reports a miss —
    the stage recomputes instead of deserializing a damaged artifact.

    Args:
        root: Directory of the on-disk tier; ``None`` keeps the store
            memory-only.
        maxsize: In-memory LRU bound (``None`` = unbounded).
    """

    def __init__(
        self, root: Optional[Union[str, Path]] = None, maxsize: Optional[int] = None
    ) -> None:
        if maxsize is not None and maxsize < 0:
            raise ValueError("maxsize must be None or >= 0")
        self.root = Path(root) if root is not None else None
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._memory: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._writes = 0
        self._corrupt_evictions = 0

    # -- lookup --------------------------------------------------------------

    def _path(self, stage: str, key: str) -> Path:
        assert self.root is not None
        return self.root / stage / f"{key}.art"

    def get(self, stage: str, key: str):
        """The stored artifact for ``(stage, key)``, or ``None`` on a miss."""
        entry = (stage, key)
        with self._lock:
            cached = self._memory.get(entry)
            if cached is not None:
                self._hits += 1
                self._memory.move_to_end(entry)
                return cached
        if self.root is not None:
            artifact = self._read_disk(stage, key)
            if artifact is not None:
                with self._lock:
                    self._hits += 1
                    self._disk_hits += 1
                    self._insert_memory(entry, artifact)
                return artifact
        with self._lock:
            self._misses += 1
        return None

    def put(self, stage: str, key: str, artifact) -> None:
        """Insert an artifact (memory, and disk when configured)."""
        entry = (stage, key)
        with self._lock:
            self._writes += 1
            self._insert_memory(entry, artifact)
        if self.root is not None:
            self._write_disk(stage, key, artifact)

    def _insert_memory(self, entry: Tuple[str, str], artifact) -> None:
        """Insert under the held lock, enforcing the LRU bound."""
        if self.maxsize == 0:
            return
        self._memory[entry] = artifact
        self._memory.move_to_end(entry)
        while self.maxsize is not None and len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    # -- disk tier -----------------------------------------------------------

    def _write_disk(self, stage: str, key: str, artifact) -> None:
        write_blob(self._path(stage, key), artifact)

    def _read_disk(self, stage: str, key: str):
        path = self._path(stage, key)
        try:
            return read_blob(path)
        except OSError:
            return None
        except BlobIntegrityError:
            self._evict_corrupt(path)
            return None

    def _evict_corrupt(self, path: Path) -> None:
        with self._lock:
            self._corrupt_evictions += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- bookkeeping ---------------------------------------------------------

    def stats(self) -> StoreStats:
        """Snapshot of the store counters."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=self._disk_hits,
                writes=self._writes,
                corrupt_evictions=self._corrupt_evictions,
                memory_size=len(self._memory),
            )

    def clear_memory(self) -> None:
        """Drop the in-memory tier (disk entries and counters are kept).

        A cleared store followed by re-lookups exercises the disk tier —
        which is exactly what the corruption tests do.
        """
        with self._lock:
            self._memory.clear()

    def shrink(self, max_entries: int) -> int:
        """Evict least-recently-used entries until at most ``max_entries``.

        The LRU shrink hook for the service tier's resource governor:
        under memory pressure it trims the memory tier in place without
        touching the disk tier or ``maxsize`` (set ``maxsize`` separately
        to stop re-growth).  Returns the number of entries evicted.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        evicted = 0
        with self._lock:
            while len(self._memory) > max_entries:
                self._memory.popitem(last=False)
                evicted += 1
        return evicted

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def __contains__(self, entry: Tuple[str, str]) -> bool:
        with self._lock:
            return entry in self._memory


__all__ = [
    "FLOW_KEY_VERSION",
    "hash_parts",
    "array_digest",
    "netlist_digest",
    "placement_digest",
    "power_digest",
    "power_map_digest",
    "thermal_map_digest",
    "package_digest",
    "grid_digest",
    "workload_digest",
    "PlacementArtifact",
    "PowerArtifact",
    "WhitespaceArtifact",
    "LegalizedArtifact",
    "ThermalArtifact",
    "StaArtifact",
    "ArtifactStore",
    "StoreStats",
    "BlobIntegrityError",
    "write_blob",
    "read_blob",
]
