"""Geometric multigrid solver for the thermal conductance system.

The steady-state network of :mod:`repro.thermal.network` is, once the
lumped package node has been eliminated by the solver's rank-1 Schur
complement, a symmetric positive-definite 7-point stencil over the
structured ``nz x ny x nx`` mesh: per-layer constant lateral conductances,
per-interface constant vertical conductances, and a spatially varying
diagonal (boundary convection, package coupling).  A sparse direct
factorisation ignores all of that structure and pays O(N^1.5)-ish fill-in;
this module exploits it and solves the system in O(N):

* **Smoothing** is red-black Gauss-Seidel over the x-y checkerboard with
  *z-line* blocks: every grid column of one colour is relaxed exactly by a
  batched Thomas (tridiagonal) solve along z, as whole-array NumPy updates.
  Line relaxation in z is what makes the method robust here — the thermal
  stack is strongly anisotropic (vertical conductances are two to three
  orders of magnitude larger than lateral ones, since layers are microns
  thick while thermal cells are tens of microns wide), and a point-wise
  smoother would stall on error modes that are smooth in z.  Every level
  stores its fields in red-black order (one colour's columns first), so
  each half-sweep reads and writes contiguous slices and the lateral
  neighbour coupling is one C-speed sparse multi-vector product.
* **Coarsening** is 2x semi-coarsening in x and y only (z stays at the
  package's layer count, which is small and strongly coupled).  Coarse
  operators are *rediscretized*: each level assembles the real
  :class:`~repro.thermal.network.ThermalNetwork` of the same die and
  package at the coarser lateral resolution, so boundary and package
  physics are represented exactly on every level.
* **Transfers** are cell-centred bilinear interpolation for prolongation
  and its exact adjoint (full weighting) for restriction; restriction of a
  residual sums the unabsorbed watts of the fine cells into the coarse
  cells, which is what makes the rediscretized coarse problems consistent.
  Non-power-of-two grids are handled by ``ceil(n / 2)`` coarsening with
  boundary lumping.
* **Outer iteration** is conjugate gradients preconditioned by one
  symmetric V-cycle (pre-smoothing red->black, post-smoothing black->red,
  restriction the exact transpose of prolongation, so the preconditioner
  is symmetric positive definite).  CG both guarantees convergence to any
  requested tolerance and converts a warm start — the previous temperature
  field of a leakage-feedback or sweep re-solve — into a handful of
  cycles, something a direct factorisation cannot exploit at all.

All smoother, residual and transfer arrays carry a trailing *lane* axis,
so a stack of power maps sharing one die geometry (a campaign batch) is
solved simultaneously: per-lane step sizes and per-lane tolerances keep
every lane's iterates identical to a one-lane solve, and converged lanes
are frozen in place.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..deadlines import check_active
from .grid import ThermalGrid
from .network import ThermalNetwork

#: Stop coarsening once a level has at most this many lateral cells; the
#: coarsest level is solved directly (one tiny sparse factorisation).
COARSEST_LATERAL_CELLS = 128

#: Default relative-residual tolerance of the outer PCG iteration.  Chosen
#: so multigrid temperatures agree with the direct LU path to well below
#: 1e-8 relative even on poorly scaled geometries (the observed forward
#: error sits one to two decades below the residual tolerance).
DEFAULT_TOLERANCE = 1e-9

#: Default iteration cap; a V(1,1)-preconditioned CG converges in ~10
#: cycles cold, so hitting this means the problem is pathological.
DEFAULT_MAX_ITERATIONS = 200


class MultigridConvergenceError(RuntimeError):
    """The outer PCG missed its tolerance within the iteration cap.

    Only raised when :meth:`MultigridSolver.solve` is called with
    ``raise_on_stall=True``; the default behaviour stays a
    :class:`RuntimeWarning` with the half-converged answer returned.
    """


@dataclass
class _Color:
    """Precomputed smoother state of one checkerboard colour.

    The level's spatial axis is permuted so this colour's columns occupy
    ``[start, stop)`` — each half-sweep works on contiguous slices.
    """

    start: int
    stop: int
    lateral: sp.csr_matrix  # (nz * nc, nz * n_sp) lateral-neighbour couplings
    w: np.ndarray           # (nz, nc, 1) Thomas elimination multipliers
    dt: np.ndarray          # (nz, nc, 1) Thomas modified diagonals


@dataclass
class _Level:
    """One multigrid level, stored in red-black spatial order."""

    grid: ThermalGrid
    nz: int
    ny: int
    nx: int
    n_sp: int                      # lateral cells per layer (ny * nx)
    gv: np.ndarray                 # (nz - 1,) vertical conductance per interface
    perm: np.ndarray               # natural -> red-black spatial order
    matrix: sp.csr_matrix          # grid conductance matrix, permuted
    colors: Tuple[_Color, _Color] = field(default=None)  # type: ignore[assignment]
    prolong_2d: Optional[sp.csr_matrix] = None   # permuted fine x coarse
    restrict_2d: Optional[sp.csr_matrix] = None  # exact transpose of prolong
    n_sp_coarse: int = 0
    coarse_lu: Optional[spla.SuperLU] = None     # coarsest level only


def _layer_coefficients(grid: ThermalGrid) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-layer lateral and per-interface vertical stencil conductances.

    Mirrors the expressions of :meth:`ThermalNetwork._assemble` exactly, so
    the smoother's couplings reproduce the assembled matrix's off-diagonals.
    """
    nz = grid.nz
    dx, dy = grid.dx_m, grid.dy_m
    area = grid.cell_area_m2
    gx = np.empty(nz)
    gy = np.empty(nz)
    gv = np.empty(max(nz - 1, 0))
    for layer in range(nz):
        k = grid.conductivity(layer)
        dz = grid.dz_m(layer)
        gx[layer] = k * (dy * dz) / dx
        gy[layer] = k * (dx * dz) / dy
        if layer + 1 < nz:
            k_below = grid.conductivity(layer + 1)
            dz_below = grid.dz_m(layer + 1)
            resistance = dz / (2.0 * k * area) + dz_below / (2.0 * k_below * area)
            gv[layer] = 1.0 / resistance
    return gx, gy, gv


def _full_permutation(perm: np.ndarray, nz: int) -> np.ndarray:
    """Expand a spatial permutation to all ``nz`` layers (layer-major)."""
    n_sp = perm.size
    return (np.arange(nz)[:, None] * n_sp + perm[None, :]).ravel()


def _red_black_split(nx: int, ny: int) -> Tuple[np.ndarray, np.ndarray]:
    """Natural spatial indices of the two checkerboard colours (red first).

    The single source of the red-black ordering: levels, transfers and the
    outer solve all permute through ``concatenate(red, black)`` of this
    split, so every layer of the hierarchy agrees on it.
    """
    flat = np.arange(nx * ny)
    iy, ix = np.divmod(flat, nx)
    color_of = (ix + iy) % 2
    return np.nonzero(color_of == 0)[0], np.nonzero(color_of == 1)[0]


def _build_level(grid: ThermalGrid, network: ThermalNetwork) -> _Level:
    """Assemble one level: permuted operator, colours, Thomas factors."""
    gx, gy, gv = _layer_coefficients(grid)
    nx, ny, nz = grid.nx, grid.ny, grid.nz
    n_sp = nx * ny

    iy, ix = np.divmod(np.arange(n_sp), nx)
    red, black = _red_black_split(nx, ny)
    perm = np.concatenate([red, black])
    position = np.empty(n_sp, dtype=np.int64)
    position[perm] = np.arange(n_sp)

    full_perm = _full_permutation(perm, nz)
    full_position = np.empty(full_perm.size, dtype=np.int64)
    full_position[full_perm] = np.arange(full_perm.size)
    coo = network.grid_matrix.tocoo()
    matrix = sp.coo_matrix(
        (coo.data, (full_position[coo.row], full_position[coo.col])),
        shape=coo.shape,
    ).tocsr()
    diag = matrix.diagonal().reshape(nz, n_sp)

    level = _Level(
        grid=grid, nz=nz, ny=ny, nx=nx, n_sp=n_sp, gv=gv,
        perm=perm, matrix=matrix,
    )

    layers = np.arange(nz)
    colors: List[_Color] = []
    start = 0
    for natural_cols in (red, black):
        nc = natural_cols.size
        stop = start + nc
        cx, cy = ix[natural_cols], iy[natural_cols]

        # Lateral couplings of this colour's columns as one sparse matrix
        # (nz * nc rows, one per column and layer) over the permuted field,
        # so the smoother's neighbour gather is a single C-speed
        # multi-vector matvec that amortizes over batched lanes.
        row_parts: List[np.ndarray] = []
        col_parts: List[np.ndarray] = []
        data_parts: List[np.ndarray] = []
        for neighbour, valid, coef in (
            (natural_cols - 1, cx > 0, gx),
            (natural_cols + 1, cx < nx - 1, gx),
            (natural_cols - nx, cy > 0, gy),
            (natural_cols + nx, cy < ny - 1, gy),
        ):
            local = np.nonzero(valid)[0]
            if local.size == 0:
                continue
            targets = position[neighbour[local]]
            row_parts.append((layers[:, None] * nc + local[None, :]).ravel())
            col_parts.append((layers[:, None] * n_sp + targets[None, :]).ravel())
            data_parts.append(np.repeat(coef, local.size))
        lateral = sp.coo_matrix(
            (
                np.concatenate(data_parts),
                (np.concatenate(row_parts), np.concatenate(col_parts)),
            ),
            shape=(nz * nc, nz * n_sp),
        ).tocsr()

        # Thomas factors of the per-column tridiagonal (diag varies per
        # column through the boundary terms; the off-diagonals are the
        # per-interface vertical conductances).  The matrix is an
        # irreducibly diagonally dominant M-matrix, so no pivoting is
        # needed and the factors are computed once per level.
        d = diag[:, start:stop]
        w = np.zeros_like(d)
        dt = np.empty_like(d)
        dt[0] = d[0]
        for layer in range(1, nz):
            w[layer] = -gv[layer - 1] / dt[layer - 1]
            dt[layer] = d[layer] - w[layer] * (-gv[layer - 1])

        colors.append(
            _Color(
                start=start, stop=stop, lateral=lateral,
                w=w[:, :, None], dt=dt[:, :, None],
            )
        )
        start = stop
    level.colors = (colors[0], colors[1])
    return level


def _build_prolongation(nx: int, ny: int, nxc: int, nyc: int) -> sp.csr_matrix:
    """Cell-centred bilinear prolongation ``(ny * nx, nyc * nxc)``.

    Every fine cell interpolates from its containing coarse cell (weight
    3/4 per axis) and the nearest lateral neighbour (weight 1/4 per axis);
    indices are clipped at the boundary, which lumps the outer weight onto
    the edge coarse cell.  Row sums are exactly 1, so the transpose
    (restriction) conserves the total residual power.  Built in natural
    order; the caller permutes both sides into red-black order.
    """
    fi = np.arange(nx)
    fj = np.arange(ny)
    ic0 = np.minimum(fi // 2, nxc - 1)
    jc0 = np.minimum(fj // 2, nyc - 1)
    ic1 = np.clip(ic0 + np.where(fi % 2 == 1, 1, -1), 0, nxc - 1)
    jc1 = np.clip(jc0 + np.where(fj % 2 == 1, 1, -1), 0, nyc - 1)

    jj0, ii0 = np.meshgrid(jc0, ic0, indexing="ij")
    jj1, ii1 = np.meshgrid(jc1, ic1, indexing="ij")
    rows = np.arange(ny * nx)

    row_idx: List[np.ndarray] = []
    col_idx: List[np.ndarray] = []
    data: List[np.ndarray] = []
    for jj, wy in ((jj0, 0.75), (jj1, 0.25)):
        for ii, wx in ((ii0, 0.75), (ii1, 0.25)):
            row_idx.append(rows)
            col_idx.append((jj * nxc + ii).ravel())
            data.append(np.full(ny * nx, wy * wx))
    matrix = sp.coo_matrix(
        (np.concatenate(data), (np.concatenate(row_idx), np.concatenate(col_idx))),
        shape=(ny * nx, nyc * nxc),
    )
    return matrix.tocsr()


class MultigridSolver:
    """V-cycle-preconditioned CG for one die geometry's grid system.

    Solves ``A x = b`` for the grid-only conductance matrix of a
    :class:`~repro.thermal.network.ThermalNetwork` (the package node, when
    present, is eliminated by the caller's rank-1 correction — see
    :class:`~repro.thermal.solver.ThermalSolver`).

    Args:
        grid: The thermal mesh.
        network: Pre-assembled network for ``grid`` (rebuilt when omitted).
        tol: Relative-residual convergence tolerance of the outer CG.
        max_iterations: Outer iteration cap.
    """

    def __init__(
        self,
        grid: ThermalGrid,
        network: Optional[ThermalNetwork] = None,
        tol: float = DEFAULT_TOLERANCE,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
    ) -> None:
        self.grid = grid
        self.tol = float(tol)
        self.max_iterations = int(max_iterations)
        self.num_nodes = grid.num_nodes
        self.levels: List[_Level] = []

        fine_network = network if network is not None else ThermalNetwork(grid)
        level_grid, level_network = grid, fine_network
        while True:
            level = _build_level(level_grid, level_network)
            self.levels.append(level)
            nx, ny = level.nx, level.ny
            if nx * ny <= COARSEST_LATERAL_CELLS or min(nx, ny) < 4:
                break
            coarse_grid = ThermalGrid(
                width_um=level_grid.width_um,
                height_um=level_grid.height_um,
                nx=(nx + 1) // 2,
                ny=(ny + 1) // 2,
                package=level_grid.package,
            )
            transfer = _build_prolongation(nx, ny, coarse_grid.nx, coarse_grid.ny)
            # Permute both sides into the red-black orders of their levels.
            coarse_perm = self._spatial_permutation(coarse_grid.nx, coarse_grid.ny)
            level.prolong_2d = transfer[level.perm][:, coarse_perm].tocsr()
            level.restrict_2d = level.prolong_2d.T.tocsr()
            level.n_sp_coarse = coarse_grid.nx * coarse_grid.ny
            level_grid, level_network = coarse_grid, ThermalNetwork(coarse_grid)

        # Direct solve on the coarsest level (a few hundred nodes).
        coarsest = self.levels[-1]
        coarsest.coarse_lu = spla.splu(
            coarsest.matrix.tocsc(),
            permc_spec="MMD_AT_PLUS_A",
            diag_pivot_thresh=0.0,
            options=dict(SymmetricMode=True),
        )

    @staticmethod
    def _spatial_permutation(nx: int, ny: int) -> np.ndarray:
        """Red-black (red first) spatial ordering for an ``nx x ny`` plane."""
        return np.concatenate(_red_black_split(nx, ny))

    # -- operator -----------------------------------------------------------

    @staticmethod
    def _apply(level: _Level, u: np.ndarray) -> np.ndarray:
        """Operator matvec ``A @ u`` with ``u`` shaped ``(nz * n_sp, k)``.

        One sparse multi-vector product against the level's (permuted)
        conductance matrix — exactly the system the direct backend
        factorises, and C-speed across batched lanes.
        """
        return level.matrix @ u

    # -- smoother -----------------------------------------------------------

    @staticmethod
    def _smooth(
        level: _Level,
        u: np.ndarray,
        b: np.ndarray,
        order: Tuple[int, int],
        from_zero: bool = False,
    ) -> None:
        """One red-black z-line Gauss-Seidel sweep, in place.

        ``u`` and ``b`` are shaped ``(nz, n_sp, k)`` in the level's
        red-black order, so each colour's columns are contiguous slices.
        For each colour, every column is relaxed exactly: the lateral
        neighbour contributions (all of the opposite colour) are folded
        into the right-hand side with one sparse multi-vector product and
        the remaining vertical tridiagonal is solved by a batched Thomas
        recurrence with precomputed factors — whole-array updates, no
        Python loop over cells.  ``from_zero`` marks ``u`` as all-zero on
        entry, which lets the first colour skip its (identically zero)
        lateral product.
        """
        nz, n_sp, k = u.shape
        gv = level.gv
        for index, c in enumerate(order):
            cd = level.colors[c]
            if from_zero and index == 0:
                rhs = b[:, cd.start: cd.stop, :].copy()
            else:
                lat = (cd.lateral @ u.reshape(nz * n_sp, k)).reshape(nz, -1, k)
                rhs = b[:, cd.start: cd.stop, :] + lat
            # Forward elimination then back substitution along z.
            for layer in range(1, nz):
                rhs[layer] -= cd.w[layer] * rhs[layer - 1]
            rhs[nz - 1] /= cd.dt[nz - 1]
            for layer in range(nz - 2, -1, -1):
                rhs[layer] = (rhs[layer] + gv[layer] * rhs[layer + 1]) / cd.dt[layer]
            u[:, cd.start: cd.stop, :] = rhs

    # -- V-cycle ------------------------------------------------------------

    def _vcycle(self, index: int, b: np.ndarray) -> np.ndarray:
        """One symmetric V(1,1) cycle from a zero initial guess.

        ``b`` is shaped ``(nz, n_sp, k)`` in the level's red-black order.
        """
        level = self.levels[index]
        nz, n_sp, k = b.shape
        if level.coarse_lu is not None:
            solution = level.coarse_lu.solve(
                np.ascontiguousarray(b).reshape(nz * n_sp, k)
            )
            return np.ascontiguousarray(solution).reshape(nz, n_sp, k)
        u = np.zeros(b.shape)
        self._smooth(level, u, b, order=(0, 1), from_zero=True)
        flat_u = u.reshape(nz * n_sp, k)
        residual = (
            np.ascontiguousarray(b).reshape(nz * n_sp, k)
            - self._apply(level, flat_u)
        )
        coarse_rhs = self._transfer(level.restrict_2d, residual, nz, level.n_sp_coarse)
        correction = self._vcycle(index + 1, coarse_rhs)
        flat_u += self._transfer(
            level.prolong_2d,
            np.ascontiguousarray(correction).reshape(nz * level.n_sp_coarse, k),
            nz,
            n_sp,
        ).reshape(nz * n_sp, k)
        self._smooth(level, u, b, order=(1, 0))
        return u

    @staticmethod
    def _transfer(
        matrix: sp.csr_matrix, flat: np.ndarray, nz: int, n_out: int
    ) -> np.ndarray:
        """Apply a 2-D transfer matrix (shape ``(n_out, n_in)``) layer-by-
        layer and lane-by-lane.

        ``flat`` is ``(nz * n_in, k)``; the result is ``(nz, n_out, k)``.
        """
        n_in = matrix.shape[1]
        k = flat.shape[1]
        stacked = (
            flat.reshape(nz, n_in, k).transpose(1, 0, 2).reshape(n_in, nz * k)
        )
        out = matrix @ stacked
        return out.reshape(n_out, nz, k).transpose(1, 0, 2)

    # -- outer PCG ----------------------------------------------------------

    @staticmethod
    def _lane_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # einsum keeps the per-lane summation order independent of the
        # number of lanes, so a batched solve reproduces one-lane solves.
        return np.einsum("nk,nk->k", a, b)

    def solve(
        self,
        rhs: np.ndarray,
        x0: Optional[np.ndarray] = None,
        tol: Optional[Union[float, np.ndarray]] = None,
        max_iterations: Optional[int] = None,
        raise_on_stall: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Solve ``A x = rhs`` for one or more right-hand sides.

        Args:
            rhs: Array of shape ``(num_nodes,)`` or ``(num_nodes, k)`` in
                the natural grid-node order.
            x0: Optional warm start of the same shape (a single ``(n,)``
                vector is broadcast across lanes).
            tol: Relative-residual tolerance override — a scalar, or one
                tolerance per lane (lanes freeze independently as each
                reaches its own target).
            max_iterations: Iteration-cap override.
            raise_on_stall: Raise :class:`MultigridConvergenceError` instead
                of warning when any lane misses its tolerance within the
                iteration cap — callers with a fallback path (the
                :class:`~repro.thermal.solver.ThermalSolver` LU chain) use
                this to trade a half-converged answer for an exact one.

        Returns:
            ``(x, iterations)`` where ``x`` matches ``rhs``'s shape and
            ``iterations`` holds the per-lane outer iteration counts.
        """
        tol = self.tol if tol is None else tol
        tol = np.asarray(tol, dtype=float)
        max_iterations = (
            self.max_iterations if max_iterations is None else int(max_iterations)
        )
        single = rhs.ndim == 1
        b = np.asarray(rhs, dtype=float)
        if single:
            b = b[:, None]
        if b.shape[0] != self.num_nodes:
            raise ValueError(
                f"rhs has {b.shape[0]} rows, expected {self.num_nodes}"
            )
        n, k = b.shape
        level = self.levels[0]
        nz, n_sp = level.nz, level.n_sp
        full_perm = _full_permutation(level.perm, nz)
        b = b[full_perm]

        if x0 is not None:
            x0 = np.asarray(x0, dtype=float)
            if x0.ndim == 1:
                x0 = np.repeat(x0[:, None], k, axis=1)
            x = x0[full_perm]
            r = b - self._apply(level, x)
        else:
            x = np.zeros((n, k))
            r = b.copy()

        b_norm = np.sqrt(self._lane_dot(b, b))
        threshold = tol * np.where(b_norm > 0.0, b_norm, 1.0)
        done = b_norm == 0.0
        x[:, done] = 0.0
        r[:, done] = 0.0
        iterations = np.zeros(k, dtype=int)

        rho_prev: Optional[np.ndarray] = None
        p: Optional[np.ndarray] = None
        it = 0
        while True:
            # Cooperative cancellation: one V-cycle is the natural quantum
            # of work here, so a non-converging solve under a deadline
            # scope stops within one cycle instead of spinning to the
            # iteration cap (or, with a pathological cap, forever).
            check_active("solver.multigrid")
            r_norm = np.sqrt(self._lane_dot(r, r))
            newly_done = ~done & (r_norm <= threshold)
            iterations[newly_done] = it
            done |= newly_done
            if done.all() or it >= max_iterations:
                break
            z = self._vcycle(0, r.reshape(nz, n_sp, k)).reshape(n, k)
            rho = self._lane_dot(r, z)
            if p is None:
                p = z
            else:
                safe_prev = np.where(rho_prev != 0.0, rho_prev, 1.0)
                beta = np.where(rho_prev != 0.0, rho / safe_prev, 0.0)
                p = z + beta * p
            q = self._apply(level, p)
            pq = self._lane_dot(p, q)
            safe_pq = np.where(pq != 0.0, pq, 1.0)
            # alpha is zeroed on converged lanes, freezing x and r there so
            # a batched solve reproduces per-lane sequential solves.
            alpha = np.where(~done & (pq != 0.0), rho / safe_pq, 0.0)
            x += alpha * p
            r -= alpha * q
            rho_prev = rho
            it += 1

        if not done.all():
            worst = float(
                (np.sqrt(self._lane_dot(r, r)) / threshold * tol).max()
            )
            message = (
                f"multigrid CG stopped at {max_iterations} iterations with "
                f"relative residual {worst:.2e} (target {float(tol.max()):.2e})"
            )
            if raise_on_stall:
                raise MultigridConvergenceError(message)
            warnings.warn(message, RuntimeWarning, stacklevel=2)
            iterations[~done] = it

        self.last_iterations = int(iterations.max()) if k else 0
        result = np.empty_like(x)
        result[full_perm] = x
        return (result[:, 0] if single else result), iterations

    @property
    def num_levels(self) -> int:
        """Number of levels in the hierarchy (including the coarsest)."""
        return len(self.levels)
