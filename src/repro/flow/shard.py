"""Process-sharded campaign execution over shared-memory baselines.

The thread executor scales until the Python-level work between the
GIL-releasing SciPy kernels saturates one interpreter; past that point the
campaign needs real processes.  The naive way — pickling each point's
:class:`~repro.flow.experiment.ExperimentSetup` into every worker — ships
the full baseline (netlist, placement, power report, temperature fields)
per task.  This module ships it once, and the bulky parts not at all:

* The baseline's numeric payloads — the binned power map, the solved
  temperature field, the warm-start rise vector, the per-cell power
  vectors — are copied into ``multiprocessing.shared_memory`` segments.
  Every worker maps the same physical pages read-only; nothing is pickled
  per task and memory stays O(1) in the worker count.
* The structural skeleton (netlist graph, placement rows, package stack)
  is pickled exactly once per worker at startup, with the array slots
  stripped; workers re-attach the shared segments into the empty slots.
* A task is then five scalars: ``(slot, workload, strategy spec,
  overhead, result key)``.

Workers evaluate points with a private :class:`SolverCache` (factorised
solvers hold SuperLU handles and cannot cross processes) and stream
records back over a result queue; with a disk-rooted
:class:`~repro.flow.store.ResultStore` attached each worker also publishes
every record as it completes, so progress survives even a hard kill of
the parent.  Evaluation is deterministic — identical inputs, identical
NumPy/SciPy operations — so sharded records are bitwise-identical to the
serial and threaded paths, which ``tests/test_shard.py`` asserts.

Workers ignore SIGINT: a Ctrl-C is handled by the parent campaign's
handler (stop dispatching, drain in-flight points, flush, return partial),
never by tearing workers down mid-solve.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_module
import signal
import threading
import time
import traceback
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine import get_engine, use_engine
from .cache import SolverCache
from .store import ResultStore

#: ``(owner attribute, array attribute)`` slots of an ``ExperimentSetup``
#: whose ndarray payloads travel via shared memory instead of the pickled
#: skeleton.  Missing or non-array values (e.g. a dict-backed power report,
#: a ``None`` warm-start vector) simply stay in the skeleton.
_SHARED_SLOTS: Tuple[Tuple[str, str], ...] = (
    ("power_map", "power_w"),
    ("thermal_map", "temperatures"),
    ("thermal_map", "grid_rises"),
    ("thermal_map", "full_field"),
    ("power", "_switching"),
    ("power", "_internal"),
    ("power", "_leakage"),
    ("power", "_total"),
)

#: One stripped array slot: (owner attr, array attr, segment name, shape,
#: dtype string).
_SlotSpec = Tuple[str, str, str, Tuple[int, ...], str]


def pack_setups(setups: Dict[str, object]):
    """Strip the baselines' arrays into shared memory and pickle the rest.

    Returns:
        ``(segments, skeleton, specs)`` — the owned
        :class:`~multiprocessing.shared_memory.SharedMemory` segments (the
        caller must close and unlink them when the run ends), the pickled
        array-free setups dict, and the per-workload slot specs workers
        use to re-attach.  The live setups are restored before returning.
    """
    segments: List[shared_memory.SharedMemory] = []
    specs: Dict[str, List[_SlotSpec]] = {}
    saved: List[Tuple[object, str, object]] = []
    try:
        for workload, setup in setups.items():
            entries: List[_SlotSpec] = []
            for owner_attr, array_attr in _SHARED_SLOTS:
                owner = getattr(setup, owner_attr)
                value = getattr(owner, array_attr, None)
                if not isinstance(value, np.ndarray) or value.size == 0:
                    continue
                array = np.ascontiguousarray(value)
                segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
                segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                entries.append(
                    (owner_attr, array_attr, segment.name, array.shape, array.dtype.str)
                )
                saved.append((owner, array_attr, value))
                setattr(owner, array_attr, None)
            specs[workload] = entries
        skeleton = pickle.dumps(setups, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        raise
    finally:
        for owner, array_attr, value in saved:
            setattr(owner, array_attr, value)
    return segments, skeleton, specs


def attach_setups(skeleton: bytes, specs: Dict[str, List[_SlotSpec]]):
    """Worker-side inverse of :func:`pack_setups`.

    Returns:
        ``(setups, segments)`` — the reconstructed setups dict, whose array
        slots are read-only views over the parent's shared segments, and
        the attached segments (closed by the worker when it exits).
    """
    setups = pickle.loads(skeleton)
    segments: List[shared_memory.SharedMemory] = []
    for workload, entries in specs.items():
        setup = setups[workload]
        for owner_attr, array_attr, name, shape, dtype in entries:
            # Attaching re-registers the name with the (fork- or spawn-
            # inherited, shared) resource tracker; that is idempotent, and
            # the parent's unlink() removes it exactly once — so no
            # explicit unregister here, which would double-remove.
            segment = shared_memory.SharedMemory(name=name)
            segments.append(segment)
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            view.flags.writeable = False
            setattr(getattr(setup, owner_attr), array_attr, view)
    return setups, segments


def _worker_main(skeleton, specs, config, task_queue, result_queue) -> None:
    """One shard worker: attach baselines, evaluate tasks until sentinel."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        setups, segments = attach_setups(skeleton, specs)
    except Exception:
        result_queue.put(("fatal", None, traceback.format_exc()))
        return
    # Deferred so the module (and its workers) never import the runner at
    # the top level — runner imports shard, not the other way round.
    from .runner import CampaignPoint, CampaignRecord
    from .experiment import evaluate_strategy

    store: Optional[ResultStore] = config["store"]
    cache = SolverCache(method=config["method"])
    try:
        with use_engine(config["engine"]):
            while True:
                task = task_queue.get()
                if task is None:
                    break
                slot, workload, strategy, overhead, key = task
                try:
                    start = time.perf_counter()
                    outcome = evaluate_strategy(
                        setups[workload],
                        strategy,
                        overhead,
                        analyze_timing=config["analyze_timing"],
                        cache=cache,
                    )
                    record = CampaignRecord(
                        point=CampaignPoint(
                            workload=workload, strategy=strategy, overhead=overhead
                        ),
                        outcome=outcome,
                        elapsed_s=time.perf_counter() - start,
                    )
                    if store is not None and store.root is not None and key is not None:
                        # Publish from the worker too: completed points are
                        # durable even if the parent is killed outright.
                        store.put(key, record)
                    result_queue.put(("ok", slot, record))
                except Exception:
                    result_queue.put(("error", slot, traceback.format_exc()))
    finally:
        for segment in segments:
            try:
                segment.close()
            except OSError:
                pass


def run_sharded(
    campaign,
    points: Sequence,
    keys: Optional[Sequence[Optional[str]]] = None,
    max_workers: Optional[int] = None,
    stop_event: Optional[threading.Event] = None,
) -> List:
    """Evaluate campaign points across worker processes.

    The parent dispatches point tasks over a bounded window (so a stop
    request takes effect within one window, not after the whole grid has
    been queued) and collects records as workers finish them; slots whose
    points were skipped after a stop request stay ``None``.

    Args:
        campaign: The owning :class:`~repro.flow.runner.Campaign` (supplies
            setups, solver method, timing flag and result store).
        points: The grid points to evaluate (typically the not-yet-stored
            remainder of the grid).
        keys: Optional per-point result-store keys, aligned with
            ``points``; workers publish under these as they finish.
        max_workers: Worker process count (default: one per CPU, at most
            one per point).
        stop_event: Graceful-stop flag shared with the campaign's SIGINT
            handler.

    Returns:
        Records aligned with ``points`` (``None`` for skipped slots).

    Raises:
        RuntimeError: A worker raised while evaluating a point, failed to
            start, or died unexpectedly.
    """
    total = len(points)
    records: List = [None] * total
    if total == 0:
        return records
    if stop_event is None:
        stop_event = threading.Event()
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    max_workers = max(1, min(max_workers, total))

    context = mp.get_context()
    segments, skeleton, specs = pack_setups(campaign.setups)
    task_queue = context.Queue()
    result_queue = context.Queue()
    config = {
        "engine": get_engine(),
        "method": campaign.cache.method,
        "analyze_timing": campaign.analyze_timing,
        "store": campaign.result_store,
    }
    workers = [
        context.Process(
            target=_worker_main,
            args=(skeleton, specs, config, task_queue, result_queue),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        for index in range(max_workers)
    ]
    error: Optional[RuntimeError] = None
    try:
        for worker in workers:
            worker.start()

        next_slot = 0
        in_flight = 0
        live = max_workers
        window = 2 * max_workers
        while True:
            while (
                next_slot < total
                and in_flight < window
                and error is None
                and not stop_event.is_set()
            ):
                point = points[next_slot]
                task_queue.put(
                    (
                        next_slot,
                        point.workload,
                        point.strategy,
                        point.overhead,
                        keys[next_slot] if keys is not None else None,
                    )
                )
                next_slot += 1
                in_flight += 1
            if in_flight == 0:
                break
            try:
                kind, slot, payload = result_queue.get(timeout=1.0)
            except queue_module.Empty:
                if not any(worker.is_alive() for worker in workers):
                    raise RuntimeError(
                        f"all shard workers died with {in_flight} points in flight"
                    ) from None
                continue
            if kind == "ok":
                records[slot] = payload
                in_flight -= 1
            elif kind == "error":
                in_flight -= 1
                if error is None:
                    error = RuntimeError(
                        f"shard worker failed on point {points[slot]}:\n{payload}"
                    )
            else:  # fatal: a worker died before taking any task
                live -= 1
                if error is None:
                    error = RuntimeError(f"shard worker failed to start:\n{payload}")
                if live == 0 and in_flight > 0:
                    raise error
        if error is not None:
            raise error
    finally:
        for _worker in workers:
            try:
                task_queue.put(None)
            except (OSError, ValueError):
                break
        for worker in workers:
            worker.join(timeout=10.0)
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        task_queue.close()
        result_queue.close()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
    return records


__all__ = ["run_sharded", "pack_setups", "attach_setups"]
