"""Thermal-gradient row apportionment.

The Default scheme spreads whitespace uniformly and ERI concentrates it
around detected hotspots; the ``gradient`` strategy sits between the two:
the empty-row budget is apportioned over *all* placement rows
proportionally to the thermal map's row-average temperature rise, so warm
bands receive whitespace in proportion to how warm they are — no hotspot
segmentation involved.  This suits workloads whose heat is banded or
smeared rather than concentrated (a scenario neither paper technique
targets directly).

The apportionment is the largest-remainder method over per-row weights
``(row rise - min rise) ** exponent``: subtracting the lateral minimum
removes the spatially uniform part of the rise (the vertical path through
the package), and the exponent sharpens (``> 1``) or flattens (``< 1``)
the allocation.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..placement import Placement
from ..thermal import ThermalMap


def row_temperature_weights(
    placement: Placement, thermal_map: ThermalMap, exponent: float = 1.0
) -> np.ndarray:
    """Per-placement-row whitespace weights from the thermal map.

    Each placement row is mapped to the thermal-grid row containing its
    centre line; the weight is that grid row's average rise above the
    lateral minimum, raised to ``exponent``.

    Args:
        placement: The placed design (provides row geometry and the
            die-to-grid mapping).
        thermal_map: Solved thermal map of that placement.
        exponent: Sharpening exponent; must be positive.

    Returns:
        An array of shape ``(num_rows,)`` of non-negative weights.  All
        zeros when the map has no lateral variation.
    """
    if exponent <= 0.0:
        raise ValueError(f"exponent must be positive, got {exponent}")
    floorplan = placement.floorplan
    rise = thermal_map.rise_map()
    row_rise = rise.mean(axis=1)  # (ny,) bottom-to-top, like placement rows
    lateral = row_rise - row_rise.min()
    ny = rise.shape[0]
    bin_h = floorplan.die_height / ny

    weights = np.zeros(floorplan.num_rows)
    for row in range(floorplan.num_rows):
        y_center = floorplan.row_y(row) + 0.5 * floorplan.row_height
        iy = int((y_center + floorplan.die_margin) / bin_h)
        iy = min(max(iy, 0), ny - 1)
        weights[row] = lateral[iy]
    if weights.max() > 0.0:
        weights = (weights / weights.max()) ** exponent
    return weights


def plan_gradient_insertion_points(
    placement: Placement,
    thermal_map: ThermalMap,
    num_rows: int,
    exponent: float = 1.0,
) -> List[int]:
    """Apportion ``num_rows`` empty-row insertions by row temperature.

    Largest-remainder apportionment of the budget over the per-row weights
    of :func:`row_temperature_weights`; a row may receive more than one
    empty row when it is much hotter than the rest.  Falls back to a
    uniform every-``k``-th-row spread when the map is laterally flat.

    Args:
        placement: The placement being transformed.
        thermal_map: Thermal map of that placement.
        num_rows: Empty-row budget (``<= 0`` plans nothing).
        exponent: Sharpening exponent for the weights.

    Returns:
        Baseline row indices (possibly with repeats), sorted ascending —
        deterministic for a given placement and map.
    """
    if num_rows <= 0:
        return []
    weights = row_temperature_weights(placement, thermal_map, exponent=exponent)
    total = float(weights.sum())
    num_baseline_rows = placement.floorplan.num_rows

    if total <= 0.0:
        # Laterally flat map: spread the budget evenly over the core.
        stride = max(1, num_baseline_rows // num_rows)
        points = [(i * stride) % num_baseline_rows for i in range(num_rows)]
        return sorted(points)

    quotas = weights * (num_rows / total)
    base = np.floor(quotas).astype(int)
    remainder = int(num_rows - base.sum())
    # Ties broken by larger fractional part, then hotter row, then index —
    # fully deterministic.
    order = sorted(
        range(num_baseline_rows),
        key=lambda r: (-(quotas[r] - base[r]), -weights[r], r),
    )
    counts = base.copy()
    for r in order[:remainder]:
        counts[r] += 1

    points: List[int] = []
    for row, count in enumerate(counts):
        points.extend([row] * int(count))
    return points
