"""Cell-by-cell power estimation.

Substitutes for the Synopsys Power Compiler step of the paper's flow: given
a netlist annotated with switching activity, compute each cell's average
power.  The model is the standard cell-level decomposition used by
commercial tools:

* **switching (net) power** — ``0.5 * Vdd^2 * f * C_load * toggles`` for
  every net the cell drives, where the load is the fanout pin capacitance
  plus a fanout-based wire-load estimate (power is estimated *before* the
  post-placement transformations and, as in the paper, is kept unchanged by
  them);
* **internal power** — a per-transition internal energy from the library;
* **leakage power** — the library leakage, optionally scaled exponentially
  with temperature to model the leakage/temperature feedback loop.

The result is a :class:`PowerReport` mapping every cell instance to a
:class:`CellPower` breakdown; filler cells always have exactly zero power.

Two engines implement the estimation (see :mod:`repro.engine`): the default
``"compiled"`` engine evaluates the whole design as array expressions over
the netlist's compiled vectors, producing an array-backed
:class:`PowerReport` whose per-cell dict is materialised only on demand;
the ``"reference"`` engine is the original cell-by-cell loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Union

import numpy as np

from ..engine import resolve_engine
from ..netlist import CellInstance, Netlist, VDD, WIRE_CAP_PER_UM
from .activity import SwitchingActivity

#: Default clock frequency in hertz (the paper clocks the benchmark at 1 GHz).
DEFAULT_FREQUENCY_HZ = 1.0e9

#: Wire-load model: estimated wire length per fanout pin, in micrometres.
WIRELOAD_UM_PER_FANOUT = 4.0

#: Leakage doubles roughly every this many degrees Celsius.
LEAKAGE_DOUBLING_CELSIUS = 25.0


@dataclass(frozen=True)
class CellPower:
    """Power breakdown of a single cell instance, in watts."""

    switching: float
    internal: float
    leakage: float

    @property
    def dynamic(self) -> float:
        """Switching plus internal power."""
        return self.switching + self.internal

    @property
    def total(self) -> float:
        """Total cell power."""
        return self.switching + self.internal + self.leakage


class PowerReport:
    """Per-cell power for a design.

    Array-backed reports (from the compiled engine) keep per-cell power in
    aligned vectors and materialise the :attr:`cell_powers` dict lazily;
    dict-backed reports (from the reference engine, or hand-built) behave
    exactly as before.

    Attributes:
        cell_powers: Mapping cell instance name -> :class:`CellPower`.
        frequency_hz: Clock frequency used.
        temperature: Temperature (Celsius) the leakage was evaluated at.
    """

    def __init__(
        self,
        cell_powers: Dict[str, CellPower],
        frequency_hz: float,
        temperature: float,
    ) -> None:
        self._cell_powers: Optional[Dict[str, CellPower]] = cell_powers
        self.frequency_hz = frequency_hz
        self.temperature = temperature
        self._names: Optional[List[str]] = None
        self._switching: Optional[np.ndarray] = None
        self._internal: Optional[np.ndarray] = None
        self._leakage: Optional[np.ndarray] = None
        self._total: Optional[np.ndarray] = None
        self._index: Optional[Dict[str, int]] = None

    @classmethod
    def from_arrays(
        cls,
        names: List[str],
        switching: np.ndarray,
        internal: np.ndarray,
        leakage: np.ndarray,
        frequency_hz: float,
        temperature: float,
    ) -> "PowerReport":
        """Build an array-backed report (compiled-engine fast path)."""
        report = cls({}, frequency_hz, temperature)
        report._cell_powers = None
        report._names = names
        report._switching = switching
        report._internal = internal
        report._leakage = leakage
        total = switching + internal + leakage
        # Exposed through total_array / total_for_names without copying;
        # read-only so callers cannot silently corrupt the report.
        total.setflags(write=False)
        report._total = total
        return report

    # ------------------------------------------------------------------

    @property
    def cell_powers(self) -> Dict[str, CellPower]:
        """Mapping cell name -> :class:`CellPower` (materialised lazily)."""
        if self._cell_powers is None:
            self._cell_powers = {
                name: CellPower(s, i, k)
                for name, s, i, k in zip(
                    self._names,
                    self._switching.tolist(),
                    self._internal.tolist(),
                    self._leakage.tolist(),
                )
            }
        return self._cell_powers

    @property
    def cell_names(self) -> Optional[List[str]]:
        """Cell-name alignment of the array backing, or ``None``."""
        return self._names

    @property
    def total_array(self) -> Optional[np.ndarray]:
        """Per-cell total power aligned with :attr:`cell_names`, or ``None``."""
        return self._total

    def power_of(self, cell_name: str) -> float:
        """Total power of ``cell_name`` in watts (0.0 if not reported)."""
        if self._total is not None:
            if self._index is None:
                self._index = {n: i for i, n in enumerate(self._names)}
            idx = self._index.get(cell_name)
            return float(self._total[idx]) if idx is not None else 0.0
        breakdown = self._cell_powers.get(cell_name)
        return breakdown.total if breakdown is not None else 0.0

    def total_for_names(self, names: List[str]) -> np.ndarray:
        """Per-cell total power for an arbitrary cell-name list.

        Fast when ``names`` equals (or extends, e.g. after filler insertion)
        the report's own alignment; falls back to per-name lookup otherwise.
        Unreported cells contribute ``0.0``, matching :meth:`power_of`.
        """
        if self._total is not None:
            own = self._names
            if names is own or names == own:
                return self._total
            if len(names) > len(own) and names[: len(own)] == own:
                padded = np.zeros(len(names))
                padded[: len(own)] = self._total
                return padded
        return np.fromiter(
            (self.power_of(name) for name in names), dtype=float, count=len(names)
        )

    def total(self) -> float:
        """Total design power in watts."""
        if self._total is not None:
            return float(self._total.sum())
        return sum(p.total for p in self._cell_powers.values())

    def total_dynamic(self) -> float:
        """Total dynamic (switching + internal) power in watts."""
        if self._switching is not None:
            return float(self._switching.sum() + self._internal.sum())
        return sum(p.dynamic for p in self._cell_powers.values())

    def total_leakage(self) -> float:
        """Total leakage power in watts."""
        if self._leakage is not None:
            return float(self._leakage.sum())
        return sum(p.leakage for p in self._cell_powers.values())

    def unit_totals(self, netlist: Netlist) -> Dict[str, float]:
        """Total power per logical unit, in watts."""
        totals: Dict[str, float] = {}
        cell_powers = self.cell_powers
        for cell in netlist.cells.values():
            breakdown = cell_powers.get(cell.name)
            if breakdown is None:
                continue
            totals[cell.unit] = totals.get(cell.unit, 0.0) + breakdown.total
        return totals


class PowerModel:
    """Average-power model evaluated from switching activity.

    Args:
        frequency_hz: Clock frequency.
        vdd: Supply voltage in volts.
        wireload_um_per_fanout: Wire-load model coefficient; estimated net
            wire length is this value times the number of fanout pins.
        temperature: Junction temperature in Celsius used for leakage.
        leakage_temperature_scaling: When ``True``, leakage grows
            exponentially with temperature (doubling every
            ``LEAKAGE_DOUBLING_CELSIUS`` degrees above 25 C).
    """

    def __init__(
        self,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
        vdd: float = VDD,
        wireload_um_per_fanout: float = WIRELOAD_UM_PER_FANOUT,
        temperature: float = 25.0,
        leakage_temperature_scaling: bool = True,
    ) -> None:
        if frequency_hz <= 0.0:
            raise ValueError(f"frequency must be positive, got {frequency_hz}")
        self.frequency_hz = frequency_hz
        self.vdd = vdd
        self.wireload_um_per_fanout = wireload_um_per_fanout
        self.temperature = temperature
        self.leakage_temperature_scaling = leakage_temperature_scaling

    # ------------------------------------------------------------------

    def net_load_ff(self, netlist: Netlist, net_name: str) -> float:
        """Estimated load capacitance on a net, in femtofarads.

        The load is the sum of the fanout pins' input capacitance plus a
        fanout-proportional wire-load estimate.
        """
        net = netlist.nets.get(net_name)
        if net is None:
            return 0.0
        pin_cap = sum(pin.cell.master.input_cap_ff for pin in net.sink_pins)
        fanout = max(net.num_sinks, 1)
        wire_cap = WIRE_CAP_PER_UM * self.wireload_um_per_fanout * fanout
        return pin_cap + wire_cap

    def leakage_scale(self, temperature: Optional[float] = None) -> float:
        """Leakage multiplier at ``temperature`` relative to 25 C."""
        if not self.leakage_temperature_scaling:
            return 1.0
        temp = self.temperature if temperature is None else temperature
        return 2.0 ** ((temp - 25.0) / LEAKAGE_DOUBLING_CELSIUS)

    def cell_power(
        self,
        netlist: Netlist,
        cell: CellInstance,
        activity: SwitchingActivity,
        temperature: Optional[float] = None,
    ) -> CellPower:
        """Power breakdown of one cell instance (reference semantics)."""
        if cell.is_filler:
            return CellPower(0.0, 0.0, 0.0)

        switching = 0.0
        internal = 0.0
        for pin in cell.output_pins:
            if pin.net is None:
                continue
            toggles = activity.toggle_rate(pin.net.name)
            load_farad = self.net_load_ff(netlist, pin.net.name) * 1e-15
            switching += 0.5 * self.vdd ** 2 * load_farad * toggles * self.frequency_hz
            internal += cell.master.internal_energy_fj * 1e-15 * toggles * self.frequency_hz

        # Sequential cells are clocked every cycle: add the clock-pin
        # internal energy even when the data does not toggle.
        if cell.is_sequential:
            internal += cell.master.internal_energy_fj * 1e-15 * self.frequency_hz

        leakage = cell.master.leakage_nw * 1e-9 * self.leakage_scale(temperature)
        return CellPower(switching=switching, internal=internal, leakage=leakage)

    # ------------------------------------------------------------------
    # Compiled-engine array evaluation
    # ------------------------------------------------------------------

    def _estimate_arrays(
        self,
        comp,
        activity: SwitchingActivity,
        leak_scale: Union[float, np.ndarray],
        report_temperature: float,
    ) -> PowerReport:
        """Evaluate the power model as array expressions over compiled vectors."""
        toggles = activity.aligned_toggle_rates(comp)
        load_farad = (
            comp.sink_pin_cap_ff
            + WIRE_CAP_PER_UM * self.wireload_um_per_fanout * np.maximum(comp.num_sinks, 1)
        ) * 1e-15

        net_idx = comp.outpin_net
        cell_idx = comp.outpin_cell
        pin_toggles = toggles[net_idx]
        pin_switching = (
            0.5 * self.vdd ** 2 * load_farad[net_idx] * pin_toggles * self.frequency_hz
        )
        pin_internal = (
            comp.internal_energy_fj[cell_idx] * 1e-15 * pin_toggles * self.frequency_hz
        )
        switching = np.bincount(cell_idx, weights=pin_switching, minlength=comp.num_cells)
        internal = np.bincount(cell_idx, weights=pin_internal, minlength=comp.num_cells)
        internal = internal + np.where(
            comp.is_sequential,
            comp.internal_energy_fj * 1e-15 * self.frequency_hz,
            0.0,
        )
        # leakage is always an array: leakage_nw is a vector and leak_scale
        # a scalar or an aligned vector.
        leakage = comp.leakage_nw * 1e-9 * leak_scale
        if comp.is_filler.any():
            # Fillers report exactly zero (reference semantics).  Their
            # switching is already zero — outpin arrays exclude them.
            fillers = comp.is_filler
            internal[fillers] = 0.0
            leakage = np.where(fillers, 0.0, leakage)
        return PowerReport.from_arrays(
            comp.cell_names, switching, internal, leakage,
            self.frequency_hz, report_temperature,
        )

    # ------------------------------------------------------------------

    def estimate(
        self,
        netlist: Netlist,
        activity: SwitchingActivity,
        temperature: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> PowerReport:
        """Estimate power for every cell in the design.

        Args:
            netlist: Annotated design.
            activity: Per-net switching activity.
            temperature: Optional junction temperature (Celsius) for the
                leakage term; defaults to the model's temperature.
            engine: ``"compiled"`` or ``"reference"``; defaults to the
                process-wide engine (see :mod:`repro.engine`).

        Returns:
            A :class:`PowerReport`.
        """
        temp = self.temperature if temperature is None else temperature
        if resolve_engine(engine) == "reference":
            cell_powers = {
                cell.name: self.cell_power(netlist, cell, activity, temperature=temp)
                for cell in netlist.cells.values()
            }
            return PowerReport(cell_powers, self.frequency_hz, temp)
        return self._estimate_arrays(
            netlist.compiled(), activity, self.leakage_scale(temp), temp
        )

    def estimate_with_temperature_map(
        self,
        netlist: Netlist,
        activity: SwitchingActivity,
        cell_temperatures: Union[Mapping[str, float], np.ndarray],
        engine: Optional[str] = None,
    ) -> PowerReport:
        """Estimate power with a per-cell temperature for leakage.

        Used by the optional leakage/temperature feedback iteration: the
        thermal solve provides per-cell temperatures, which raise leakage,
        which feeds back into the next thermal solve.

        Args:
            netlist: Annotated design.
            activity: Per-net switching activity.
            cell_temperatures: Mapping cell name -> temperature in Celsius,
                or (compiled engine only) a per-cell temperature vector
                aligned with the compiled netlist's cell order.

        Returns:
            A :class:`PowerReport` (its ``temperature`` is the mean).
        """
        if resolve_engine(engine) == "reference":
            if isinstance(cell_temperatures, np.ndarray):
                raise TypeError(
                    "the reference engine requires a name -> temperature mapping"
                )
            cell_powers: Dict[str, CellPower] = {}
            temps = []
            for cell in netlist.cells.values():
                temp = cell_temperatures.get(cell.name, self.temperature)
                temps.append(temp)
                cell_powers[cell.name] = self.cell_power(
                    netlist, cell, activity, temperature=temp
                )
            mean_temp = sum(temps) / len(temps) if temps else self.temperature
            return PowerReport(cell_powers, self.frequency_hz, mean_temp)

        comp = netlist.compiled()
        if isinstance(cell_temperatures, np.ndarray):
            if cell_temperatures.shape != (comp.num_cells,):
                raise ValueError(
                    f"temperature vector has shape {cell_temperatures.shape}, "
                    f"expected ({comp.num_cells},)"
                )
            temps = np.asarray(cell_temperatures, dtype=float)
        else:
            temps = np.fromiter(
                (
                    cell_temperatures.get(name, self.temperature)
                    for name in comp.cell_names
                ),
                dtype=float,
                count=comp.num_cells,
            )
        if self.leakage_temperature_scaling:
            leak_scale: Union[float, np.ndarray] = 2.0 ** (
                (temps - 25.0) / LEAKAGE_DOUBLING_CELSIUS
            )
        else:
            leak_scale = 1.0
        mean_temp = float(temps.sum() / temps.size) if temps.size else self.temperature
        return self._estimate_arrays(comp, activity, leak_scale, mean_temp)
