"""Plain-text report formatting for experiment results.

The benchmark harness prints the same rows/series the paper reports
(Figure 6's reduction-versus-overhead series and Table I's concentrated-
hotspot table); these helpers render them as aligned text tables so the
benchmark output can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned, pipe-separated text table.

    Args:
        headers: Column headers.
        rows: Row values; each value is converted with ``str``.
        title: Optional title printed above the table.

    Returns:
        The formatted table as a single string.
    """
    str_rows = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(value))

    def format_row(values: Sequence[str]) -> str:
        cells = [value.ljust(widths[i]) for i, value in enumerate(values)]
        return "| " + " | ".join(cells) + " |"

    separator = "|-" + "-|-".join("-" * w for w in widths) + "-|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append(separator)
    for row in str_rows:
        lines.append(format_row(row))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (``0.161`` -> ``"16.1%"``)."""
    return f"{value * 100:.{digits}f}%"


def figure6_report(outcomes: Sequence) -> str:
    """Render Figure 6 (reduction versus overhead per strategy) as text.

    Args:
        outcomes: :class:`~repro.flow.experiment.StrategyOutcome` objects.

    Returns:
        A text table with one row per (strategy, overhead) point.
    """
    rows = []
    for outcome in sorted(outcomes, key=lambda o: (o.strategy, o.actual_overhead)):
        rows.append(
            [
                outcome.strategy,
                percent(outcome.requested_overhead),
                percent(outcome.actual_overhead),
                percent(outcome.temperature_reduction),
                f"{outcome.peak_rise:.2f} K",
                "-" if outcome.timing_overhead is None else percent(outcome.timing_overhead, 2),
            ]
        )
    return format_table(
        ["strategy", "requested overhead", "actual overhead", "temp reduction",
         "peak rise", "timing overhead"],
        rows,
        title="Figure 6: thermal efficiency of the whitespace-allocation techniques",
    )


def table1_report(outcomes: Sequence) -> str:
    """Render Table I (concentrated hotspot, Default vs ERI) as text."""
    rows = []
    for outcome in outcomes:
        rows.append(
            [
                outcome.strategy,
                f"{outcome.core_width:.0f} x {outcome.core_height:.0f}",
                outcome.inserted_rows if outcome.inserted_rows else "-",
                percent(outcome.actual_overhead),
                percent(outcome.temperature_reduction),
            ]
        )
    return format_table(
        ["method", "core area [um x um]", "inserted rows", "area overhead",
         "temp reduction"],
        rows,
        title="Table I: concentrated hotspot, Default vs Empty Row Insertion",
    )
