"""Tests for rectangles, floorplans and the slicing partition."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.placement import Floorplan, Rect, slicing_partition


class TestRect:
    def test_dimensions(self):
        rect = Rect(1.0, 2.0, 4.0, 8.0)
        assert rect.width == pytest.approx(3.0)
        assert rect.height == pytest.approx(6.0)
        assert rect.area == pytest.approx(18.0)
        assert rect.center == (pytest.approx(2.5), pytest.approx(5.0))

    def test_contains(self):
        rect = Rect(0.0, 0.0, 10.0, 10.0)
        assert rect.contains(5.0, 5.0)
        assert rect.contains(0.0, 0.0)
        assert not rect.contains(10.0, 5.0)
        assert not rect.contains(-1.0, 5.0)

    def test_overlaps(self):
        a = Rect(0, 0, 10, 10)
        assert a.overlaps(Rect(5, 5, 15, 15))
        assert not a.overlaps(Rect(10, 0, 20, 10))
        assert not a.overlaps(Rect(0, 11, 10, 20))

    def test_expanded_and_clipped(self):
        rect = Rect(2, 2, 4, 4)
        grown = rect.expanded(1.0)
        assert grown.x0 == pytest.approx(1.0)
        assert grown.area == pytest.approx(16.0)
        clipped = grown.clipped(Rect(0, 0, 3.5, 10))
        assert clipped.x1 == pytest.approx(3.5)


class TestFloorplan:
    def test_from_netlist_respects_utilization(self, small_circuit):
        floorplan = Floorplan.from_netlist(small_circuit, utilization=0.8)
        actual = floorplan.utilization(small_circuit)
        assert actual <= 0.8 + 1e-9
        assert actual > 0.7

    def test_invalid_utilization_rejected(self, small_circuit):
        with pytest.raises(ValueError):
            Floorplan.from_netlist(small_circuit, utilization=0.0)
        with pytest.raises(ValueError):
            Floorplan.from_netlist(small_circuit, utilization=1.5)

    def test_geometry_snapped_to_rows_and_sites(self, small_circuit):
        floorplan = Floorplan.from_netlist(small_circuit, utilization=0.85)
        assert floorplan.core_height == pytest.approx(
            floorplan.num_rows * floorplan.row_height
        )
        assert floorplan.core_width == pytest.approx(
            floorplan.sites_per_row * floorplan.site_width
        )

    def test_row_lookup_round_trip(self, small_circuit):
        floorplan = Floorplan.from_netlist(small_circuit, utilization=0.85)
        for row in (0, floorplan.num_rows // 2, floorplan.num_rows - 1):
            y = floorplan.row_y(row)
            assert floorplan.row_of_y(y + 0.1) == row

    def test_row_y_out_of_range(self):
        floorplan = Floorplan(core_width=10.0, core_height=9.0)
        with pytest.raises(IndexError):
            floorplan.row_y(floorplan.num_rows)

    def test_with_extra_rows(self):
        floorplan = Floorplan(core_width=20.0, core_height=18.0)
        taller = floorplan.with_extra_rows(5)
        assert taller.num_rows == floorplan.num_rows + 5
        assert taller.core_width == floorplan.core_width
        with pytest.raises(ValueError):
            floorplan.with_extra_rows(-1)

    def test_die_includes_margin(self):
        floorplan = Floorplan(core_width=100.0, core_height=90.0, die_margin=10.0)
        assert floorplan.die_width == pytest.approx(120.0)
        assert floorplan.die_area > floorplan.core_area

    def test_snap_x(self):
        floorplan = Floorplan(core_width=10.0, core_height=9.0, site_width=0.2)
        assert floorplan.snap_x(0.31) == pytest.approx(0.4)
        assert floorplan.snap_x(-1.0) == 0.0
        assert floorplan.snap_x(99.0) == pytest.approx(10.0)

    def test_aspect_ratio(self, small_circuit):
        tall = Floorplan.from_netlist(small_circuit, utilization=0.8, aspect_ratio=2.0)
        assert tall.core_height > tall.core_width


class TestSlicingPartition:
    def test_partition_tiles_the_rectangle(self):
        bounds = Rect(0, 0, 100, 80)
        areas = {"a": 4000.0, "b": 2000.0, "c": 1000.0, "d": 1000.0}
        regions = slicing_partition(bounds, areas)
        assert set(regions) == set(areas)
        total = sum(r.area for r in regions.values())
        assert total == pytest.approx(bounds.area)

    def test_region_areas_proportional(self):
        bounds = Rect(0, 0, 100, 100)
        areas = {"a": 3000.0, "b": 1000.0}
        regions = slicing_partition(bounds, areas)
        ratio = regions["a"].area / regions["b"].area
        assert ratio == pytest.approx(3.0, rel=0.01)

    def test_single_unit_gets_everything(self):
        bounds = Rect(0, 0, 50, 50)
        regions = slicing_partition(bounds, {"only": 123.0})
        assert regions["only"] == bounds

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            slicing_partition(Rect(0, 0, 1, 1), {})

    def test_non_positive_area_rejected(self):
        with pytest.raises(ValueError):
            slicing_partition(Rect(0, 0, 1, 1), {"a": 0.0})

    def test_regions_do_not_overlap(self):
        bounds = Rect(0, 0, 60, 60)
        areas = {f"u{i}": float(10 + i * 5) for i in range(9)}
        regions = slicing_partition(bounds, areas)
        names = list(regions)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                assert not regions[a].overlaps(regions[b]), (a, b)

    @given(
        areas=st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=9),
        width=st.floats(10.0, 500.0),
        height=st.floats(10.0, 500.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_tiling_and_proportionality(self, areas, width, height):
        bounds = Rect(0.0, 0.0, width, height)
        unit_areas = {f"u{i}": a for i, a in enumerate(areas)}
        regions = slicing_partition(bounds, unit_areas)
        # Tiling: region areas sum to the bounds area.
        assert sum(r.area for r in regions.values()) == pytest.approx(bounds.area, rel=1e-6)
        # Every region is inside the bounds.
        for region in regions.values():
            assert region.x0 >= bounds.x0 - 1e-9
            assert region.y0 >= bounds.y0 - 1e-9
            assert region.x1 <= bounds.x1 + 1e-9
            assert region.y1 <= bounds.y1 + 1e-9
        # Proportionality: each region's area share matches its cell-area share.
        total_cells = sum(unit_areas.values())
        for name, region in regions.items():
            assert region.area / bounds.area == pytest.approx(
                unit_areas[name] / total_cells, rel=1e-6, abs=1e-6
            )
