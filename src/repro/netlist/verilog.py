"""Structural Verilog-style netlist reader and writer.

The paper's flow hands placed netlists between Synopsys tools.  To mirror
that hand-off (and to let users inspect or re-import generated circuits) this
module serializes a :class:`~repro.netlist.netlist.Netlist` to a small,
structural subset of Verilog and parses the same subset back.

Supported subset::

    module <name> (port, port, ...);
      input  a, b;
      output y;
      wire   n1, n2;
      NAND2_X1 u1 (.A(a), .B(b), .Y(n1));
      ...
    endmodule

Only named port connections are supported on instances; that is what the
writer emits.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .library import CellLibrary
from .netlist import Netlist

_IDENT = r"[A-Za-z_][A-Za-z0-9_\[\]\.]*"

_MODULE_RE = re.compile(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_DECL_RE = re.compile(rf"(input|output|wire)\s+(.*?);", re.S)
_INST_RE = re.compile(rf"({_IDENT})\s+({_IDENT})\s*\((.*?)\)\s*;", re.S)
_CONN_RE = re.compile(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)")


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist to structural Verilog text.

    Filler cells are emitted as instances with no pin connections so that a
    round-trip preserves the full placed cell list.

    Args:
        netlist: The design to serialize.

    Returns:
        The Verilog source as a string.
    """
    lines: List[str] = []
    port_names = list(netlist.ports)
    lines.append(f"module {netlist.name} ({', '.join(port_names)});")

    inputs = [p.name for p in netlist.primary_inputs]
    outputs = [p.name for p in netlist.primary_outputs]
    if inputs:
        lines.append(f"  input {', '.join(inputs)};")
    if outputs:
        lines.append(f"  output {', '.join(outputs)};")

    # In Verilog a port *is* a net, while the data model keeps them separate;
    # nets attached to a port are therefore emitted under the port's name.
    rename: Dict[str, str] = {}
    for net in netlist.nets.values():
        if net.driver_port is not None:
            rename[net.name] = net.driver_port.name
        elif net.sink_ports:
            rename[net.name] = net.sink_ports[0].name

    wires = [
        name
        for name in netlist.nets
        if rename.get(name, name) not in netlist.ports
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.append("")

    for inst in netlist.cells.values():
        conns = []
        for pin in list(inst.input_pins) + list(inst.output_pins):
            if pin.net is not None:
                conns.append(f".{pin.name}({rename.get(pin.net.name, pin.net.name)})")
        lines.append(f"  {inst.master.name} {inst.name} ({', '.join(conns)});")

    lines.append("endmodule")
    lines.append("")
    return "\n".join(lines)


def _split_names(decl: str) -> List[str]:
    return [token.strip() for token in decl.replace("\n", " ").split(",") if token.strip()]


def read_verilog(text: str, library: CellLibrary) -> Netlist:
    """Parse structural Verilog text into a netlist.

    Args:
        text: Verilog source (the subset produced by :func:`write_verilog`).
        library: Library used to resolve master cell names.

    Returns:
        The reconstructed :class:`Netlist`.

    Raises:
        ValueError: If no module is found or an instance references an
            unknown master cell.
    """
    text = re.sub(r"//.*", "", text)
    module_match = _MODULE_RE.search(text)
    if module_match is None:
        raise ValueError("no module definition found")
    name = module_match.group(1)
    body = text[module_match.end():]
    end_idx = body.find("endmodule")
    if end_idx >= 0:
        body = body[:end_idx]

    netlist = Netlist(name, library)

    directions: Dict[str, str] = {}
    for decl_match in _DECL_RE.finditer(body):
        kind, names = decl_match.group(1), _split_names(decl_match.group(2))
        if kind in ("input", "output"):
            for port_name in names:
                directions[port_name] = kind

    for port_name, kind in directions.items():
        netlist.add_port(port_name, kind)

    # Remove declarations so the instance regex does not match them.
    body = _DECL_RE.sub("", body)

    for inst_match in _INST_RE.finditer(body):
        master_name, inst_name, conn_text = inst_match.groups()
        if master_name in ("module",):
            continue
        if master_name not in library:
            raise ValueError(f"unknown master cell {master_name!r} for instance {inst_name}")
        inst = netlist.add_cell(inst_name, master_name)
        for pin_name, net_name in _CONN_RE.findall(conn_text):
            pin = inst.pin(pin_name)
            netlist.connect(net_name, pin)

    # Hook primary ports to their like-named nets.
    for port_name in directions:
        if port_name in netlist.nets:
            netlist.connect_port(port_name, port_name)

    return netlist
