"""Steady-state solver for the thermal network.

The paper solves the RC network with SPICE; at steady state this is a
single sparse linear solve ``G * T = P``.  :class:`ThermalSolver` wraps one
die geometry's solve behind two interchangeable backends — a SuperLU
factorisation (``method="lu"``) and a geometric multigrid engine
(``method="multigrid"``, see :mod:`repro.thermal.multigrid`) — so several
power maps can be solved against the same geometry, as happens during an
area-overhead sweep.  :func:`simulate_placement` is the one-call
convenience path from a placed design plus a power report to a
:class:`~repro.thermal.thermal_map.ThermalMap` — the "Thermal Simulation"
box of the paper's Figure 2.
"""

from __future__ import annotations

import logging
import threading
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse.linalg as spla

from ..deadlines import check_active
from ..faults import InjectedFault, inject
from ..placement import Placement
from ..power import PowerReport, build_power_map, iter_cell_bins
from ..power.power_map import PowerMap
from .grid import ThermalGrid
from .multigrid import MultigridConvergenceError, MultigridSolver
from .network import ThermalNetwork
from .package import Package, default_package
from .thermal_map import ThermalMap, map_from_solution

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from ..flow.cache import SolverCache

#: Fill-reducing column permutation used by default.  The conductance matrix
#: is a symmetric 7-point stencil, for which SuperLU's ``MMD_AT_PLUS_A``
#: ordering (with symmetric mode) roughly halves both the factorisation time
#: and the fill-in compared to the generic COLAMD default.
DEFAULT_PERMC_SPEC = "MMD_AT_PLUS_A"

#: The solver backends :func:`resolve_thermal_method` accepts.
THERMAL_METHODS = ("auto", "lu", "multigrid")

#: ``method="auto"`` picks multigrid at or above this node count.  Below
#: it, a sparse LU factorises in milliseconds and its triangular re-solves
#: are unbeatable; above it, the factorisation cost grows super-linearly
#: while multigrid stays O(N) (at the paper's 40 x 40 x 9 grid the LU
#: setup is ~40x slower than the full multigrid build-and-solve).
MULTIGRID_AUTO_MIN_NODES = 6000

#: Accuracy of the one-time package-coupling solve (its error enters every
#: subsequent temperature through the rank-1 correction, so it is kept a
#: decade below the default solve tolerance).
_PACKAGE_SOLVE_TOL = 1e-10


def resolve_thermal_method(
    method: Optional[str], grid: Optional[ThermalGrid] = None
) -> str:
    """Resolve a solver-method spec to a concrete backend name.

    Args:
        method: ``"lu"``, ``"multigrid"``, ``"auto"`` or ``None`` (auto).
        grid: The mesh, consulted by the ``auto`` size heuristic.

    Returns:
        ``"lu"`` or ``"multigrid"``.

    Raises:
        ValueError: On an unknown method name.
    """
    if method is None:
        method = "auto"
    method = method.lower()
    if method not in THERMAL_METHODS:
        raise ValueError(
            f"unknown thermal solver method {method!r}; "
            f"expected one of {', '.join(THERMAL_METHODS)}"
        )
    if method != "auto":
        return method
    if grid is None:
        return "lu"
    return "multigrid" if grid.num_nodes >= MULTIGRID_AUTO_MIN_NODES else "lu"


class ThermalSolver:
    """Prepared steady-state solver for one die geometry.

    Args:
        grid: Thermal mesh.
        keep_full_field: Store the full 3-D temperature field on results.
        permc_spec: SuperLU column-permutation strategy (LU backend only).
            The default exploits the matrix symmetry; pass ``"COLAMD"``
            with ``symmetric_mode=False`` for SuperLU's generic behaviour.
        symmetric_mode: Enable SuperLU's symmetric mode (valid for this
            matrix, which is symmetric positive definite).
        method: Solver backend — ``"lu"`` (sparse direct factorisation),
            ``"multigrid"`` (V-cycle-preconditioned CG, O(N) setup, warm
            starts), or ``"auto"`` (pick by grid size; the resolved choice
            is available as :attr:`method`).
        tol: Relative-residual tolerance of the multigrid backend
            (``None`` uses :data:`repro.thermal.multigrid.DEFAULT_TOLERANCE`).
        fallback: When the multigrid backend stalls (or a fault is
            injected at the ``solver.multigrid`` site), silently re-solve
            through a lazily built direct LU factorisation instead of
            surfacing the half-converged answer.  The resulting maps carry
            ``fallback_used=True``; disable to get the raising behaviour.
    """

    def __init__(
        self,
        grid: ThermalGrid,
        keep_full_field: bool = False,
        permc_spec: str = DEFAULT_PERMC_SPEC,
        symmetric_mode: bool = True,
        method: str = "auto",
        tol: Optional[float] = None,
        fallback: bool = True,
    ) -> None:
        self.grid = grid
        self.network = ThermalNetwork(grid)
        self.keep_full_field = keep_full_field
        self.method = resolve_thermal_method(method, grid)
        self.fallback = fallback
        self.fallback_count = 0
        # In symmetric mode the pivot threshold is dropped to keep
        # SuperLU on the diagonal, as the matrix is a diagonally
        # dominant SPD M-matrix; off-diagonal pivoting would only
        # re-introduce fill the symmetric ordering avoids.
        if symmetric_mode:
            self._splu_kwargs = dict(
                permc_spec=permc_spec,
                diag_pivot_thresh=0.0,
                options=dict(SymmetricMode=True),
            )
        else:
            self._splu_kwargs = dict(permc_spec=permc_spec, options=dict())
        # Both backends solve the grid-only matrix (pure 7-point stencil);
        # the lumped package node would add a dense row, so it is eliminated
        # via a Sherman-Morrison rank-1 correction in :meth:`solve`.
        self._factorized = None
        self._lu_lock = threading.Lock()
        self._mg: Optional[MultigridSolver] = None
        if self.method == "multigrid":
            mg_kwargs = {} if tol is None else {"tol": tol}
            self._mg = MultigridSolver(grid, network=self.network, **mg_kwargs)
        else:
            self._ensure_lu()
        # Reused RHS buffer: only the active-layer span is ever written, the
        # rest stays zero, so repeated solves (campaign sweeps, the leakage
        # feedback loop) allocate nothing per point.  Thread-local because a
        # SolverCache hands the same solver instance to every Campaign
        # worker thread that shares a die geometry.
        self._rhs_local = threading.local()
        self._package_solve: np.ndarray | None = None
        if self.network.package_node is not None:
            coupling = self.network.package_coupling
            if self._mg is not None:
                self._package_solve, _ = self._mg.solve(
                    coupling, tol=_PACKAGE_SOLVE_TOL
                )
            else:
                self._package_solve = self._factorized.solve(coupling)
            self._package_denominator = float(
                self.network.package_diagonal - coupling @ self._package_solve
            )

    # -- backend dispatch ----------------------------------------------------

    def _ensure_lu(self):
        """Build (once) and return the direct LU factorisation.

        The LU backend builds it eagerly; the multigrid backend only pays
        for the factorisation the first time its fallback path needs it.
        """
        if self._factorized is None:
            with self._lu_lock:
                if self._factorized is None:
                    self._factorized = spla.splu(
                        self.network.grid_matrix.tocsc(), **self._splu_kwargs
                    )
        return self._factorized

    def _base_from_physical(self, x0: np.ndarray) -> np.ndarray:
        """Convert a physical rise field into a base-system starting guess.

        The grid system is solved *before* the rank-1 package correction,
        so a previous map's (corrected) rises must have the correction
        peeled off to be a useful warm start.  The correction coefficient
        of the solve that produced ``x0`` is exactly its package-node rise
        ``(coupling @ x0) / package_diagonal``, so the base field is
        recovered without any extra solve.
        """
        if self._package_solve is None:
            return x0
        coupling = self.network.package_coupling
        gamma = (coupling @ x0) / self.network.package_diagonal
        if x0.ndim == 1:
            return x0 - gamma * self._package_solve
        return x0 - self._package_solve[:, None] * gamma[None, :]

    def _solve_grid(
        self, rhs: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Solve the grid-only system for one or more stacked RHS lanes.

        ``x0`` (a previous *physical* temperature-rise field, same leading
        length) is exploited by the multigrid backend and ignored by LU.
        """
        self._rhs_local.fallback = False
        if self._mg is None:
            self._rhs_local.iterations = 0
            return self._factorized.solve(rhs)

        if x0 is not None and x0.shape[0] != self.grid.num_nodes:
            x0 = None  # mismatched geometry: fall back to a cold start
        if x0 is not None:
            x0 = self._base_from_physical(np.asarray(x0, dtype=float))
        try:
            inject(
                "solver.multigrid",
                {
                    "num_nodes": self.grid.num_nodes,
                    "lanes": rhs.shape[1] if rhs.ndim == 2 else 1,
                },
            )
            solution, iterations = self._mg.solve(
                rhs, x0=x0, raise_on_stall=self.fallback
            )
        except (MultigridConvergenceError, InjectedFault) as error:
            if not self.fallback:
                raise
            logger.warning(
                "multigrid backend failed (%s); degrading to direct LU solve",
                error,
            )
            self.fallback_count += 1
            self._rhs_local.iterations = 0
            self._rhs_local.fallback = True
            # Never start an expensive LU factorisation on an already-blown
            # deadline; DeadlineExceeded also bypasses this except clause,
            # so a timed-out multigrid solve can not "degrade" into LU.
            check_active("solver.fallback")
            return self._ensure_lu().solve(rhs)
        self._rhs_local.iterations = int(iterations.max()) if iterations.size else 0
        return solution

    @property
    def last_iterations(self) -> int:
        """Outer iterations of this thread's most recent solve (0 for LU)."""
        return getattr(self._rhs_local, "iterations", 0)

    @property
    def last_fallback_used(self) -> bool:
        """True when this thread's most recent solve took the LU fallback."""
        return getattr(self._rhs_local, "fallback", False)

    # -- solving -------------------------------------------------------------

    def solve(
        self, power_per_cell: np.ndarray, x0: Optional[np.ndarray] = None
    ) -> ThermalMap:
        """Solve for a power map of shape ``(ny, nx)`` watts per thermal cell.

        Args:
            power_per_cell: The binned power map.
            x0: Optional warm start — a previous grid temperature-rise
                vector (e.g. :attr:`ThermalMap.grid_rises` of an earlier
                solve on the same grid resolution).  The multigrid backend
                starts its iteration there; LU ignores it.

        Returns:
            The resulting :class:`ThermalMap`.
        """
        buffer = getattr(self._rhs_local, "rhs", None)
        if buffer is None:
            buffer = self._rhs_local.rhs = np.zeros(self.grid.num_nodes)
        rhs = self.network.fill_grid_rhs(power_per_cell, buffer)
        base = self._solve_grid(rhs, x0=x0)

        if self._package_solve is None:
            solution = base
        else:
            coupling = self.network.package_coupling
            correction = (coupling @ base) / self._package_denominator
            grid_temps = base + correction * self._package_solve
            package_temp = (coupling @ grid_temps) / self.network.package_diagonal
            solution = np.concatenate([grid_temps, [package_temp]])

        return map_from_solution(
            self.grid,
            solution,
            package_node=self.network.package_node,
            keep_full_field=self.keep_full_field,
            fallback_used=self.last_fallback_used,
        )

    def solve_power_map(
        self, power_map: PowerMap, x0: Optional[np.ndarray] = None
    ) -> ThermalMap:
        """Solve for a :class:`~repro.power.power_map.PowerMap`."""
        return self.solve(power_map.power_w, x0=x0)

    def solve_many(
        self,
        power_maps: Sequence[Union[PowerMap, np.ndarray]],
        x0: Optional[np.ndarray] = None,
    ) -> List[ThermalMap]:
        """Solve a stack of power maps sharing this geometry in one pass.

        All smoother/residual arrays of the multigrid backend carry a
        trailing lane axis, so the whole stack is iterated simultaneously
        (per-lane step sizes keep every lane's result identical to a
        sequential :meth:`solve` up to rounding, and converged lanes are
        frozen); the LU backend solves the stacked RHS with one batched
        triangular solve.  This is what :class:`~repro.flow.runner.Campaign`
        uses to solve all records sharing a die geometry as one block.

        The package-node rank-1 correction is applied lane by lane with
        exactly the 1-D operations of :meth:`solve` (SuperLU's batched
        triangular solve is already per-column exact), so an LU lane is
        *bitwise* identical to a sequential :meth:`solve` of the same
        power map — regardless of which other lanes share the batch.  The
        campaign service relies on this: cross-request batches regroup
        points arbitrarily without perturbing any record.

        Args:
            power_maps: Power maps (or bare ``(ny, nx)`` arrays) to solve.
            x0: Optional warm start — either one rise vector of length
                ``num_nodes`` broadcast across lanes, or a ``(num_nodes,
                k)`` stack of per-lane rise vectors.

        Returns:
            One :class:`ThermalMap` per input, in order.
        """
        if not power_maps:
            return []
        arrays = [
            pm.power_w if isinstance(pm, PowerMap) else np.asarray(pm, dtype=float)
            for pm in power_maps
        ]
        k = len(arrays)
        rhs = np.zeros((self.grid.num_nodes, k))
        for lane, power in enumerate(arrays):
            self.network.fill_grid_rhs(power, rhs[:, lane])
        base = self._solve_grid(rhs, x0=x0)

        maps: List[ThermalMap] = []
        for lane in range(k):
            lane_base = np.ascontiguousarray(base[:, lane]) if base.ndim == 2 else base
            if self._package_solve is None:
                solution = lane_base
            else:
                # Per-lane 1-D correction, operation-for-operation the same
                # as :meth:`solve`: this keeps every LU lane bitwise equal
                # to a sequential solve (a lane-batched dgemv would round
                # the dot products differently).
                coupling = self.network.package_coupling
                correction = (coupling @ lane_base) / self._package_denominator
                grid_temps = lane_base + correction * self._package_solve
                package_temp = (
                    coupling @ grid_temps
                ) / self.network.package_diagonal
                solution = np.concatenate([grid_temps, [package_temp]])
            maps.append(
                map_from_solution(
                    self.grid,
                    solution,
                    package_node=self.network.package_node,
                    keep_full_field=self.keep_full_field,
                    fallback_used=self.last_fallback_used,
                )
            )
        return maps


def grid_for_placement(
    placement: Placement,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
) -> ThermalGrid:
    """Build the thermal grid covering a placement's die outline."""
    pkg = package if package is not None else default_package()
    return ThermalGrid.for_die(
        die_width_um=placement.floorplan.die_width,
        die_height_um=placement.floorplan.die_height,
        package=pkg,
        nx=nx,
        ny=ny,
    )


def _warm_start_rises(
    warm_start: "Optional[Union[ThermalMap, np.ndarray]]",
) -> Optional[np.ndarray]:
    """Extract a grid-rise warm-start vector from a map or bare array."""
    if warm_start is None:
        return None
    if isinstance(warm_start, ThermalMap):
        return warm_start.grid_rises
    return np.asarray(warm_start, dtype=float)


def simulate_placement(
    placement: Placement,
    power: PowerReport,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
    keep_full_field: bool = False,
    solver: Optional[ThermalSolver] = None,
    cache: "Optional[SolverCache]" = None,
    power_map: Optional[PowerMap] = None,
    method: Optional[str] = None,
    warm_start: "Optional[Union[ThermalMap, np.ndarray]]" = None,
) -> ThermalMap:
    """Run the full thermal-simulation step on a placed, power-annotated design.

    This is the "Thermal Simulation" box of the paper's flow (Figure 2):
    the placed netlist provides cell positions, the power report provides
    cell-by-cell power, both are binned onto the thermal grid and the
    steady-state RC network is solved.

    Args:
        placement: The placed design.
        power: Per-cell power report.
        package: Thermal stack; defaults to :func:`default_package`.
        nx: Grid cells in x.
        ny: Grid cells in y.
        keep_full_field: Keep the 3-D temperature field on the result.
        solver: Pre-built :class:`ThermalSolver` for this placement's die
            geometry; skips grid construction and solver setup entirely.
        cache: A :class:`repro.flow.cache.SolverCache`; the prepared solver
            is fetched from (or inserted into) the cache, so repeated calls
            on the same die geometry — as in an area-overhead sweep — pay
            the solver setup only once.  Ignored when ``solver`` is given.
        power_map: Pre-binned power map (must match the grid resolution);
            skips the cell-to-bin accumulation.
        method: Solver backend (``"lu"``, ``"multigrid"`` or ``"auto"``);
            ``None`` uses the cache's configured method, or ``"auto"``.
        warm_start: A previous :class:`ThermalMap` (its
            :attr:`~ThermalMap.grid_rises` field) or bare rise vector to
            start the multigrid iteration from; ignored by the LU backend
            and on mismatched grid sizes.

    Returns:
        The active-layer :class:`ThermalMap`.
    """
    if solver is None:
        if cache is not None:
            solver = cache.solver_for_placement(
                placement, package=package, nx=nx, ny=ny,
                keep_full_field=keep_full_field, method=method,
            )
        else:
            grid = grid_for_placement(placement, package=package, nx=nx, ny=ny)
            solver = ThermalSolver(
                grid, keep_full_field=keep_full_field,
                method="auto" if method is None else method,
            )
    if power_map is None:
        power_map = build_power_map(placement, power, nx=nx, ny=ny, over_die=True)
    return solver.solve_power_map(power_map, x0=_warm_start_rises(warm_start))


def cell_temperature_array(
    placement: Placement,
    thermal_map: ThermalMap,
    nx: int = 40,
    ny: int = 40,
    default: float = 25.0,
) -> np.ndarray:
    """Per-cell temperatures as a vector aligned with the compiled cell order.

    One fancy-indexed lookup into the thermal map using the same binning as
    :func:`~repro.power.power_map.build_power_map`.  Unplaced and filler
    cells (which :func:`cell_temperatures` omits from its dict) carry
    ``default``, matching how
    :meth:`~repro.power.power_model.PowerModel.estimate_with_temperature_map`
    treats missing cells.

    Args:
        placement: The placed design.
        thermal_map: An active-layer thermal map at ``(ny, nx)`` resolution.
        nx: Grid cells in x.
        ny: Grid cells in y.
        default: Temperature assigned to cells without a bin lookup.

    Returns:
        Vector of length ``num_cells`` in Celsius.
    """
    from ..power.power_map import cell_bin_indices

    comp = placement.netlist.compiled()
    iy, ix, placed = cell_bin_indices(placement, nx=nx, ny=ny, over_die=True)
    mask = placed & ~comp.is_filler
    temps = np.full(comp.num_cells, float(default))
    temps[mask] = thermal_map.temperatures[iy[mask], ix[mask]]
    return temps


def cell_temperatures(
    placement: Placement,
    thermal_map: ThermalMap,
    nx: int = 40,
    ny: int = 40,
    engine: Optional[str] = None,
) -> dict:
    """Per-cell temperatures read off a thermal map.

    Each cell is looked up in the grid bin containing its centre, using the
    same binning as :func:`~repro.power.power_map.build_power_map`.

    Args:
        placement: The placed design.
        thermal_map: An active-layer thermal map at ``(ny, nx)`` resolution.
        nx: Grid cells in x.
        ny: Grid cells in y.
        engine: ``"compiled"`` (one fancy-indexed lookup) or ``"reference"``
            (cell-at-a-time); defaults to the process-wide engine.

    Returns:
        Mapping of cell name to its bin temperature in Celsius.
    """
    from ..engine import resolve_engine
    from ..power.power_map import cell_bin_indices

    if resolve_engine(engine) == "reference":
        return {
            cell.name: float(thermal_map.temperatures[iy, ix])
            for cell, iy, ix in iter_cell_bins(placement, nx=nx, ny=ny, over_die=True)
        }
    comp = placement.netlist.compiled()
    iy, ix, placed = cell_bin_indices(placement, nx=nx, ny=ny, over_die=True)
    mask = placed & ~comp.is_filler
    temps = thermal_map.temperatures[iy[mask], ix[mask]]
    names = [name for name, keep in zip(comp.cell_names, mask.tolist()) if keep]
    return dict(zip(names, temps.tolist()))


def simulate_with_leakage_feedback(
    placement: Placement,
    activity,
    power_model,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
    iterations: int = 3,
    cache: "Optional[SolverCache]" = None,
    engine: Optional[str] = None,
    method: Optional[str] = None,
) -> ThermalMap:
    """Thermal simulation with leakage/temperature feedback iterations.

    The positive feedback between leakage power and temperature mentioned
    in the paper's introduction: each iteration re-evaluates leakage at the
    per-cell temperatures of the previous thermal solve.  The die geometry
    never changes across iterations, so one prepared solver is reused for
    the whole loop, and every re-solve warm-starts from the previous
    iteration's temperature field — which the multigrid backend converts
    into one or two cycles, while LU (which cannot exploit a starting
    guess) simply ignores it.

    Args:
        placement: The placed design.
        activity: Per-net :class:`~repro.power.activity.SwitchingActivity`.
        power_model: A :class:`~repro.power.power_model.PowerModel`.
        package: Thermal stack.
        nx: Grid cells in x.
        ny: Grid cells in y.
        iterations: Number of power/thermal iterations (>= 1).
        cache: Optional :class:`repro.flow.cache.SolverCache` to share the
            prepared solver with other simulations of the same geometry.
        method: Solver backend (``"lu"``, ``"multigrid"`` or ``"auto"``).

    Returns:
        The converged :class:`ThermalMap`.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    netlist = placement.netlist
    if cache is not None:
        solver = cache.solver_for_placement(
            placement, package=package, nx=nx, ny=ny, method=method
        )
    else:
        solver = ThermalSolver(
            grid_for_placement(placement, package=package, nx=nx, ny=ny),
            method="auto" if method is None else method,
        )
    from ..engine import resolve_engine, use_engine

    resolved = resolve_engine(engine)
    # Pin the whole loop (including the binning inside simulate_placement,
    # which has no engine parameter of its own) to the resolved engine, so
    # engine="reference" really is a pure reference run.
    with use_engine(resolved):
        power = power_model.estimate(netlist, activity)
        thermal_map = simulate_placement(
            placement, power, package=package, nx=nx, ny=ny, solver=solver
        )
        for _ in range(iterations - 1):
            if resolved == "reference":
                cell_temps = cell_temperatures(placement, thermal_map, nx=nx, ny=ny)
            else:
                # Array round-trip: the per-cell temperature vector feeds
                # the power model directly, with no name-keyed dict between.
                cell_temps = cell_temperature_array(
                    placement, thermal_map, nx=nx, ny=ny,
                    default=power_model.temperature,
                )
            power = power_model.estimate_with_temperature_map(
                netlist, activity, cell_temps
            )
            thermal_map = simulate_placement(
                placement, power, package=package, nx=nx, ny=ny, solver=solver,
                warm_start=thermal_map,
            )
    return thermal_map
