"""Hotspot detection on the thermal map.

The post-placement techniques "work in a post-placement stage where we can
exploit both functional information (i.e. the actual switching activity)
and physical information (i.e. cell position) of the circuit so as to
exactly localize the thermal hotspots."

A hotspot is a connected group of thermal cells whose temperature exceeds a
threshold relative to the peak temperature rise.  Each detected hotspot is
reported with its grid extent, its rectangle in placement coordinates, the
cells it covers and the logical units that dominate its power — the latter
is what the hotspot wrapper uses to tell "hot" cells from bystanders.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import ndimage

from ..placement import Placement, Rect
from ..power import PowerReport
from ..thermal import ThermalMap


@dataclass
class Hotspot:
    """One detected hotspot.

    Attributes:
        index: Hotspot id (0 = hottest).
        bins: Grid bins ``(iy, ix)`` belonging to the hotspot.
        rect: Bounding rectangle in placement coordinates (micrometres),
            clipped to the core area.
        peak_celsius: Peak temperature inside the hotspot.
        peak_bin: Grid location ``(iy, ix)`` of the hotspot's hottest cell.
        peak_xy_um: Placement coordinates (micrometres) of the centre of the
            hottest thermal cell; ``None`` when unknown.
        dominant_units: Units ordered by decreasing power contribution
            inside the hotspot rectangle.
        power_w: Total cell power inside the hotspot rectangle, in watts.
        num_cells: Number of logic cells inside the hotspot rectangle.
    """

    index: int
    bins: List[Tuple[int, int]]
    rect: Rect
    peak_celsius: float
    peak_bin: Tuple[int, int]
    peak_xy_um: Optional[Tuple[float, float]] = None
    dominant_units: List[str] = field(default_factory=list)
    power_w: float = 0.0
    num_cells: int = 0

    @property
    def num_bins(self) -> int:
        """Number of thermal cells in the hotspot."""
        return len(self.bins)

    @property
    def area_um2(self) -> float:
        """Bounding-rectangle area in square micrometres."""
        return self.rect.area

    def row_span(self, placement: Placement) -> Tuple[int, int]:
        """Inclusive range of placement rows the hotspot rectangle covers."""
        floorplan = placement.floorplan
        first = floorplan.row_of_y(max(self.rect.y0, 0.0))
        last = floorplan.row_of_y(min(self.rect.y1, floorplan.core_height) - 1e-6)
        return first, last


def detect_hotspots(
    thermal_map: ThermalMap,
    placement: Placement,
    power: Optional[PowerReport] = None,
    threshold_fraction: float = 0.85,
    min_bins: int = 1,
    max_hotspots: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[Hotspot]:
    """Detect hotspots as connected regions above a temperature threshold.

    Because most of the temperature rise above ambient is spatially uniform
    (the vertical path through the package), the threshold is defined on the
    *lateral variation*: a thermal cell is hot when its rise exceeds
    ``rise_min + threshold_fraction * (rise_max - rise_min)``.  Connected
    components (4-connectivity) of hot cells become hotspots, ordered by
    their peak temperature.

    Args:
        thermal_map: Solved active-layer temperatures (40 x 40 grid).
        placement: The placed design the map was computed for (provides the
            grid-to-micrometre mapping and the cells in each hotspot).
        power: Optional per-cell power report used to rank the units that
            cause each hotspot.
        threshold_fraction: Fraction of the lateral temperature range
            (``rise_max - rise_min``) above which a cell counts as hot.
        min_bins: Minimum number of grid bins for a component to count.
        max_hotspots: Keep only the hottest N hotspots when given.
        engine: ``"compiled"`` (bincount attribution over compiled unit
            codes) or ``"reference"`` (cell-at-a-time dict accumulation);
            defaults to the process-wide engine.  Both produce identical
            hotspots.

    Returns:
        Hotspots sorted hottest first.

    Raises:
        ValueError: If ``threshold_fraction`` is outside ``(0, 1]``.
    """
    if not 0.0 < threshold_fraction <= 1.0:
        raise ValueError(f"threshold_fraction must be in (0, 1], got {threshold_fraction}")

    rise = thermal_map.rise_map()
    peak_rise = float(rise.max())
    min_rise = float(rise.min())
    if peak_rise <= 0.0 or peak_rise - min_rise <= 0.0:
        return []
    threshold = min_rise + threshold_fraction * (peak_rise - min_rise)
    mask = rise >= threshold

    labels, num_components = ndimage.label(mask)
    hotspots: List[Hotspot] = []
    floorplan = placement.floorplan
    ny, nx = rise.shape
    bin_w = floorplan.die_width / nx
    bin_h = floorplan.die_height / ny
    origin_x = -floorplan.die_margin
    origin_y = -floorplan.die_margin

    # Cell attribution is one fancy-indexed mask plus an np.bincount over
    # compiled unit codes per hotspot — no Python loop over cells.  The
    # centre arrays, unit codes and per-cell powers are gathered once here
    # and shared by every component below.  Matches the cell-at-a-time
    # reference (placement.cells_in_rect + dict accumulation) exactly:
    # same half-open rectangle test, same cell order, and bincount adds
    # each unit's contributions in the same sequence the loop would.
    from ..engine import resolve_engine

    compiled_engine = resolve_engine(engine) != "reference"
    if compiled_engine:
        comp = placement.netlist.compiled()
        centers_x, centers_y, placed = placement.cell_center_arrays()
        eligible = placed & ~comp.is_filler
        if power is not None:
            cell_power = power.total_for_names(comp.cell_names)
        else:
            cell_power = comp.cell_area_um2

    for component in range(1, num_components + 1):
        ys, xs = np.nonzero(labels == component)
        if len(ys) < min_bins:
            continue
        bins = list(zip(ys.tolist(), xs.tolist()))
        # Grid bounding box -> placement coordinates, clipped to the core.
        x0 = origin_x + xs.min() * bin_w
        x1 = origin_x + (xs.max() + 1) * bin_w
        y0 = origin_y + ys.min() * bin_h
        y1 = origin_y + (ys.max() + 1) * bin_h
        rect = Rect(x0, y0, x1, y1).clipped(floorplan.core_rect)

        component_rise = rise[ys, xs]
        local_peak_idx = int(np.argmax(component_rise))
        peak_bin = (int(ys[local_peak_idx]), int(xs[local_peak_idx]))
        peak_celsius = float(thermal_map.temperatures[peak_bin])
        peak_xy = (
            origin_x + (peak_bin[1] + 0.5) * bin_w,
            origin_y + (peak_bin[0] + 0.5) * bin_h,
        )

        if compiled_engine:
            if rect.area > 0:
                inside = (
                    eligible
                    & (centers_x >= rect.x0) & (centers_x < rect.x1)
                    & (centers_y >= rect.y0) & (centers_y < rect.y1)
                )
                selected = np.nonzero(inside)[0]
            else:
                selected = np.empty(0, dtype=np.int64)
            selected_codes = comp.unit_codes[selected]
            unit_sums = np.bincount(
                selected_codes, weights=cell_power[selected], minlength=comp.num_units
            )
            # Units in first-seen cell order, then stable-sorted by
            # decreasing power: identical ordering to the reference dict
            # accumulation.
            unique_codes, first_seen = np.unique(selected_codes, return_index=True)
            appearance = unique_codes[np.argsort(first_seen, kind="stable")]
            dominant = [
                comp.unit_names[code]
                for code in sorted(appearance.tolist(), key=lambda c: -unit_sums[c])
            ]
            total_power = float(cell_power[selected].sum())
            num_cells = int(selected.size)
        else:
            cells = placement.cells_in_rect(rect) if rect.area > 0 else []
            unit_power: Dict[str, float] = {}
            total_power = 0.0
            for cell in cells:
                one = power.power_of(cell.name) if power is not None else cell.area
                unit_power[cell.unit] = unit_power.get(cell.unit, 0.0) + one
                total_power += one
            dominant = [u for u, _p in sorted(unit_power.items(), key=lambda kv: -kv[1])]
            num_cells = len(cells)

        hotspots.append(
            Hotspot(
                index=0,
                bins=bins,
                rect=rect,
                peak_celsius=peak_celsius,
                peak_bin=peak_bin,
                peak_xy_um=peak_xy,
                dominant_units=dominant,
                power_w=total_power if power is not None else 0.0,
                num_cells=num_cells,
            )
        )

    hotspots.sort(key=lambda h: -h.peak_celsius)
    for i, hotspot in enumerate(hotspots):
        hotspot.index = i
    if max_hotspots is not None:
        hotspots = hotspots[:max_hotspots]
    return hotspots


def project_hotspots(
    hotspots: Sequence[Hotspot], source: Placement, target: Placement
) -> List[Hotspot]:
    """Scale hotspot rectangles from one core outline to another.

    When a strategy starts from a transformed (larger) placement, the
    hotspots detected on the baseline map are projected onto the new core
    by scaling their rectangles with the core-size ratio; the dominant
    units (which is what e.g. the hotspot wrapper actually acts on) are
    preserved.
    """
    sx = target.floorplan.core_width / source.floorplan.core_width
    sy = target.floorplan.core_height / source.floorplan.core_height
    projected: List[Hotspot] = []
    for hotspot in hotspots:
        rect = hotspot.rect
        projected.append(
            Hotspot(
                index=hotspot.index,
                bins=list(hotspot.bins),
                rect=Rect(rect.x0 * sx, rect.y0 * sy, rect.x1 * sx, rect.y1 * sy),
                peak_celsius=hotspot.peak_celsius,
                peak_bin=hotspot.peak_bin,
                dominant_units=list(hotspot.dominant_units),
                power_w=hotspot.power_w,
                num_cells=hotspot.num_cells,
            )
        )
    return projected


def hotspot_summary(hotspots: Sequence[Hotspot]) -> List[Dict[str, float]]:
    """Compact per-hotspot summary rows for reports."""
    rows: List[Dict[str, float]] = []
    for hotspot in hotspots:
        rows.append(
            {
                "index": float(hotspot.index),
                "num_bins": float(hotspot.num_bins),
                "peak_celsius": hotspot.peak_celsius,
                "area_um2": hotspot.area_um2,
                "power_w": hotspot.power_w,
                "num_cells": float(hotspot.num_cells),
            }
        )
    return rows
