"""Cell-density maps over the die.

The hotspot techniques reason about *power density*; this module provides
the closely related *cell density* map (placed cell area per unit die area)
on the same grid the thermal model uses, which is useful for diagnostics,
for verifying that the hotspot wrapper really lowered the cell density in
the wrapped region, and for the routing-congestion by-product the paper
mentions for empty row insertion.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .floorplan import Rect
from .placement import Placement


def cell_density_map(
    placement: Placement,
    nx: int = 40,
    ny: int = 40,
    include_fillers: bool = False,
    over_die: bool = True,
) -> np.ndarray:
    """Compute the cell-area density on an ``ny`` x ``nx`` grid.

    Each placed cell's area is accumulated into the grid bin containing its
    centre; the result is normalised by the bin area so values are
    dimensionless densities (1.0 means the bin is fully covered by cells).

    Args:
        placement: The placed design.
        nx: Number of grid bins in x.
        ny: Number of grid bins in y.
        include_fillers: Whether filler cells count towards density (they
            are whitespace, so the default is ``False``).
        over_die: Grid covers the die (core plus margin) when ``True``,
            matching the thermal grid; covers only the core when ``False``.

    Returns:
        Array of shape ``(ny, nx)``; row 0 is the bottom of the die.
    """
    floorplan = placement.floorplan
    if over_die:
        origin_x = -floorplan.die_margin
        origin_y = -floorplan.die_margin
        width = floorplan.die_width
        height = floorplan.die_height
    else:
        origin_x = origin_y = 0.0
        width = floorplan.core_width
        height = floorplan.core_height

    density = np.zeros((ny, nx), dtype=float)
    bin_w = width / nx
    bin_h = height / ny
    bin_area = bin_w * bin_h

    for cell in placement.placed_cells(include_fillers=include_fillers):
        cx, cy = cell.center
        ix = int((cx - origin_x) / bin_w)
        iy = int((cy - origin_y) / bin_h)
        ix = min(max(ix, 0), nx - 1)
        iy = min(max(iy, 0), ny - 1)
        density[iy, ix] += cell.area

    return density / bin_area


def density_in_rect(placement: Placement, rect: Rect, include_fillers: bool = False) -> float:
    """Cell-area density inside ``rect`` (cell area / rect area)."""
    if rect.area <= 0.0:
        return 0.0
    area = sum(
        c.area for c in placement.cells_in_rect(rect, include_fillers=include_fillers)
    )
    return area / rect.area


def peak_density(density: np.ndarray) -> Tuple[float, Tuple[int, int]]:
    """Return the peak density value and its ``(iy, ix)`` grid location."""
    flat_index = int(np.argmax(density))
    iy, ix = np.unravel_index(flat_index, density.shape)
    return float(density[iy, ix]), (int(iy), int(ix))
