"""Figure 6: thermal efficiency of the whitespace-allocation techniques.

The paper sweeps the area overhead from ~5% to ~40% on the scattered-
hotspot test set and plots the peak-temperature reduction of the Default
(uniform utilization relaxation), ERI (empty row insertion) and HW (hotspot
wrapper) schemes.  The observations to reproduce:

* both the ERI and HW curves lie above the Default curve,
* the effectiveness of every scheme increases with the area overhead.

Absolute reductions depend on the thermal calibration (see EXPERIMENTS.md);
the curve ordering and monotonicity are asserted here.
"""

from __future__ import annotations

from repro.analysis import figure6_report
from repro.flow import Campaign

#: Area-overhead sweep points (fractions of the baseline core area).
OVERHEADS = (0.08, 0.161, 0.25, 0.322)


def _efficiency(outcome) -> float:
    """Reduction per unit of actual overhead (insensitive to row snapping)."""
    return outcome.temperature_reduction / max(outcome.actual_overhead, 1e-9)


def test_fig6_reduction_versus_overhead(scattered_setup, benchmark):
    setup = scattered_setup

    campaign = Campaign(
        setup, strategies=("default", "eri", "hw"), overheads=OVERHEADS,
        name="figure6",
    )
    result = benchmark.pedantic(campaign.run, rounds=1, iterations=1)
    outcomes = result.outcomes()

    print()
    print(figure6_report(outcomes))
    print(f"baseline peak rise: {setup.thermal_map.peak_rise:.2f} K, "
          f"gradient: {setup.thermal_map.gradient:.2f} K")

    by_strategy = {
        strategy: sorted(
            (o for o in outcomes if o.strategy == strategy),
            key=lambda o: o.requested_overhead,
        )
        for strategy in ("default", "eri", "hw")
    }

    # Every point of every scheme reduces the peak temperature.
    for strategy, points in by_strategy.items():
        for outcome in points:
            assert outcome.temperature_reduction > 0.0, (strategy, outcome)

    # Effectiveness increases with the area overhead for every scheme.
    for strategy, points in by_strategy.items():
        reductions = [o.temperature_reduction for o in points]
        assert reductions == sorted(reductions), strategy

    # Both hotspot-targeted schemes lie on or above the Default curve:
    # compare reduction-per-overhead efficiency point by point, with a small
    # tolerance for row/site snapping noise.
    for i, _overhead in enumerate(OVERHEADS):
        default_eff = _efficiency(by_strategy["default"][i])
        assert _efficiency(by_strategy["eri"][i]) >= 0.97 * default_eff
        assert _efficiency(by_strategy["hw"][i]) >= 0.97 * default_eff

    # At the paper's 16.1% reference point the targeted schemes must beat
    # Default outright (the paper reports 13.1% ERI vs 11.3% Default), and
    # the curves stack as in Figure 6: ERI above HW above Default.
    index_161 = OVERHEADS.index(0.161)
    assert (
        by_strategy["eri"][index_161].temperature_reduction
        > by_strategy["default"][index_161].temperature_reduction
    )
    assert (
        by_strategy["hw"][index_161].temperature_reduction
        > by_strategy["default"][index_161].temperature_reduction
    )
    assert (
        by_strategy["eri"][index_161].temperature_reduction
        >= by_strategy["hw"][index_161].temperature_reduction
    )

    # The campaign's shared cache must have reused factorisations (the
    # wrapper rides on the Default outline at every overhead).
    assert result.metadata["solver_cache"]["hits"] >= len(OVERHEADS)
