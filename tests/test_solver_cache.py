"""Solver-cache correctness: reuse, bitwise identity and invalidation.

The cache must be a pure memoisation: cached and uncached paths produce
bitwise-identical thermal maps, and any change to the die outline (an ERI
row insertion, a Default/HW re-placement) or the package produces a new
cache key so a stale factorisation can never be returned.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.core import apply_default_spread, apply_empty_row_insertion, detect_hotspots
from repro.flow import (
    ExperimentSetup,
    SolverCache,
    geometry_key,
    package_fingerprint,
    sweep_overheads,
)
from repro.power import PowerModel
from repro.thermal import (
    ThermalSolver,
    default_package,
    grid_for_placement,
    low_cost_package,
    simulate_placement,
    simulate_with_leakage_feedback,
)

#: Coarse grid so each factorisation stays cheap in the unit tests.
NX = NY = 16


@pytest.fixture(scope="module")
def cached_setup():
    """A prepared small-benchmark baseline on the coarse test grid."""
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=11,
    )


class TestSolverReuse:
    def test_same_geometry_hits_once_factorised(self, small_placement):
        cache = SolverCache()
        first = cache.solver_for_placement(small_placement, nx=NX, ny=NY)
        second = cache.solver_for_placement(small_placement, nx=NX, ny=NY)
        assert first is second
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_cached_map_bitwise_identical_to_uncached(self, small_placement, small_power):
        cache = SolverCache()
        uncached = simulate_placement(small_placement, small_power, nx=NX, ny=NY)
        cached_cold = simulate_placement(
            small_placement, small_power, nx=NX, ny=NY, cache=cache
        )
        cached_warm = simulate_placement(
            small_placement, small_power, nx=NX, ny=NY, cache=cache
        )
        assert cached_cold.temperatures.tobytes() == uncached.temperatures.tobytes()
        assert cached_warm.temperatures.tobytes() == uncached.temperatures.tobytes()
        assert cache.hits == 1

    def test_explicit_solver_bypasses_cache(self, small_placement, small_power):
        solver = ThermalSolver(grid_for_placement(small_placement, nx=NX, ny=NY))
        cache = SolverCache()
        result = simulate_placement(
            small_placement, small_power, nx=NX, ny=NY, solver=solver, cache=cache
        )
        assert cache.stats().misses == 0
        assert result.peak_rise > 0.0

    def test_leakage_feedback_cache_matches_uncached(
        self, small_placement, small_activity
    ):
        """The feedback loop's geometry is fixed: one factorisation total."""
        cache = SolverCache()
        with_cache = simulate_with_leakage_feedback(
            small_placement, small_activity, PowerModel(),
            nx=NX, ny=NY, iterations=2, cache=cache,
        )
        without = simulate_with_leakage_feedback(
            small_placement, small_activity, PowerModel(),
            nx=NX, ny=NY, iterations=2,
        )
        assert with_cache.temperatures.tobytes() == without.temperatures.tobytes()
        assert cache.stats().misses == 1

    def test_concurrent_requests_factorise_once(self, small_placement):
        cache = SolverCache()
        solvers = []

        def fetch():
            solvers.append(cache.solver_for_placement(small_placement, nx=NX, ny=NY))

        threads = [threading.Thread(target=fetch) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.stats().misses == 1
        assert all(solver is solvers[0] for solver in solvers)


class TestInvalidation:
    def test_eri_outline_change_misses(self, cached_setup):
        """Empty row insertion grows the core, so the key must change."""
        setup = cached_setup
        cache = SolverCache()
        cache.solver_for_placement(setup.placement, nx=NX, ny=NY)
        hotspots = detect_hotspots(
            setup.thermal_map, setup.placement, power=setup.power
        )
        eri = apply_empty_row_insertion(setup.placement, hotspots, num_rows=4)
        assert (
            eri.placement.floorplan.core_height
            > setup.placement.floorplan.core_height
        )

        cached = simulate_placement(
            eri.placement, setup.power, nx=NX, ny=NY, cache=cache
        )
        assert cache.stats().misses == 2  # new outline -> new factorisation
        uncached = simulate_placement(eri.placement, setup.power, nx=NX, ny=NY)
        assert cached.temperatures.tobytes() == uncached.temperatures.tobytes()

    def test_default_spread_outline_change_misses(self, cached_setup):
        """The Default/HW relaxation re-places at a larger outline."""
        setup = cached_setup
        cache = SolverCache()
        cache.solver_for_placement(setup.placement, nx=NX, ny=NY)
        spread = apply_default_spread(setup.placement, 0.2)
        cached = simulate_placement(
            spread.placement, setup.power, nx=NX, ny=NY, cache=cache
        )
        assert cache.stats().misses == 2
        uncached = simulate_placement(spread.placement, setup.power, nx=NX, ny=NY)
        assert cached.temperatures.tobytes() == uncached.temperatures.tobytes()

    def test_key_depends_on_package_and_resolution(self, small_placement):
        base = grid_for_placement(small_placement, nx=NX, ny=NY)
        finer = grid_for_placement(small_placement, nx=NX * 2, ny=NY * 2)
        cheap = grid_for_placement(
            small_placement, package=low_cost_package(), nx=NX, ny=NY
        )
        keys = {geometry_key(base), geometry_key(finer), geometry_key(cheap),
                geometry_key(base, keep_full_field=True)}
        assert len(keys) == 4
        assert package_fingerprint(default_package()) == package_fingerprint(
            default_package()
        )


class TestSweepEquivalence:
    def test_cached_sweep_outcomes_bitwise_identical(self, cached_setup):
        """The acceptance check: cached and uncached sweeps agree exactly."""
        overheads = (0.1, 0.2)
        cache = SolverCache()
        cached = sweep_overheads(cached_setup, overheads=overheads, cache=cache)
        uncached = sweep_overheads(
            cached_setup, overheads=overheads, cache=SolverCache(maxsize=0)
        )
        assert cache.stats().hits > 0  # hw reuses the default outline
        assert len(cached) == len(uncached) == 6
        for fast, slow in zip(cached, uncached):
            assert fast == slow  # dataclass equality covers every metric


class TestBounds:
    def test_lru_eviction(self, small_placement):
        cache = SolverCache(maxsize=1)
        cache.solver_for_placement(small_placement, nx=NX, ny=NY)
        cache.solver_for_placement(small_placement, nx=NX // 2, ny=NY // 2)
        stats = cache.stats()
        assert stats.size == 1
        assert stats.evictions == 1

    def test_maxsize_zero_retains_nothing(self, small_placement):
        cache = SolverCache(maxsize=0)
        first = cache.solver_for_placement(small_placement, nx=NX, ny=NY)
        second = cache.solver_for_placement(small_placement, nx=NX, ny=NY)
        assert first is not second
        assert len(cache) == 0
        assert cache.stats().misses == 2

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            SolverCache(maxsize=-1)

    def test_clear_drops_entries_but_keeps_counters(self, small_placement):
        cache = SolverCache()
        cache.solver_for_placement(small_placement, nx=NX, ny=NY)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1


class TestCounterExactness:
    """Hit/miss counters are exact under concurrency, not approximate.

    Every increment and every read happens under the cache lock, so after
    N threads each perform R requests over G geometries the counters must
    satisfy ``misses == G`` and ``hits == N * R - G`` *exactly* — the kind
    of assertion a torn or racy counter read would fail intermittently.
    """

    def test_exact_counts_across_threads_and_geometries(self, small_placement):
        cache = SolverCache()
        grids = [
            grid_for_placement(small_placement, package=default_package(), nx=n, ny=n)
            for n in (8, 10, 12)
        ]
        num_threads, rounds = 8, 6
        barrier = threading.Barrier(num_threads)
        errors = []

        def worker():
            try:
                barrier.wait()
                for round_index in range(rounds):
                    for grid in grids:
                        assert cache.solver(grid) is not None
                        # Interleave locked property reads with lookups: a
                        # torn snapshot would let hits outrun total requests.
                        assert cache.hits <= num_threads * rounds * len(grids)
                        assert cache.misses <= len(grids)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        total_requests = num_threads * rounds * len(grids)
        assert cache.misses == len(grids)
        assert cache.hits == total_requests - len(grids)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (cache.hits, cache.misses)
        assert stats.hits + stats.misses == total_requests
