"""The paper's contribution: hotspot-driven post-placement whitespace management."""

from .hotspot import Hotspot, detect_hotspots, hotspot_summary
from .default_spread import DefaultSpreadResult, apply_default_spread
from .empty_row import (
    EmptyRowInsertionResult,
    apply_empty_row_insertion,
    plan_insertion_points,
    rows_for_overhead,
)
from .wrapper import HotspotWrapperResult, WrappedHotspot, apply_hotspot_wrapper
from .area_manager import (
    ERI_HOTSPOT_THRESHOLD,
    HW_HOTSPOT_THRESHOLD,
    AreaManagementConfig,
    AreaManagementResult,
    AreaManager,
    Strategy,
)

__all__ = [
    "Hotspot",
    "detect_hotspots",
    "hotspot_summary",
    "DefaultSpreadResult",
    "apply_default_spread",
    "EmptyRowInsertionResult",
    "apply_empty_row_insertion",
    "plan_insertion_points",
    "rows_for_overhead",
    "HotspotWrapperResult",
    "WrappedHotspot",
    "apply_hotspot_wrapper",
    "ERI_HOTSPOT_THRESHOLD",
    "HW_HOTSPOT_THRESHOLD",
    "AreaManagementConfig",
    "AreaManagementResult",
    "AreaManager",
    "Strategy",
]
