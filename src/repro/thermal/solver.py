"""Steady-state solver for the thermal network.

The paper solves the RC network with SPICE; at steady state this is a
single sparse linear solve ``G * T = P``.  :class:`ThermalSolver` wraps the
factorisation (so several power maps can be solved against the same die
geometry, as happens during an area-overhead sweep) and
:func:`simulate_placement` is the one-call convenience path from a placed
design plus a power report to a :class:`~repro.thermal.thermal_map.ThermalMap`
— the "Thermal Simulation" box of the paper's Figure 2.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse.linalg as spla

from ..placement import Placement
from ..power import PowerReport, build_power_map
from ..power.power_map import PowerMap
from .grid import ThermalGrid
from .network import ThermalNetwork
from .package import Package, default_package
from .thermal_map import ThermalMap, map_from_solution


class ThermalSolver:
    """Factorised steady-state solver for one die geometry.

    Args:
        grid: Thermal mesh.
        keep_full_field: Store the full 3-D temperature field on results.
    """

    def __init__(self, grid: ThermalGrid, keep_full_field: bool = False) -> None:
        self.grid = grid
        self.network = ThermalNetwork(grid)
        self.keep_full_field = keep_full_field
        # Factorise the grid-only matrix (pure 7-point stencil); the lumped
        # package node would add a dense row, so it is eliminated via a
        # Sherman-Morrison rank-1 correction in :meth:`solve`.
        self._factorized = spla.splu(self.network.grid_matrix.tocsc())
        self._package_solve: np.ndarray | None = None
        if self.network.package_node is not None:
            coupling = self.network.package_coupling
            self._package_solve = self._factorized.solve(coupling)
            self._package_denominator = float(
                self.network.package_diagonal - coupling @ self._package_solve
            )

    def solve(self, power_per_cell: np.ndarray) -> ThermalMap:
        """Solve for a power map of shape ``(ny, nx)`` watts per thermal cell.

        Returns:
            The resulting :class:`ThermalMap`.
        """
        rhs_full = self.network.power_vector(power_per_cell)
        rhs = rhs_full[: self.grid.num_nodes]
        base = self._factorized.solve(rhs)

        if self._package_solve is None:
            solution = base
        else:
            coupling = self.network.package_coupling
            correction = (coupling @ base) / self._package_denominator
            grid_temps = base + correction * self._package_solve
            package_temp = (coupling @ grid_temps) / self.network.package_diagonal
            solution = np.concatenate([grid_temps, [package_temp]])

        return map_from_solution(
            self.grid,
            solution,
            package_node=self.network.package_node,
            keep_full_field=self.keep_full_field,
        )

    def solve_power_map(self, power_map: PowerMap) -> ThermalMap:
        """Solve for a :class:`~repro.power.power_map.PowerMap`."""
        return self.solve(power_map.power_w)


def grid_for_placement(
    placement: Placement,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
) -> ThermalGrid:
    """Build the thermal grid covering a placement's die outline."""
    pkg = package if package is not None else default_package()
    return ThermalGrid.for_die(
        die_width_um=placement.floorplan.die_width,
        die_height_um=placement.floorplan.die_height,
        package=pkg,
        nx=nx,
        ny=ny,
    )


def simulate_placement(
    placement: Placement,
    power: PowerReport,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
    keep_full_field: bool = False,
) -> ThermalMap:
    """Run the full thermal-simulation step on a placed, power-annotated design.

    This is the "Thermal Simulation" box of the paper's flow (Figure 2):
    the placed netlist provides cell positions, the power report provides
    cell-by-cell power, both are binned onto the thermal grid and the
    steady-state RC network is solved.

    Args:
        placement: The placed design.
        power: Per-cell power report.
        package: Thermal stack; defaults to :func:`default_package`.
        nx: Grid cells in x.
        ny: Grid cells in y.
        keep_full_field: Keep the 3-D temperature field on the result.

    Returns:
        The active-layer :class:`ThermalMap`.
    """
    grid = grid_for_placement(placement, package=package, nx=nx, ny=ny)
    power_map = build_power_map(placement, power, nx=nx, ny=ny, over_die=True)
    solver = ThermalSolver(grid, keep_full_field=keep_full_field)
    return solver.solve_power_map(power_map)


def simulate_with_leakage_feedback(
    placement: Placement,
    activity,
    power_model,
    package: Optional[Package] = None,
    nx: int = 40,
    ny: int = 40,
    iterations: int = 3,
) -> ThermalMap:
    """Thermal simulation with leakage/temperature feedback iterations.

    The positive feedback between leakage power and temperature mentioned
    in the paper's introduction: each iteration re-evaluates leakage at the
    per-cell temperatures of the previous thermal solve.

    Args:
        placement: The placed design.
        activity: Per-net :class:`~repro.power.activity.SwitchingActivity`.
        power_model: A :class:`~repro.power.power_model.PowerModel`.
        package: Thermal stack.
        nx: Grid cells in x.
        ny: Grid cells in y.
        iterations: Number of power/thermal iterations (>= 1).

    Returns:
        The converged :class:`ThermalMap`.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    netlist = placement.netlist
    power = power_model.estimate(netlist, activity)
    thermal_map = simulate_placement(placement, power, package=package, nx=nx, ny=ny)
    for _ in range(iterations - 1):
        cell_temps = {}
        grid = grid_for_placement(placement, package=package, nx=nx, ny=ny)
        origin_x = -placement.floorplan.die_margin
        origin_y = -placement.floorplan.die_margin
        bin_w = grid.width_um / nx
        bin_h = grid.height_um / ny
        for cell in placement.placed_cells(include_fillers=False):
            cx, cy = cell.center
            ix = min(max(int((cx - origin_x) / bin_w), 0), nx - 1)
            iy = min(max(int((cy - origin_y) / bin_h), 0), ny - 1)
            cell_temps[cell.name] = float(thermal_map.temperatures[iy, ix])
        power = power_model.estimate_with_temperature_map(netlist, activity, cell_temps)
        thermal_map = simulate_placement(placement, power, package=package, nx=nx, ny=ny)
    return thermal_map
