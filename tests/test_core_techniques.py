"""Tests for the three whitespace-allocation techniques.

These are the paper's contribution, so the tests check the structural
invariants each transformation must respect (legality, unchanged logic cell
set, zero-power fillers, correct area accounting) and the thermally relevant
behaviour (cell density drops where it should).
"""

import pytest

from repro.core import (
    apply_default_spread,
    apply_empty_row_insertion,
    apply_hotspot_wrapper,
    detect_hotspots,
    plan_insertion_points,
    rows_for_overhead,
)
from repro.placement import Rect, density_in_rect


@pytest.fixture(scope="module")
def detected(small_placement_module, small_power_module, small_thermal_module):
    return detect_hotspots(
        small_thermal_module,
        small_placement_module,
        power=small_power_module,
        threshold_fraction=0.5,
    )


@pytest.fixture(scope="module")
def detected_tight(small_placement_module, small_power_module, small_thermal_module):
    """Tight hotspots (high threshold), as the hotspot wrapper expects."""
    return detect_hotspots(
        small_thermal_module,
        small_placement_module,
        power=small_power_module,
        threshold_fraction=0.85,
    )


# Module-scoped aliases of the session fixtures so the module fixture above
# can depend on them without re-running the expensive setup.
@pytest.fixture(scope="module")
def small_placement_module(small_placement):
    return small_placement


@pytest.fixture(scope="module")
def small_power_module(small_power):
    return small_power


@pytest.fixture(scope="module")
def small_thermal_module(small_thermal):
    return small_thermal


def _logic_cell_names(placement):
    return {c.name for c in placement.netlist.logic_cells()}


class TestDefaultSpread:
    def test_area_overhead_achieved(self, small_placement):
        result = apply_default_spread(small_placement, 0.20, use_quadratic=False,
                                      detailed=False)
        assert result.actual_overhead >= 0.20 - 1e-9
        assert result.actual_overhead < 0.30
        assert result.utilization < small_placement.utilization()

    def test_baseline_untouched(self, small_placement):
        before = {c.name: (c.x, c.y) for c in small_placement.netlist.logic_cells()}
        apply_default_spread(small_placement, 0.15, use_quadratic=False, detailed=False)
        after = {c.name: (c.x, c.y) for c in small_placement.netlist.logic_cells()}
        assert before == after

    def test_logic_cells_preserved(self, small_placement):
        result = apply_default_spread(small_placement, 0.15, use_quadratic=False,
                                      detailed=False)
        assert _logic_cell_names(result.placement) == _logic_cell_names(small_placement)

    def test_placement_is_legal_with_fillers(self, small_placement):
        result = apply_default_spread(small_placement, 0.15, use_quadratic=False,
                                      detailed=False, add_fillers=True)
        assert result.num_fillers > 0
        assert result.placement.check_legal() == []

    def test_zero_overhead_allowed(self, small_placement):
        result = apply_default_spread(small_placement, 0.0, use_quadratic=False,
                                      detailed=False, add_fillers=False)
        assert result.actual_overhead == pytest.approx(0.0, abs=0.05)

    def test_negative_overhead_rejected(self, small_placement):
        with pytest.raises(ValueError):
            apply_default_spread(small_placement, -0.1)


class TestEmptyRowInsertion:
    def test_rows_for_overhead(self, small_placement):
        rows = rows_for_overhead(small_placement, 0.161)
        expected = 0.161 * small_placement.floorplan.num_rows
        assert rows >= expected - 1e-9
        assert rows <= expected + 1.0
        with pytest.raises(ValueError):
            rows_for_overhead(small_placement, -0.2)

    def test_requires_exactly_one_sizing_argument(self, small_placement, detected):
        with pytest.raises(ValueError):
            apply_empty_row_insertion(small_placement, detected)
        with pytest.raises(ValueError):
            apply_empty_row_insertion(small_placement, detected, num_rows=5,
                                      area_overhead=0.1)

    def test_core_grows_by_inserted_rows(self, small_placement, detected):
        result = apply_empty_row_insertion(small_placement, detected, num_rows=6,
                                           add_fillers=False)
        base = small_placement.floorplan
        assert result.inserted_rows == 6
        assert result.placement.floorplan.num_rows == base.num_rows + 6
        assert result.placement.floorplan.core_width == pytest.approx(base.core_width)
        assert result.actual_overhead == pytest.approx(6.0 / base.num_rows, rel=1e-6)

    def test_placement_stays_legal(self, small_placement, detected):
        result = apply_empty_row_insertion(small_placement, detected, num_rows=8)
        assert result.placement.check_legal() == []

    def test_logic_cells_preserved_and_x_unchanged(self, small_placement, detected):
        result = apply_empty_row_insertion(small_placement, detected, num_rows=8,
                                           add_fillers=False)
        assert _logic_cell_names(result.placement) == _logic_cell_names(small_placement)
        for cell in small_placement.netlist.logic_cells():
            moved = result.placement.netlist.cells[cell.name]
            assert moved.x == pytest.approx(cell.x)
            assert moved.y >= cell.y - 1e-9  # rows only ever shift upward

    def test_empty_rows_are_filler_only(self, small_placement, detected):
        result = apply_empty_row_insertion(small_placement, detected, num_rows=6)
        placement = result.placement
        # Rows that received no logic cells must contain only fillers.
        empty_rows = [
            row for row in placement.rows
            if row.cells and all(c.is_filler for c in row.cells)
        ]
        assert len(empty_rows) >= result.inserted_rows // 2

    def test_insertion_points_target_hotspot_rows(self, small_placement, detected):
        points = plan_insertion_points(small_placement, detected, 6)
        assert len(points) == 6
        hot_rows = set()
        for hotspot in detected:
            first, last = hotspot.row_span(small_placement)
            hot_rows.update(range(first, last + 1))
        assert sum(1 for p in points if p in hot_rows) >= len(points) // 2

    def test_no_hotspots_degrades_to_uniform(self, small_placement):
        points = plan_insertion_points(small_placement, [], 5)
        assert len(points) == 5

    def test_budget_larger_than_hotspot(self, small_placement, detected):
        many = small_placement.floorplan.num_rows
        result = apply_empty_row_insertion(small_placement, detected, num_rows=many,
                                           add_fillers=False)
        assert result.inserted_rows == many
        assert result.placement.check_legal() == []

    def test_power_density_drops_in_hotspot(self, small_placement, detected):
        hotspot = detected[0]
        result = apply_empty_row_insertion(small_placement, detected, num_rows=10,
                                           add_fillers=False)
        # The hotspot rectangle (stretched by the inserted rows) must have a
        # lower logic-cell density than before.
        before = density_in_rect(small_placement, hotspot.rect)
        grown = Rect(
            hotspot.rect.x0,
            hotspot.rect.y0,
            hotspot.rect.x1,
            hotspot.rect.y1 + 10 * small_placement.floorplan.row_height,
        )
        after = density_in_rect(result.placement, grown)
        assert after < before


class TestHotspotWrapper:
    def test_die_outline_unchanged(self, small_placement, detected_tight):
        result = apply_hotspot_wrapper(small_placement, detected_tight)
        assert result.placement.floorplan.core_area == pytest.approx(
            small_placement.floorplan.core_area
        )

    def test_placement_stays_legal(self, small_placement, detected_tight):
        result = apply_hotspot_wrapper(small_placement, detected_tight)
        assert result.placement.check_legal() == []

    def test_placement_stays_legal_even_for_huge_hotspots(self, small_placement, detected):
        # At a very low detection threshold the "hotspot" covers most of the
        # die; the wrapper must refuse to wrap it rather than corrupt the
        # placement.
        result = apply_hotspot_wrapper(small_placement, detected)
        assert result.placement.check_legal() == []

    def test_logic_cells_preserved(self, small_placement, detected_tight):
        result = apply_hotspot_wrapper(small_placement, detected_tight, add_fillers=False)
        assert _logic_cell_names(result.placement) == _logic_cell_names(small_placement)

    def test_bystanders_evicted_from_wrapper(self, small_placement, detected_tight):
        result = apply_hotspot_wrapper(small_placement, detected_tight, add_fillers=False)
        assert result.wrapped
        for wrapped in result.wrapped:
            inside = result.placement.cells_in_rect(wrapped.outer_rect)
            outsiders = [c for c in inside if c.unit not in wrapped.hot_units]
            # Allow the few cells the relocator reported as unmovable.
            assert len(outsiders) <= wrapped.num_unmoved

    def test_density_in_wrapper_decreases(self, small_placement, detected_tight):
        result = apply_hotspot_wrapper(small_placement, detected_tight, add_fillers=False)
        wrapped = result.wrapped[0]
        before = density_in_rect(small_placement, wrapped.outer_rect)
        after = density_in_rect(result.placement, wrapped.outer_rect)
        assert after < before

    def test_negative_ring_rejected(self, small_placement, detected_tight):
        with pytest.raises(ValueError):
            apply_hotspot_wrapper(small_placement, detected_tight, ring_width_um=-1.0)

    def test_max_hotspots_limits_wrapping(self, small_placement, detected_tight):
        result = apply_hotspot_wrapper(small_placement, detected_tight, max_hotspots=1)
        assert len(result.wrapped) <= 1

    def test_baseline_untouched(self, small_placement, detected_tight):
        before = {c.name: (c.x, c.y) for c in small_placement.netlist.logic_cells()}
        apply_hotspot_wrapper(small_placement, detected_tight)
        after = {c.name: (c.x, c.y) for c in small_placement.netlist.logic_cells()}
        assert before == after
