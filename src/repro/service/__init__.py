"""Campaign service: the long-running ``repro serve`` daemon and its client.

The service tier turns the campaign runner into a shared resource: one
:class:`SweepServer` holds the prepared experiment baselines, the solver
cache and the persistent result store, and many concurrent clients submit
small sweep requests over a newline-delimited JSON socket protocol
(:class:`SweepClient`).  The daemon answers stored points straight from
the result store, deduplicates identical in-flight points *across
requests*, and funnels the remaining misses through a gather window into
cross-request, geometry-grouped multi-RHS batches — many small requests
amortized into a few big warm-started solves.
"""

from .client import ServiceError, SweepClient, request_once
from .server import SweepServer

__all__ = ["SweepServer", "SweepClient", "ServiceError", "request_once"]
