"""DEF-style placement reader and writer.

Placement information is exchanged in a small DEF-like text format so that a
placed design can be saved, diffed, and re-loaded independently of the logic
netlist (which travels as structural Verilog, see
:mod:`repro.netlist.verilog`).

Format::

    DESIGN <name> ;
    DIEAREA ( 0 0 ) ( <width_um> <height_um> ) ;
    ROWS <num_rows> HEIGHT <row_height_um> ;
    COMPONENTS <n> ;
      - <instance> <master> + PLACED ( <x_um> <y_um> ) ROW <row> ;
      ...
    END COMPONENTS
    END DESIGN

Coordinates are written in micrometres with fixed precision.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from .netlist import Netlist


@dataclass
class DefDie:
    """Die/row geometry recorded in a DEF-like file."""

    width: float
    height: float
    num_rows: int
    row_height: float


_DESIGN_RE = re.compile(r"DESIGN\s+(\S+)\s*;")
_DIE_RE = re.compile(r"DIEAREA\s*\(\s*([\d.eE+-]+)\s+([\d.eE+-]+)\s*\)\s*\(\s*([\d.eE+-]+)\s+([\d.eE+-]+)\s*\)\s*;")
_ROWS_RE = re.compile(r"ROWS\s+(\d+)\s+HEIGHT\s+([\d.eE+-]+)\s*;")
_COMP_RE = re.compile(
    r"-\s+(\S+)\s+(\S+)\s+\+\s+PLACED\s*\(\s*([\d.eE+-]+)\s+([\d.eE+-]+)\s*\)\s*(?:ROW\s+(-?\d+))?\s*;"
)


def write_def(netlist: Netlist, die_width: float, die_height: float,
              num_rows: int, row_height: float) -> str:
    """Serialize the placement of a netlist to DEF-like text.

    Args:
        netlist: The placed design (unplaced cells are skipped).
        die_width: Die width in micrometres.
        die_height: Die height in micrometres.
        num_rows: Number of placement rows.
        row_height: Row height in micrometres.

    Returns:
        The DEF-like text.
    """
    placed = [c for c in netlist.cells.values() if c.is_placed]
    lines = [
        f"DESIGN {netlist.name} ;",
        f"DIEAREA ( 0 0 ) ( {die_width:.4f} {die_height:.4f} ) ;",
        f"ROWS {num_rows} HEIGHT {row_height:.4f} ;",
        f"COMPONENTS {len(placed)} ;",
    ]
    for inst in placed:
        row = inst.row if inst.row is not None else -1
        lines.append(
            f"  - {inst.name} {inst.master.name} + PLACED "
            f"( {inst.x:.4f} {inst.y:.4f} ) ROW {row} ;"
        )
    lines.append("END COMPONENTS")
    lines.append("END DESIGN")
    lines.append("")
    return "\n".join(lines)


def read_def(text: str, netlist: Netlist) -> DefDie:
    """Apply placement from DEF-like text onto an existing netlist.

    Instances named in the DEF that do not exist in the netlist are created
    (this is how filler cells written by the area-management tool come back
    on re-import).

    Args:
        text: DEF-like text produced by :func:`write_def`.
        netlist: The design to place; modified in place.

    Returns:
        The :class:`DefDie` geometry parsed from the header.

    Raises:
        ValueError: If the header is missing or malformed.
    """
    design_match = _DESIGN_RE.search(text)
    die_match = _DIE_RE.search(text)
    rows_match = _ROWS_RE.search(text)
    if design_match is None or die_match is None or rows_match is None:
        raise ValueError("malformed DEF: missing DESIGN / DIEAREA / ROWS header")

    die = DefDie(
        width=float(die_match.group(3)) - float(die_match.group(1)),
        height=float(die_match.group(4)) - float(die_match.group(2)),
        num_rows=int(rows_match.group(1)),
        row_height=float(rows_match.group(2)),
    )

    for comp in _COMP_RE.finditer(text):
        inst_name, master_name, x, y, row = comp.groups()
        inst = netlist.cells.get(inst_name)
        if inst is None:
            inst = netlist.add_cell(inst_name, master_name)
        row_idx: Optional[int] = int(row) if row is not None and int(row) >= 0 else None
        inst.place(float(x), float(y), row_idx)

    return die
