"""End-to-end experiment flow (place -> power -> thermal -> area management)."""

from .experiment import (
    ExperimentSetup,
    StrategyOutcome,
    concentrated_hotspot_table,
    evaluate_strategy,
    sweep_overheads,
)

__all__ = [
    "ExperimentSetup",
    "StrategyOutcome",
    "concentrated_hotspot_table",
    "evaluate_strategy",
    "sweep_overheads",
]
