"""Tests for the pluggable whitespace-strategy API.

Covers the registry (registration, duplicate rejection, resolution with
parameters), the spec grammar round-trips, the deprecated ``Strategy``
enum shim, and outcome sanity for the two new built-in strategies
(``hybrid`` and ``gradient``) on the quickstart circuit.
"""

import numpy as np
import pytest

from repro.core import (
    AreaManagementConfig,
    AreaManager,
    ERI_HOTSPOT_THRESHOLD,
    HW_HOTSPOT_THRESHOLD,
    Strategy,
    StrategyContext,
    StrategyResult,
    WhitespaceStrategy,
    apply_row_insertions,
    available_strategies,
    format_strategy_spec,
    parse_strategy_spec,
    plan_gradient_insertion_points,
    register_strategy,
    resolve_strategy,
    row_temperature_weights,
    split_spec_list,
    strategy_class,
    unregister_strategy,
)


class _NullStrategy(WhitespaceStrategy):
    """Do-nothing strategy used to exercise the registry."""

    name = "null-test"
    default_hotspot_threshold = 0.6
    param_defaults = {"shift": 0, "scale": 1.0, "enabled": True}

    def apply(self, ctx: StrategyContext) -> StrategyResult:
        return StrategyResult(placement=ctx.placement, actual_overhead=0.0)


@pytest.fixture()
def null_strategy():
    register_strategy(_NullStrategy)
    yield _NullStrategy
    unregister_strategy(_NullStrategy.name)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_strategies()
        for name in ("default", "eri", "hw", "hybrid", "gradient"):
            assert name in names

    def test_register_and_resolve(self, null_strategy):
        assert "null-test" in available_strategies()
        assert strategy_class("null-test") is null_strategy
        resolved = resolve_strategy("null-test:shift=3,scale=2.5,enabled=false")
        assert isinstance(resolved, null_strategy)
        assert resolved.overrides == {"shift": 3, "scale": 2.5, "enabled": False}
        assert resolved.params["shift"] == 3

    def test_duplicate_name_rejected(self, null_strategy):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(null_strategy)
        # But replace=True swaps the registration in.
        register_strategy(replace=True)(null_strategy)
        assert strategy_class("null-test") is null_strategy

    def test_rejects_non_strategy(self):
        with pytest.raises(TypeError, match="WhitespaceStrategy subclass"):
            register_strategy(dict)

    def test_rejects_bad_name(self):
        class BadName(WhitespaceStrategy):
            name = "Bad Name!"

            def apply(self, ctx):
                raise NotImplementedError

        with pytest.raises(ValueError, match="lowercase 'name'"):
            register_strategy(BadName)

    def test_rejects_abstract(self):
        class NoApply(WhitespaceStrategy):
            name = "no-apply"

        with pytest.raises(TypeError, match="does not implement apply"):
            register_strategy(NoApply)

    def test_unknown_name_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'gradient'"):
            resolve_strategy("gradiant")

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="has no parameter 'rings'"):
            resolve_strategy("hw:rings=9")

    def test_param_type_coercion_and_rejection(self):
        assert resolve_strategy("hw:ring_um=8").overrides["ring_um"] == 8.0
        assert resolve_strategy("hw:max_source_units=3").overrides[
            "max_source_units"
        ] == 3
        with pytest.raises(ValueError, match="expects float"):
            resolve_strategy("hw:ring_um=wide")

    def test_int_param_rejects_fractional_floats(self):
        with pytest.raises(ValueError, match="expects int"):
            resolve_strategy("hw:max_source_units=2.7")
        # Integral floats are exact, so they pass.
        assert resolve_strategy("hw:max_source_units=3.0").overrides[
            "max_source_units"
        ] == 3

    def test_bool_param_accepts_numeric_spellings(self, null_strategy):
        assert resolve_strategy("null-test:enabled=1").overrides["enabled"] is True
        assert resolve_strategy("null-test:enabled=0").overrides["enabled"] is False
        assert resolve_strategy("null-test:enabled=off").overrides["enabled"] is False
        with pytest.raises(ValueError, match="expects bool"):
            resolve_strategy("null-test:enabled=2")

    def test_range_validation_happens_at_resolve_time(self):
        # Bad ranges must fail up front (the CLI gate), not deep in apply().
        with pytest.raises(ValueError, match="exponent must be positive"):
            resolve_strategy("gradient:exponent=-2")
        with pytest.raises(ValueError, match="ring_um must be non-negative"):
            resolve_strategy("hw:ring_um=-1")
        with pytest.raises(ValueError, match="max_source_units must be >= 1"):
            resolve_strategy("hybrid:max_source_units=0")
        with pytest.raises(ValueError, match="tight_threshold must be in"):
            resolve_strategy("hybrid:tight_threshold=1.5")

    def test_universal_hotspot_threshold_param(self):
        resolved = resolve_strategy("eri:hotspot_threshold=0.9")
        assert resolved.effective_hotspot_threshold() == pytest.approx(0.9)
        with pytest.raises(ValueError, match="hotspot_threshold"):
            resolve_strategy("eri:hotspot_threshold=1.5")


class TestSpecGrammar:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("hw", ("hw", {})),
            ("HW", ("hw", {})),
            ("hw:ring_um=8,max_source_units=3", ("hw", {"ring_um": 8, "max_source_units": 3})),
            ({"name": "hw", "ring_um": 8}, ("hw", {"ring_um": 8})),
            ({"name": "hw", "params": {"ring_um": 8}}, ("hw", {"ring_um": 8})),
        ],
    )
    def test_parse_forms(self, spec, expected):
        assert parse_strategy_spec(spec) == expected

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed parameter"):
            parse_strategy_spec("hw:ring_um")
        with pytest.raises(ValueError, match="empty strategy name"):
            parse_strategy_spec(":x=1")
        with pytest.raises(ValueError, match="'name' key"):
            parse_strategy_spec({"ring_um": 8})
        with pytest.raises(TypeError, match="strategy spec"):
            parse_strategy_spec(42)

    def test_format_parse_round_trip(self):
        name, params = "hw", {"ring_um": 8.0, "max_source_units": 3}
        text = format_strategy_spec(name, params)
        assert parse_strategy_spec(text) == (name, params)

    def test_resolve_spec_round_trip(self):
        resolved = resolve_strategy("hw:max_source_units=3,ring_um=8")
        again = resolve_strategy(resolved.spec)
        assert again.spec == resolved.spec
        assert again == resolved
        assert resolve_strategy("eri").spec == "eri"

    def test_split_spec_list_keeps_param_commas(self):
        text = "default,hw:ring_um=8,max_source_units=3,gradient:exponent=2"
        assert split_spec_list(text) == [
            "default",
            "hw:ring_um=8,max_source_units=3",
            "gradient:exponent=2",
        ]
        assert split_spec_list("eri") == ["eri"]
        assert split_spec_list(" default , eri ") == ["default", "eri"]


class TestDeprecatedEnumShim:
    def test_parse_still_resolves_builtins(self):
        with pytest.warns(DeprecationWarning):
            assert Strategy.parse("ERI") is Strategy.EMPTY_ROW_INSERTION

    def test_parse_raises_type_error_on_non_string(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="str or Strategy"):
                Strategy.parse(3.14)

    def test_parse_error_lists_registered_names(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="hybrid"):
                Strategy.parse("bogus")

    def test_parse_points_registered_non_enum_names_at_resolver(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="resolve_strategy"):
                Strategy.parse("hybrid")

    def test_config_accepts_enum_silently(self):
        # Enum members are plain strings; the deprecation warning lives in
        # Strategy.parse, so config construction (and replace() round-trips
        # of the canonicalised enum field) must not warn.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            config = AreaManagementConfig(strategy=Strategy.HOTSPOT_WRAPPER)
            import dataclasses

            dataclasses.replace(config, area_overhead=0.3)
        assert config.strategy is Strategy.HOTSPOT_WRAPPER
        assert config.effective_hotspot_threshold == HW_HOTSPOT_THRESHOLD

    def test_enum_members_are_plain_specs(self):
        resolved = resolve_strategy(Strategy.DEFAULT)
        assert resolved.name == "default"


class TestConfigResolution:
    def test_bare_builtin_names_resolve_to_enum(self):
        config = AreaManagementConfig(strategy="hw")
        assert config.strategy is Strategy.HOTSPOT_WRAPPER
        assert config.strategy_impl.overrides == {}

    def test_parameterized_spec(self):
        config = AreaManagementConfig(strategy="hw:ring_um=9")
        # With overrides bound the field keeps the canonical spec, so
        # equality and dataclasses.replace() preserve the parameters.
        assert config.strategy == "hw:ring_um=9.0"
        assert config.strategy_impl.overrides == {"ring_um": 9.0}
        assert config != AreaManagementConfig(strategy="hw")
        import dataclasses

        copied = dataclasses.replace(config, area_overhead=0.3)
        assert copied.strategy_impl.overrides == {"ring_um": 9.0}
        assert copied.area_overhead == 0.3

    def test_new_strategy_names_stay_strings(self):
        config = AreaManagementConfig(strategy="hybrid")
        assert config.strategy == "hybrid"
        assert config.effective_hotspot_threshold == ERI_HOTSPOT_THRESHOLD

    def test_spec_threshold_param_drives_detection(self):
        config = AreaManagementConfig(strategy="eri:hotspot_threshold=0.9")
        assert config.effective_hotspot_threshold == pytest.approx(0.9)
        # The explicit config field still wins over the spec parameter.
        config = AreaManagementConfig(
            strategy="eri:hotspot_threshold=0.9", hotspot_threshold=0.4
        )
        assert config.effective_hotspot_threshold == pytest.approx(0.4)


class TestGradientPlanner:
    def test_weights_follow_row_temperature(self, small_placement, small_thermal):
        weights = row_temperature_weights(small_placement, small_thermal)
        assert weights.shape == (small_placement.floorplan.num_rows,)
        assert (weights >= 0.0).all()
        assert weights.max() == pytest.approx(1.0)

    def test_budget_is_conserved_and_deterministic(self, small_placement, small_thermal):
        points = plan_gradient_insertion_points(small_placement, small_thermal, 7)
        assert len(points) == 7
        assert points == sorted(points)
        assert points == plan_gradient_insertion_points(small_placement, small_thermal, 7)
        assert plan_gradient_insertion_points(small_placement, small_thermal, 0) == []

    def test_hot_rows_receive_more(self, small_placement, small_thermal):
        weights = row_temperature_weights(small_placement, small_thermal)
        points = plan_gradient_insertion_points(small_placement, small_thermal, 10)
        counts = np.bincount(points, minlength=len(weights))
        hot = weights >= np.percentile(weights, 75)
        cold = weights <= np.percentile(weights, 25)
        assert counts[hot].sum() > counts[cold].sum()

    def test_apply_row_insertions_validates_points(self, small_placement):
        with pytest.raises(ValueError, match="outside baseline rows"):
            apply_row_insertions(small_placement, [10_000])


class TestNewStrategiesOutcomes:
    """`hybrid` and `gradient` must actually cool the quickstart circuit."""

    @pytest.fixture(scope="class")
    def inputs(self, small_placement, small_power, small_thermal):
        return small_placement, small_power, small_thermal

    @pytest.mark.parametrize("spec", ["hybrid", "gradient"])
    def test_reduction_positive_at_15_percent(self, inputs, spec):
        placement, power, thermal = inputs
        manager = AreaManager(
            AreaManagementConfig(strategy=spec, area_overhead=0.15, add_fillers=False)
        )
        result, new_map = manager.optimize_and_resimulate(placement, power, thermal)
        assert result.strategy == spec
        assert result.actual_overhead >= 0.15 - 1e-9
        assert result.inserted_rows > 0
        assert result.placement.check_legal() == []
        assert new_map.reduction_versus(thermal) > 0.0

    def test_hybrid_wraps_after_inserting_rows(self, inputs):
        placement, power, thermal = inputs
        manager = AreaManager(
            AreaManagementConfig(strategy="hybrid", area_overhead=0.2, add_fillers=False)
        )
        result = manager.optimize(placement, power, thermal)
        assert result.placement.floorplan.num_rows > placement.floorplan.num_rows
        assert "eri" in result.details and "wrapper" in result.details

    def test_gradient_exponent_sharpens_allocation(self, inputs):
        placement, power, thermal = inputs
        flat = resolve_strategy("gradient:exponent=0.5")
        sharp = resolve_strategy("gradient:exponent=3")
        config = AreaManagementConfig(strategy="gradient", area_overhead=0.15)
        ctx_args = dict(placement=placement, power=power, thermal_map=thermal,
                        hotspots=[], config=config)
        flat_rows = flat.apply(StrategyContext(**ctx_args)).details.insertion_points
        sharp_rows = sharp.apply(StrategyContext(**ctx_args)).details.insertion_points
        # A sharper exponent concentrates the budget on fewer distinct rows.
        assert len(set(sharp_rows)) <= len(set(flat_rows))


class TestCustomStrategyEndToEnd:
    """A strategy registered from outside ``src/repro`` runs through the flow."""

    def test_custom_strategy_through_area_manager(
        self, small_placement, small_power, small_thermal
    ):
        @register_strategy
        class EveryKthRow(WhitespaceStrategy):
            """Insert an empty row below every k-th baseline row."""

            name = "every-kth-row"
            param_defaults = {"k": 4}

            def apply(self, ctx: StrategyContext) -> StrategyResult:
                from repro.core import rows_for_overhead

                k = int(self.param("k"))
                budget = rows_for_overhead(ctx.placement, ctx.area_overhead)
                num_rows = ctx.placement.floorplan.num_rows
                points = [(i * k) % num_rows for i in range(budget)]
                result = apply_row_insertions(
                    ctx.placement, sorted(points),
                    requested_overhead=ctx.area_overhead,
                    add_fillers=ctx.add_fillers,
                )
                return StrategyResult(
                    placement=result.placement,
                    actual_overhead=result.actual_overhead,
                    inserted_rows=result.inserted_rows,
                    num_fillers=result.num_fillers,
                    details=result,
                )

        try:
            manager = AreaManager(
                AreaManagementConfig(
                    strategy="every-kth-row:k=3", area_overhead=0.1, add_fillers=False
                )
            )
            result = manager.optimize(small_placement, small_power, small_thermal)
            assert result.strategy == "every-kth-row:k=3"
            assert result.inserted_rows > 0
            assert result.placement.check_legal() == []
        finally:
            unregister_strategy("every-kth-row")
