"""Timing substrate: delay models and static timing analysis."""

from .delay import DelayModel
from .sta import (
    DEFAULT_CLOCK_PERIOD_PS,
    StaticTimingAnalyzer,
    TimingPath,
    TimingReport,
    analyze_timing,
)

__all__ = [
    "DelayModel",
    "DEFAULT_CLOCK_PERIOD_PS",
    "StaticTimingAnalyzer",
    "TimingPath",
    "TimingReport",
    "analyze_timing",
]
