"""Equivalent RC (steady-state: resistive) thermal network.

The paper's thermal model [10] transforms Fourier's heat-conduction
equation into a difference equation over the thermal-cell mesh and solves
the equivalent electrical network with SPICE.  At steady state the
capacitors drop out and "the SPICE netlist becomes a netlist of resistors,
current sources and voltage sources": temperatures are node voltages,
power dissipation is a current source into the active-layer node, and the
ambient is a voltage source behind the package resistances.

This module assembles exactly that network as a sparse conductance matrix:

* lateral conductances between neighbouring cells of the same layer,
* vertical conductances between vertically adjacent cells (series
  combination of the two half-cell resistances),
* boundary conductances from the top surface and (optionally) the lateral
  faces to ambient,
* a per-area conductance from every bottom-layer cell into a single
  *package node*, which is tied to ambient through the lumped package
  resistance.

Temperatures are solved as rises above ambient, so the ambient voltage
source is folded into the reference (ground) node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .grid import ThermalGrid


@dataclass
class NetworkElements:
    """Raw element lists of the thermal network (for SPICE export).

    Attributes:
        conductances: List of ``(node_a, node_b, conductance)`` tuples where
            ``-1`` denotes the ambient (ground) node.
        num_nodes: Number of non-ambient nodes (grid nodes plus the package
            node when present).
        package_node: Index of the package node, or ``None``.
    """

    conductances: List[Tuple[int, int, float]]
    num_nodes: int
    package_node: Optional[int]


class ThermalNetwork:
    """Sparse steady-state thermal network over a :class:`ThermalGrid`.

    Args:
        grid: The thermal mesh (geometry + layer stack).

    Attributes:
        grid: The mesh.
        num_unknowns: Size of the linear system (grid nodes + package node).
        package_node: Flat index of the package node, or ``None`` when the
            lumped package resistance is zero (direct convection only).
    """

    def __init__(self, grid: ThermalGrid) -> None:
        self.grid = grid
        package = grid.package
        self._has_package_node = package.package_resistance > 0.0
        self.num_unknowns = grid.num_nodes + (1 if self._has_package_node else 0)
        self.package_node: Optional[int] = (
            grid.num_nodes if self._has_package_node else None
        )
        #: Coupling conductance vector from grid nodes to the package node
        #: (zero everywhere except the bottom layer); empty when there is no
        #: package node.
        self.package_coupling: np.ndarray = np.zeros(0)
        #: Diagonal entry of the package node (sum of couplings plus the
        #: package-to-ambient conductance).
        self.package_diagonal: float = 0.0
        self._grid_matrix = self._assemble()

    # ------------------------------------------------------------------

    @property
    def grid_matrix(self) -> sp.csr_matrix:
        """Conductance matrix over the grid nodes only (7-point stencil).

        The coupling of the bottom layer to the lumped package node appears
        on this matrix's diagonal; the package node itself is kept out of
        the matrix (see :attr:`package_coupling` / :attr:`package_diagonal`)
        so sparse factorizations never see its dense row — the solver
        eliminates it with a rank-1 (Sherman-Morrison) correction.
        """
        return self._grid_matrix

    @property
    def conductance_matrix(self) -> sp.csr_matrix:
        """The full symmetric conductance matrix including the package node.

        Assembled on demand (it contains one dense row/column); prefer
        :attr:`grid_matrix` plus the package coupling for solving.
        """
        if not self._has_package_node:
            return self._grid_matrix
        n_grid = self.grid.num_nodes
        coupling = sp.coo_matrix(
            (
                self.package_coupling,
                (np.arange(n_grid), np.full(n_grid, 0)),
            ),
            shape=(n_grid, 1),
        ).tocsr()
        top = sp.hstack([self._grid_matrix, -coupling])
        bottom = sp.hstack(
            [-coupling.T, sp.coo_matrix(([self.package_diagonal], ([0], [0])), shape=(1, 1))]
        )
        return sp.vstack([top, bottom]).tocsr()

    def _assemble(self) -> sp.csr_matrix:
        grid = self.grid
        package = grid.package
        nx, ny, nz = grid.nx, grid.ny, grid.nz
        n_grid = grid.num_nodes
        n = n_grid

        diag = np.zeros(n)
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []

        def add_pairs(a: np.ndarray, b: np.ndarray, g: np.ndarray) -> None:
            """Add symmetric conductances between node arrays ``a`` and ``b``."""
            np.add.at(diag, a, g)
            np.add.at(diag, b, g)
            rows.append(a)
            cols.append(b)
            vals.append(-g)
            rows.append(b)
            cols.append(a)
            vals.append(-g)

        def add_to_ground(a: np.ndarray, g: np.ndarray) -> None:
            """Add conductances from node array ``a`` to the ambient node."""
            np.add.at(diag, a, g)

        dx, dy = grid.dx_m, grid.dy_m
        area = grid.cell_area_m2

        ix = np.arange(nx)
        iy = np.arange(ny)
        ixg, iyg = np.meshgrid(ix, iy)  # shape (ny, nx)

        for layer in range(nz):
            k = grid.conductivity(layer)
            dz = grid.dz_m(layer)
            base = layer * nx * ny
            node = base + iyg * nx + ixg  # (ny, nx)

            # Lateral x neighbours.
            g_x = k * (dy * dz) / dx
            a = node[:, :-1].ravel()
            b = node[:, 1:].ravel()
            add_pairs(a, b, np.full(a.shape, g_x))

            # Lateral y neighbours.
            g_y = k * (dx * dz) / dy
            a = node[:-1, :].ravel()
            b = node[1:, :].ravel()
            add_pairs(a, b, np.full(a.shape, g_y))

            # Vertical neighbours to the layer below.
            if layer + 1 < nz:
                k_below = grid.conductivity(layer + 1)
                dz_below = grid.dz_m(layer + 1)
                resistance = dz / (2.0 * k * area) + dz_below / (2.0 * k_below * area)
                g_v = 1.0 / resistance
                a = node.ravel()
                b = (node + nx * ny).ravel()
                add_pairs(a, b, np.full(a.shape, g_v))

            # Lateral boundary faces to ambient.
            if package.lateral_htc > 0.0:
                g_lx = package.lateral_htc * dy * dz
                g_ly = package.lateral_htc * dx * dz
                add_to_ground(node[:, 0].ravel(), np.full(ny, g_lx))
                add_to_ground(node[:, -1].ravel(), np.full(ny, g_lx))
                add_to_ground(node[0, :].ravel(), np.full(nx, g_ly))
                add_to_ground(node[-1, :].ravel(), np.full(nx, g_ly))

        # Top surface convection (layer 0) straight to ambient.
        if package.top_htc > 0.0:
            top_nodes = np.arange(nx * ny)
            half_res = grid.dz_m(0) / (2.0 * grid.conductivity(0) * area)
            g_top = 1.0 / (half_res + 1.0 / (package.top_htc * area))
            add_to_ground(top_nodes, np.full(top_nodes.shape, g_top))

        # Bottom surface: per-cell conductance into the package node (or
        # directly to ambient when there is no lumped package resistance).
        bottom_layer = nz - 1
        bottom_nodes = np.arange(nx * ny) + bottom_layer * nx * ny
        half_res = grid.dz_m(bottom_layer) / (2.0 * grid.conductivity(bottom_layer) * area)
        g_bottom = 1.0 / (half_res + 1.0 / (package.bottom_htc * area))
        g_bottom_arr = np.full(bottom_nodes.shape, g_bottom)
        if self._has_package_node:
            # The coupling to the package node contributes to the bottom
            # nodes' diagonal; the off-diagonal part is kept as a separate
            # rank-1 coupling so the grid matrix stays a pure 7-point stencil.
            add_to_ground(bottom_nodes, g_bottom_arr)
            self.package_coupling = np.zeros(n_grid)
            self.package_coupling[bottom_nodes] = g_bottom
            self.package_diagonal = (
                float(g_bottom_arr.sum()) + 1.0 / package.package_resistance
            )
        else:
            add_to_ground(bottom_nodes, g_bottom_arr)

        row_idx = np.concatenate(rows) if rows else np.array([], dtype=int)
        col_idx = np.concatenate(cols) if cols else np.array([], dtype=int)
        val = np.concatenate(vals) if vals else np.array([], dtype=float)

        matrix = sp.coo_matrix((val, (row_idx, col_idx)), shape=(n, n)).tocsr()
        matrix = matrix + sp.diags(diag)
        return matrix

    # ------------------------------------------------------------------

    def validate_power_map(self, power_per_cell: np.ndarray) -> None:
        """Check a power map's shape against the grid.

        Raises:
            ValueError: If the power map shape does not match the grid.
        """
        grid = self.grid
        if power_per_cell.shape != (grid.ny, grid.nx):
            raise ValueError(
                f"power map shape {power_per_cell.shape} does not match grid "
                f"({grid.ny}, {grid.nx})"
            )

    def fill_grid_rhs(self, power_per_cell: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Write the grid-node RHS into a reusable buffer.

        Only the active-layer span is ever non-zero, so a caller that keeps
        ``out`` zero elsewhere (as :class:`~repro.thermal.solver.ThermalSolver`
        does) pays one slice assignment per solve instead of a fresh
        full-length allocation.

        Args:
            power_per_cell: Array of shape ``(ny, nx)`` with watts per cell.
            out: Vector of length ``grid.num_nodes`` to fill in place.

        Returns:
            ``out``.
        """
        self.validate_power_map(power_per_cell)
        grid = self.grid
        offset = grid.active_layer_offset()
        out[offset: offset + grid.nx * grid.ny] = power_per_cell.ravel()
        return out

    def power_vector(self, power_per_cell: np.ndarray) -> np.ndarray:
        """Build the right-hand-side current vector from a 2-D power map.

        Convenience path (SPICE export, tests); the solver's hot loop uses
        :meth:`fill_grid_rhs` with a reused buffer instead.

        Args:
            power_per_cell: Array of shape ``(ny, nx)`` with the power in
                watts dissipated in each thermal cell of the active layer.

        Returns:
            Vector of length ``num_unknowns`` with the injected power.

        Raises:
            ValueError: If the power map shape does not match the grid.
        """
        rhs = np.zeros(self.num_unknowns)
        self.fill_grid_rhs(power_per_cell, rhs[: self.grid.num_nodes])
        return rhs

    def elements(self) -> NetworkElements:
        """Enumerate the network's conductances for SPICE export.

        Ambient is reported as node ``-1``.  Node-to-ground conductances are
        recovered from the matrix diagonal minus the off-diagonal sums.  The
        enumeration is pure array arithmetic over the COO triplets, so SPICE
        export stays O(nnz) in NumPy rather than interpreter time.
        """
        full = self.conductance_matrix
        matrix = full.tocoo()
        row, col, val = matrix.row, matrix.col, matrix.data

        upper = (row < col) & (np.abs(val) > 1e-18)
        conductances: List[Tuple[int, int, float]] = list(
            zip(row[upper].tolist(), col[upper].tolist(), (-val[upper]).tolist())
        )

        offdiag_sum = np.zeros(self.num_unknowns)
        offdiag = row != col
        np.add.at(offdiag_sum, row[offdiag], -val[offdiag])
        ground = full.diagonal() - offdiag_sum
        grounded = ground > 1e-18
        conductances.extend(
            (int(node), -1, float(g))
            for node, g in zip(np.nonzero(grounded)[0].tolist(), ground[grounded].tolist())
        )
        return NetworkElements(
            conductances=conductances,
            num_nodes=self.num_unknowns,
            package_node=self.package_node,
        )

    def _elements_reference(self) -> NetworkElements:
        """Per-nonzero Python enumeration (executable spec for tests)."""
        full = self.conductance_matrix
        matrix = full.tocoo()
        conductances: List[Tuple[int, int, float]] = []
        offdiag_sum = np.zeros(self.num_unknowns)
        for r, c, v in zip(matrix.row, matrix.col, matrix.data):
            if r < c and abs(v) > 1e-18:
                conductances.append((int(r), int(c), float(-v)))
            if r != c:
                offdiag_sum[r] += -v
        diag = full.diagonal()
        ground = diag - offdiag_sum
        for node, g in enumerate(ground):
            if g > 1e-18:
                conductances.append((int(node), -1, float(g)))
        return NetworkElements(
            conductances=conductances,
            num_nodes=self.num_unknowns,
            package_node=self.package_node,
        )
