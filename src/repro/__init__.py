"""repro: reproduction of "Post-placement Temperature Reduction Techniques".

A self-contained Python library reproducing Liu & Nannarelli et al.,
DATE 2010: two post-placement techniques — empty row insertion and the
hotspot wrapper — that reduce peak on-chip temperature by allocating a
given area overhead as whitespace concentrated in thermal hotspots, plus
every substrate the evaluation needs (synthetic benchmark generation,
row-based placement, power estimation, an RC thermal simulator, and static
timing analysis).

Typical usage::

    from repro import bench, core, flow

    netlist = bench.build_synthetic_circuit()
    workload = bench.scattered_hotspots_workload(netlist)
    setup = flow.ExperimentSetup.prepare(netlist, workload)
    outcome = flow.evaluate_strategy(setup, "eri", area_overhead=0.15)
    print(outcome.temperature_reduction)

Whole figure/table grids run through the campaign runner
(:class:`repro.flow.Campaign`), which shares one geometry-keyed solver
cache (:class:`repro.flow.SolverCache`) across all points and persists
records to JSON/CSV; ``python -m repro sweep`` drives the same machinery
from the shell (see :mod:`repro.cli`).
"""

from . import (
    analysis,
    bench,
    core,
    engine,
    flow,
    netlist,
    placement,
    power,
    service,
    thermal,
    timing,
)
from .engine import get_engine, set_engine, use_engine

__version__ = "1.3.0"

__all__ = [
    "analysis",
    "bench",
    "core",
    "flow",
    "netlist",
    "placement",
    "power",
    "service",
    "thermal",
    "timing",
    "engine",
    "get_engine",
    "set_engine",
    "use_engine",
    "__version__",
]
