"""Integration tests: the end-to-end experiment flow on the small benchmark.

These tests exercise the complete Figure 2 loop (place -> power -> thermal
-> area management -> re-simulate) and check the qualitative results the
paper reports: every technique reduces the peak temperature, the reduction
grows with the area overhead, and the hotspot-targeted techniques are at
least competitive with blind spreading.
"""

import pytest

from repro.flow import (
    ExperimentSetup,
    concentrated_hotspot_table,
    evaluate_strategy,
    sweep_overheads,
)
from repro.bench import concentrated_hotspot_workload


@pytest.fixture(scope="module")
def setup(small_circuit, small_workload):
    # Work on a copy: ExperimentSetup.prepare places the netlist it is
    # given, and the session-scoped benchmark must stay untouched for the
    # other test modules.
    return ExperimentSetup.prepare(
        small_circuit.copy(),
        small_workload,
        num_cycles=10,
        batch_size=8,
        seed=7,
        use_quadratic=True,
    )


class TestSetup:
    def test_baseline_state(self, setup):
        assert setup.placement.check_legal() == []
        assert setup.power.total() > 0.0
        assert setup.thermal_map.peak_rise > 0.5
        assert setup.hotspots
        assert setup.timing.critical_path_ps > 0.0
        assert setup.power_map.total_power == pytest.approx(setup.power.total(), rel=1e-9)

    def test_hotspots_caused_by_active_units(self, setup, small_workload):
        leading = {h.dominant_units[0] for h in setup.hotspots if h.dominant_units}
        assert leading & set(small_workload.active_units)


class TestEvaluateStrategy:
    @pytest.mark.parametrize("strategy", ["default", "eri", "hw"])
    def test_each_strategy_reduces_peak_temperature(self, setup, strategy):
        outcome = evaluate_strategy(setup, strategy, 0.20, analyze_timing=False)
        assert outcome.temperature_reduction > 0.0
        assert outcome.peak_rise < setup.thermal_map.peak_rise

    def test_reduction_grows_with_overhead(self, setup):
        small = evaluate_strategy(setup, "eri", 0.10, analyze_timing=False)
        large = evaluate_strategy(setup, "eri", 0.35, analyze_timing=False)
        assert large.temperature_reduction > small.temperature_reduction

    def test_eri_reports_inserted_rows_and_geometry(self, setup):
        outcome = evaluate_strategy(setup, "eri", 0.20, analyze_timing=False)
        base = setup.placement.floorplan
        assert outcome.inserted_rows >= 0.2 * base.num_rows - 1
        assert outcome.core_width == pytest.approx(base.core_width)
        assert outcome.core_height > base.core_height

    def test_default_keeps_aspect_and_grows_area(self, setup):
        outcome = evaluate_strategy(setup, "default", 0.20, analyze_timing=False)
        base = setup.placement.floorplan
        new_area = outcome.core_width * outcome.core_height
        assert new_area > base.core_area
        assert outcome.actual_overhead >= 0.20 - 1e-9

    def test_timing_overhead_is_small(self, setup):
        outcome = evaluate_strategy(setup, "eri", 0.20, analyze_timing=True)
        assert outcome.timing_overhead is not None
        # The paper reports a maximum of around 2%; allow a generous band
        # (the transforms must not wreck timing).
        assert outcome.timing_overhead < 0.10

    def test_targeted_methods_competitive_with_default(self, setup):
        overhead = 0.25
        default = evaluate_strategy(setup, "default", overhead, analyze_timing=False)
        eri = evaluate_strategy(setup, "eri", overhead, analyze_timing=False)
        # Compare efficiency (reduction per unit of actual overhead) so core
        # snapping differences do not bias the comparison.
        default_eff = default.temperature_reduction / default.actual_overhead
        eri_eff = eri.temperature_reduction / eri.actual_overhead
        assert eri_eff >= 0.85 * default_eff


class TestSweeps:
    def test_sweep_produces_one_outcome_per_point(self, setup):
        outcomes = sweep_overheads(
            setup, overheads=(0.10, 0.30), strategies=("default", "eri")
        )
        assert len(outcomes) == 4
        assert {o.strategy for o in outcomes} == {"default", "eri"}

    def test_concentrated_table_structure(self, small_circuit):
        circuit = small_circuit.copy()
        workload = concentrated_hotspot_workload(circuit)
        setup = ExperimentSetup.prepare(
            circuit, workload, num_cycles=10, batch_size=8, seed=7,
            use_quadratic=False,
        )
        rows = concentrated_hotspot_table(setup, row_counts=(6, 12))
        assert len(rows) == 4
        assert [r.strategy for r in rows] == ["default", "default", "eri", "eri"]
        assert rows[2].inserted_rows == 6
        assert rows[3].inserted_rows == 12
        # All four configurations reduce the peak temperature.
        assert all(r.temperature_reduction > 0.0 for r in rows)
        # ERI with more rows beats ERI with fewer rows.
        assert rows[3].temperature_reduction > rows[2].temperature_reduction
