"""Execution-engine selection for the flow's hot paths.

The power, thermal-binning and timing layers each have two numerically
equivalent implementations:

* ``"compiled"`` — the default: the netlist is lowered once into levelized
  structure-of-arrays index vectors (:mod:`repro.netlist.compiled`) and the
  per-gate/per-cell Python loops are replaced by whole-array NumPy
  expressions;
* ``"reference"`` — the original per-object loops, kept as the executable
  specification the compiled paths are validated against (see
  ``tests/test_compiled_equivalence.py``) and benchmarked against
  (``benchmarks/test_pipeline_stages.py``).

The engine can be chosen per call (every fast-path entry point takes an
``engine=`` keyword), per block (:func:`use_engine`), or globally
(:func:`set_engine`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

#: The two available engines.
ENGINES = ("compiled", "reference")

_active_engine = "compiled"


def get_engine() -> str:
    """Name of the currently active engine."""
    return _active_engine


def set_engine(name: str) -> None:
    """Select the process-wide default engine.

    Raises:
        ValueError: If ``name`` is not one of :data:`ENGINES`.
    """
    global _active_engine
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    _active_engine = name


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve a per-call ``engine=`` argument against the active default."""
    if engine is None:
        return _active_engine
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    return engine


@contextmanager
def use_engine(name: str) -> Iterator[None]:
    """Temporarily switch the process-wide engine within a ``with`` block."""
    previous = get_engine()
    set_engine(name)
    try:
        yield
    finally:
        set_engine(previous)
