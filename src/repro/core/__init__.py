"""The paper's contribution: hotspot-driven post-placement whitespace management."""

from .hotspot import Hotspot, detect_hotspots, hotspot_summary, project_hotspots
from .default_spread import DefaultSpreadResult, apply_default_spread
from .empty_row import (
    EmptyRowInsertionResult,
    apply_empty_row_insertion,
    apply_row_insertions,
    plan_insertion_points,
    rows_for_overhead,
)
from .wrapper import HotspotWrapperResult, WrappedHotspot, apply_hotspot_wrapper
from .gradient import plan_gradient_insertion_points, row_temperature_weights
from .strategy import (
    StrategyContext,
    StrategyResult,
    StrategySpec,
    WhitespaceStrategy,
    available_strategies,
    describe_strategies,
    format_strategy_spec,
    parse_strategy_spec,
    register_strategy,
    resolve_strategy,
    split_spec_list,
    strategy_class,
    unregister_strategy,
)
from .builtin_strategies import (
    ERI_HOTSPOT_THRESHOLD,
    HW_HOTSPOT_THRESHOLD,
    DefaultSpreadStrategy,
    EmptyRowInsertionStrategy,
    GradientStrategy,
    HotspotWrapperStrategy,
    HybridStrategy,
)
from .area_manager import (
    AreaManagementConfig,
    AreaManagementResult,
    AreaManager,
    Strategy,
)

__all__ = [
    "Hotspot",
    "detect_hotspots",
    "hotspot_summary",
    "project_hotspots",
    "DefaultSpreadResult",
    "apply_default_spread",
    "EmptyRowInsertionResult",
    "apply_empty_row_insertion",
    "apply_row_insertions",
    "plan_insertion_points",
    "rows_for_overhead",
    "HotspotWrapperResult",
    "WrappedHotspot",
    "apply_hotspot_wrapper",
    "plan_gradient_insertion_points",
    "row_temperature_weights",
    "StrategyContext",
    "StrategyResult",
    "StrategySpec",
    "WhitespaceStrategy",
    "available_strategies",
    "describe_strategies",
    "format_strategy_spec",
    "parse_strategy_spec",
    "register_strategy",
    "resolve_strategy",
    "split_spec_list",
    "strategy_class",
    "unregister_strategy",
    "DefaultSpreadStrategy",
    "EmptyRowInsertionStrategy",
    "GradientStrategy",
    "HotspotWrapperStrategy",
    "HybridStrategy",
    "ERI_HOTSPOT_THRESHOLD",
    "HW_HOTSPOT_THRESHOLD",
    "AreaManagementConfig",
    "AreaManagementResult",
    "AreaManager",
    "Strategy",
]
