#!/usr/bin/env python3
"""Concentrated hotspot: regenerate the paper's Table I.

The paper's second test set activates only the largest arithmetic unit,
creating "a single, large, concentrated hotspot", and compares the Default
scheme against Empty Row Insertion with 20 and 40 inserted rows.  This
example reproduces that table (the row counts are scaled down automatically
when the fast benchmark is used) and also shows why the hotspot wrapper is
not the right tool for large hotspots.
"""

from __future__ import annotations

import argparse

from repro.analysis import table1_report
from repro.bench import (
    build_synthetic_circuit,
    concentrated_hotspot_workload,
    small_synthetic_circuit,
)
from repro.flow import ExperimentSetup, concentrated_hotspot_table, evaluate_strategy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="use the full ~12k-cell benchmark")
    parser.add_argument("--rows", type=int, nargs="+", default=None,
                        help="numbers of empty rows to insert (paper: 20 40)")
    args = parser.parse_args()

    netlist = build_synthetic_circuit() if args.full else small_synthetic_circuit()
    workload = concentrated_hotspot_workload(netlist)
    print(workload.describe())

    setup = ExperimentSetup.prepare(netlist, workload, base_utilization=0.85)
    num_rows = setup.placement.floorplan.num_rows
    row_counts = args.rows if args.rows else ([20, 40] if args.full
                                              else [num_rows // 6, num_rows // 3])
    print(f"baseline: {num_rows} rows, peak rise {setup.thermal_map.peak_rise:.2f} K, "
          f"gradient {setup.thermal_map.gradient:.2f} K\n")

    rows = concentrated_hotspot_table(setup, row_counts=row_counts)
    print(table1_report(rows))

    default_small, default_large, eri_small, eri_large = rows
    print(f"\nERI vs Default at ~{default_small.actual_overhead * 100:.1f}% overhead: "
          f"{eri_small.temperature_reduction * 100:.1f}% vs "
          f"{default_small.temperature_reduction * 100:.1f}%")
    print(f"ERI vs Default at ~{default_large.actual_overhead * 100:.1f}% overhead: "
          f"{eri_large.temperature_reduction * 100:.1f}% vs "
          f"{default_large.temperature_reduction * 100:.1f}%")

    hw = evaluate_strategy(setup, "hw", row_counts[0] / num_rows, analyze_timing=False)
    print(f"\nhotspot wrapper at the same overhead: "
          f"{hw.temperature_reduction * 100:.1f}% reduction "
          f"(the paper notes HW is not suited to large hotspots)")


if __name__ == "__main__":
    main()
