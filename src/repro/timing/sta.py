"""Static timing analysis.

A block-based STA over the combinational timing graph: arrival times start
at launch points (primary inputs and flip-flop outputs), propagate through
the levelized combinational logic using the
:class:`~repro.timing.delay.DelayModel`, and are checked at capture points
(flip-flop data inputs and primary outputs) against the clock period.

The analysis is used before and after the post-placement transformations to
quantify the timing overhead (the paper reports a maximum of about 2%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..netlist import Netlist
from .delay import DelayModel

#: Clock period corresponding to the paper's 1 GHz operating frequency.
DEFAULT_CLOCK_PERIOD_PS = 1000.0


@dataclass
class TimingPath:
    """One timing path endpoint report.

    Attributes:
        endpoint: Name of the capture point (``cell/D`` or a primary output).
        arrival_ps: Data arrival time in picoseconds.
        slack_ps: Clock period minus arrival time.
        through_cells: Cell names along the critical path to this endpoint,
            launch to capture.
    """

    endpoint: str
    arrival_ps: float
    slack_ps: float
    through_cells: List[str] = field(default_factory=list)


@dataclass
class TimingReport:
    """Design-level timing results.

    Attributes:
        critical_path_ps: Longest data arrival time (the critical path).
        clock_period_ps: Clock period the design was checked against.
        worst_slack_ps: Worst endpoint slack.
        worst_path: The critical path endpoint report.
        num_endpoints: Number of analysed capture points.
    """

    critical_path_ps: float
    clock_period_ps: float
    worst_slack_ps: float
    worst_path: Optional[TimingPath]
    num_endpoints: int

    @property
    def meets_timing(self) -> bool:
        """``True`` if the worst slack is non-negative."""
        return self.worst_slack_ps >= 0.0

    def overhead_versus(self, baseline: "TimingReport") -> float:
        """Fractional critical-path increase relative to ``baseline``."""
        if baseline.critical_path_ps <= 0.0:
            raise ValueError("baseline critical path must be positive")
        return (self.critical_path_ps - baseline.critical_path_ps) / baseline.critical_path_ps


class StaticTimingAnalyzer:
    """Block-based STA engine.

    Args:
        netlist: The design to analyse (combinational logic must be acyclic).
        delay_model: Delay calculator; a default one at nominal temperature
            is created when omitted.
        clock_period_ps: Clock period for slack computation.
    """

    def __init__(
        self,
        netlist: Netlist,
        delay_model: Optional[DelayModel] = None,
        clock_period_ps: float = DEFAULT_CLOCK_PERIOD_PS,
    ) -> None:
        self.netlist = netlist
        self.delay_model = delay_model if delay_model is not None else DelayModel()
        self.clock_period_ps = clock_period_ps
        self._order = netlist.levelize()

    # ------------------------------------------------------------------

    def analyze(self, temperature: Optional[float] = None) -> TimingReport:
        """Run the analysis and return a :class:`TimingReport`.

        Args:
            temperature: Optional uniform operating temperature in Celsius;
                defaults to the delay model's temperature.
        """
        arrival, predecessor = self._propagate(temperature)
        endpoints = self._collect_endpoints(arrival)

        if not endpoints:
            return TimingReport(
                critical_path_ps=0.0,
                clock_period_ps=self.clock_period_ps,
                worst_slack_ps=self.clock_period_ps,
                worst_path=None,
                num_endpoints=0,
            )

        worst_endpoint, worst_arrival, worst_net = max(
            endpoints, key=lambda item: item[1]
        )
        worst_path = TimingPath(
            endpoint=worst_endpoint,
            arrival_ps=worst_arrival,
            slack_ps=self.clock_period_ps - worst_arrival,
            through_cells=self._trace_path(worst_net, predecessor),
        )
        return TimingReport(
            critical_path_ps=worst_arrival,
            clock_period_ps=self.clock_period_ps,
            worst_slack_ps=self.clock_period_ps - worst_arrival,
            worst_path=worst_path,
            num_endpoints=len(endpoints),
        )

    # ------------------------------------------------------------------

    def _propagate(
        self, temperature: Optional[float]
    ) -> Tuple[Dict[str, float], Dict[str, Optional[str]]]:
        """Propagate arrival times; returns per-net arrival and predecessor."""
        arrival: Dict[str, float] = {}
        predecessor: Dict[str, Optional[str]] = {}
        model = self.delay_model

        # Launch points: primary-input nets and flip-flop output nets.
        for port in self.netlist.primary_inputs:
            if port.net is not None:
                arrival[port.net.name] = 0.0
                predecessor[port.net.name] = None
        for ff in self.netlist.sequential_cells():
            clk_to_q = ff.master.intrinsic_delay_ps * model.cell_derating(temperature)
            for pin in ff.output_pins:
                if pin.net is not None:
                    wire = model.wire_delay_ps(pin.net, temperature)
                    arrival[pin.net.name] = clk_to_q + wire
                    predecessor[pin.net.name] = ff.name

        for inst in self._order:
            input_arrival = 0.0
            for pin in inst.input_pins:
                if pin.net is not None:
                    input_arrival = max(input_arrival, arrival.get(pin.net.name, 0.0))
            for pin in inst.output_pins:
                net = pin.net
                if net is None:
                    continue
                stage = model.stage_delay_ps(inst, net, temperature)
                arrival[net.name] = input_arrival + stage
                predecessor[net.name] = inst.name

        return arrival, predecessor

    def _collect_endpoints(self, arrival: Dict[str, float]) -> List[Tuple[str, float, Optional[str]]]:
        """Gather capture points: FF D pins, primary outputs."""
        endpoints: List[Tuple[str, float, Optional[str]]] = []
        model = self.delay_model
        for ff in self.netlist.sequential_cells():
            for pin in ff.input_pins:
                if pin.net is None:
                    continue
                setup = 0.3 * ff.master.intrinsic_delay_ps
                endpoints.append(
                    (pin.full_name, arrival.get(pin.net.name, 0.0) + setup, pin.net.name)
                )
        for port in self.netlist.primary_outputs:
            if port.net is not None:
                endpoints.append((port.name, arrival.get(port.net.name, 0.0), port.net.name))
        return endpoints

    def _trace_path(
        self, net_name: Optional[str], predecessor: Dict[str, Optional[str]]
    ) -> List[str]:
        """Walk predecessors from an endpoint net back to its launch point."""
        path: List[str] = []
        current = net_name
        visited = set()
        while current is not None and current not in visited:
            visited.add(current)
            cell_name = predecessor.get(current)
            if cell_name is None:
                break
            path.append(cell_name)
            cell = self.netlist.cells.get(cell_name)
            if cell is None or cell.is_sequential:
                break
            # Move to the slowest input net of this cell.
            best_net = None
            best_arrival = -1.0
            for pin in cell.input_pins:
                if pin.net is None:
                    continue
                # Arrival of predecessors is implied by path order; pick any
                # driven input that has a predecessor entry.
                if pin.net.name in predecessor:
                    best_net = pin.net.name
                    best_arrival = max(best_arrival, 0.0)
            current = best_net
        path.reverse()
        return path


def analyze_timing(
    netlist: Netlist,
    temperature: Optional[float] = None,
    clock_period_ps: float = DEFAULT_CLOCK_PERIOD_PS,
) -> TimingReport:
    """Convenience wrapper: analyse ``netlist`` with the default delay model."""
    model = DelayModel(temperature=temperature if temperature is not None else 25.0)
    analyzer = StaticTimingAnalyzer(netlist, delay_model=model, clock_period_ps=clock_period_ps)
    return analyzer.analyze(temperature)
