"""End-to-end experiment driver.

Reproduces the paper's full flow (Figure 2) as a single, reusable object:

1. logic/physical synthesis substitute — the synthetic benchmark is placed
   at a baseline utilization factor;
2. power estimation — random vectors, logic simulation, switching activity,
   cell-by-cell power;
3. thermal simulation — power map binned onto the 40 x 40 grid, RC network
   solved for the baseline thermal map;
4. area management — one of the strategies (Default / ERI / HW) applied at
   a requested area overhead;
5. re-simulation and metric extraction — peak-temperature reduction, actual
   overhead, timing overhead.

The figure/table benchmarks in ``benchmarks/`` are thin wrappers around
:func:`sweep_overheads` (Figure 6), :func:`concentrated_hotspot_table`
(Table I) and :class:`ExperimentSetup` (Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..bench import Workload
from ..core import (
    AreaManagementConfig,
    AreaManager,
    Hotspot,
    StrategySpec,
    apply_empty_row_insertion,
    detect_hotspots,
)
from ..netlist import Netlist
from ..placement import Placement, place_design
from ..power import PowerModel, PowerReport, build_power_map, estimate_activity
from ..power.power_map import PowerMap
from ..thermal import (
    Package,
    ThermalGrid,
    ThermalMap,
    default_package,
    simulate_placement,
)
from ..thermal.solver import grid_for_placement
from ..timing import DelayModel, StaticTimingAnalyzer, TimingReport
from .cache import SolverCache
from .graph import FlowGraph

#: Overheads of the paper's Figure 6 sweep (fractions of the core area).
DEFAULT_OVERHEADS = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40)

#: The paper's three whitespace-allocation strategies.
DEFAULT_STRATEGIES = ("default", "eri", "hw")


@dataclass
class ExperimentSetup:
    """Baseline state shared by all strategy evaluations of one experiment.

    Attributes:
        netlist: The benchmark design.
        workload: The workload shaping the hotspots.
        placement: Baseline placement at the baseline utilization factor.
        power: Cell-by-cell power report (unchanged by the techniques).
        thermal_map: Thermal map of the baseline placement.
        power_map: Power map of the baseline placement.
        hotspots: Hotspots detected on the baseline thermal map.
        timing: Baseline timing report.
        package: Thermal package model used throughout.
        base_utilization: Baseline utilization factor.
        grid_nx: Thermal grid resolution in x.
        grid_ny: Thermal grid resolution in y.
    """

    netlist: Netlist
    workload: Workload
    placement: Placement
    power: PowerReport
    thermal_map: ThermalMap
    power_map: PowerMap
    hotspots: List[Hotspot]
    timing: TimingReport
    package: Package
    base_utilization: float
    grid_nx: int
    grid_ny: int

    @classmethod
    def prepare(
        cls,
        netlist: Netlist,
        workload: Workload,
        base_utilization: float = 0.85,
        package: Optional[Package] = None,
        grid_nx: int = 40,
        grid_ny: int = 40,
        hotspot_threshold: float = 0.5,
        num_cycles: int = 24,
        batch_size: int = 32,
        seed: int = 2010,
        use_quadratic: bool = True,
        clock_period_ps: float = 1000.0,
        cache: Optional[SolverCache] = None,
        flow: Optional[FlowGraph] = None,
    ) -> "ExperimentSetup":
        """Run the baseline flow: place, estimate power, solve thermal, STA.

        Args:
            netlist: The benchmark design.
            workload: Per-unit activity profile.
            base_utilization: Baseline utilization factor (the un-relaxed
                placement all overheads are measured against).
            package: Thermal stack; :func:`default_package` when omitted.
            grid_nx: Thermal grid resolution in x (paper: 40).
            grid_ny: Thermal grid resolution in y (paper: 40).
            hotspot_threshold: Hotspot-detection threshold fraction.
            num_cycles: Logic-simulation cycles for activity estimation.
            batch_size: Parallel random streams for activity estimation.
            seed: Random seed for vector generation.
            use_quadratic: Use the quadratic global placer.
            clock_period_ps: Clock period for timing analysis (1 GHz).
            cache: Optional :class:`SolverCache`; the baseline geometry's
                factorisation is stored there for later reuse.
            flow: Optional :class:`~repro.flow.graph.FlowGraph`; the
                baseline stages then run through the graph, so a second
                ``prepare`` of the same circuit (or a strategy evaluation
                sharing the prefix) reuses the stored artifacts instead of
                re-running synthesis, placement and power estimation.

        Returns:
            The prepared :class:`ExperimentSetup`.
        """
        pkg = package if package is not None else default_package()

        if flow is not None:
            placement = flow.synth(
                netlist, utilization=base_utilization, use_quadratic=use_quadratic
            ).placement
            # A warm synth hit returns the stored placement, whose netlist
            # is a content-equal clone of the argument; downstream stages
            # must use *that* object so coordinates and identity agree.
            netlist = placement.netlist
            power = flow.power(
                netlist, workload,
                num_cycles=num_cycles, batch_size=batch_size, seed=seed,
            ).power
            legal = flow.legalize(
                placement, power, nx=grid_nx, ny=grid_ny, package=pkg
            )
            power_map = legal.power_map
            thermal_map = flow.thermal(power_map, legal.grid).thermal_map
        else:
            placement = place_design(
                netlist, utilization=base_utilization, use_quadratic=use_quadratic
            )

            activity = estimate_activity(
                netlist,
                workload.port_toggle_probabilities(netlist),
                num_cycles=num_cycles,
                batch_size=batch_size,
                seed=seed,
            )
            power = PowerModel().estimate(netlist, activity)

            # One binning pass serves both the thermal solve and the stored map.
            power_map = build_power_map(placement, power, nx=grid_nx, ny=grid_ny)
            thermal_map = simulate_placement(
                placement, power, package=pkg, nx=grid_nx, ny=grid_ny,
                cache=cache, power_map=power_map,
            )
        hotspots = detect_hotspots(
            thermal_map, placement, power=power, threshold_fraction=hotspot_threshold
        )

        if flow is not None:
            timing = flow.sta(
                placement, temperature=thermal_map.peak,
                clock_period_ps=clock_period_ps,
            ).timing
        else:
            delay_model = DelayModel(temperature=thermal_map.peak)
            timing = StaticTimingAnalyzer(
                netlist, delay_model=delay_model, clock_period_ps=clock_period_ps
            ).analyze()

        return cls(
            netlist=netlist,
            workload=workload,
            placement=placement,
            power=power,
            thermal_map=thermal_map,
            power_map=power_map,
            hotspots=hotspots,
            timing=timing,
            package=pkg,
            base_utilization=base_utilization,
            grid_nx=grid_nx,
            grid_ny=grid_ny,
        )


@dataclass
class StrategyOutcome:
    """One point of the evaluation: a strategy applied at one overhead.

    Attributes:
        strategy: Canonical strategy spec — the registered name
            (``"eri"``), including any parameter overrides
            (``"hw:ring_um=8.0"``).
        requested_overhead: Requested area overhead fraction.
        actual_overhead: Core-area overhead actually obtained.
        temperature_reduction: Peak temperature-rise reduction fraction.
        peak_rise: Peak temperature rise of the transformed design (K).
        gradient: On-die gradient of the transformed design (K).
        timing_overhead: Critical-path increase fraction (``None`` when the
            timing analysis was skipped).
        inserted_rows: Rows inserted (ERI only).
        core_width: Core width of the transformed design in micrometres.
        core_height: Core height of the transformed design in micrometres.
        num_fillers: Filler cells inserted.
        fallback_used: True when the point's thermal map came from the
            solver's degraded LU fallback (multigrid stall or injected
            fault); such records are exact but not bitwise-comparable to a
            healthy multigrid run.
    """

    strategy: str
    requested_overhead: float
    actual_overhead: float
    temperature_reduction: float
    peak_rise: float
    gradient: float
    timing_overhead: Optional[float]
    inserted_rows: int
    core_width: float
    core_height: float
    num_fillers: int
    fallback_used: bool = False


@dataclass
class PreparedEvaluation:
    """The transform half of one evaluation point, before the thermal solve.

    Produced by :func:`prepare_evaluation`; :func:`finish_evaluation` turns
    it (plus a solved thermal map) into a :class:`StrategyOutcome`.  The
    split lets :class:`~repro.flow.runner.Campaign` run all transforms
    first, group the resulting power maps by die geometry and solve each
    group as one batched multi-RHS block.

    Attributes:
        setup: The experiment baseline the point was evaluated against.
        strategy_spec: Canonical spec string of the resolved strategy.
        requested_overhead: Requested area overhead fraction.
        result: The area-management result (transformed placement).
        power_map: The transformed placement's binned power map.
        grid: Thermal grid covering the transformed die outline.
    """

    setup: ExperimentSetup
    strategy_spec: str
    requested_overhead: float
    result: object
    power_map: PowerMap
    grid: ThermalGrid


def prepare_evaluation(
    setup: ExperimentSetup,
    strategy: StrategySpec,
    area_overhead: float,
    hotspot_threshold: Optional[float] = None,
    wrapper_ring_um: float = 6.0,
    flow: Optional[FlowGraph] = None,
) -> PreparedEvaluation:
    """Apply one strategy at one overhead, stopping short of the solve.

    Runs the area-management transform and bins the transformed placement's
    power map, returning everything the thermal solve and the outcome
    extraction need.  With ``flow`` given, the transform and binning run as
    ``whitespace`` / ``legalize`` stages against the graph's artifact store
    (``result`` is then the stage's
    :class:`~repro.flow.artifacts.WhitespaceArtifact`, which carries the
    same fields the outcome extraction reads).
    """
    if flow is not None:
        ws = flow.whitespace(
            setup.placement, setup.power, setup.thermal_map,
            strategy=strategy, area_overhead=area_overhead,
            hotspot_threshold=hotspot_threshold, wrapper_ring_um=wrapper_ring_um,
        )
        legal = flow.legalize(
            ws.placement, setup.power,
            nx=setup.grid_nx, ny=setup.grid_ny, package=setup.package,
        )
        return PreparedEvaluation(
            setup=setup,
            strategy_spec=ws.strategy_spec,
            requested_overhead=area_overhead,
            result=ws,
            power_map=legal.power_map,
            grid=legal.grid,
        )
    config = AreaManagementConfig(
        area_overhead=area_overhead,
        strategy=strategy,
        hotspot_threshold=hotspot_threshold,
        wrapper_ring_um=wrapper_ring_um,
    )
    manager = AreaManager(config)
    # The manager re-detects hotspots with its per-strategy threshold: empty
    # row insertion targets the broad warm area, the wrapper the tight core.
    result = manager.optimize(setup.placement, setup.power, setup.thermal_map)
    power_map = build_power_map(
        result.placement, setup.power, nx=setup.grid_nx, ny=setup.grid_ny,
        over_die=True,
    )
    grid = grid_for_placement(
        result.placement, package=setup.package, nx=setup.grid_nx, ny=setup.grid_ny
    )
    return PreparedEvaluation(
        setup=setup,
        strategy_spec=config.strategy_impl.spec,
        requested_overhead=area_overhead,
        result=result,
        power_map=power_map,
        grid=grid,
    )


def finish_evaluation(
    prepared: PreparedEvaluation,
    new_map: ThermalMap,
    analyze_timing: bool = True,
    flow: Optional[FlowGraph] = None,
) -> StrategyOutcome:
    """Extract the :class:`StrategyOutcome` from a solved evaluation point."""
    setup = prepared.setup
    result = prepared.result
    timing_overhead_value: Optional[float] = None
    if analyze_timing:
        if flow is not None:
            new_timing = flow.sta(
                result.placement, temperature=new_map.peak,
                clock_period_ps=setup.timing.clock_period_ps,
            ).timing
        else:
            delay_model = DelayModel(temperature=new_map.peak)
            new_timing = StaticTimingAnalyzer(
                result.placement.netlist,
                delay_model=delay_model,
                clock_period_ps=setup.timing.clock_period_ps,
            ).analyze()
        timing_overhead_value = new_timing.overhead_versus(setup.timing)

    return StrategyOutcome(
        strategy=prepared.strategy_spec,
        requested_overhead=prepared.requested_overhead,
        actual_overhead=result.actual_overhead,
        temperature_reduction=new_map.reduction_versus(setup.thermal_map),
        peak_rise=new_map.peak_rise,
        gradient=new_map.gradient,
        timing_overhead=timing_overhead_value,
        inserted_rows=result.inserted_rows,
        core_width=result.placement.floorplan.core_width,
        core_height=result.placement.floorplan.core_height,
        num_fillers=result.num_fillers,
        # getattr: thermal maps unpickled from a pre-existing artifact
        # store predate the flag.
        fallback_used=bool(getattr(new_map, "fallback_used", False)),
    )


def evaluate_strategy(
    setup: ExperimentSetup,
    strategy: StrategySpec,
    area_overhead: float,
    analyze_timing: bool = True,
    hotspot_threshold: Optional[float] = None,
    wrapper_ring_um: float = 6.0,
    cache: Optional[SolverCache] = None,
    flow: Optional[FlowGraph] = None,
) -> StrategyOutcome:
    """Apply one strategy at one overhead and measure the outcome.

    Args:
        setup: The prepared experiment baseline.
        strategy: Any registered strategy spec — a name (``"eri"``), a
            parameterized spec (``"hw:ring_um=8"``), a mapping, or a
            resolved :class:`~repro.core.WhitespaceStrategy`.
        area_overhead: Requested area overhead fraction.
        analyze_timing: Re-run STA on the transformed placement.
        hotspot_threshold: Optional override of the detection threshold.
        wrapper_ring_um: Whitespace ring width for the hotspot wrapper.
        cache: Optional :class:`SolverCache` shared across evaluations;
            points whose transformed placements share a die outline (e.g.
            the hotspot wrapper reuses the Default outline at the same
            overhead) then share one prepared solver.
        flow: Optional :class:`~repro.flow.graph.FlowGraph`; every stage of
            the evaluation then runs against the graph's content-addressed
            store, so repeated points re-run nothing and changed points
            re-run only the stages whose input hashes changed.  Results are
            bitwise-identical to the monolithic path.  ``cache`` is ignored
            in favour of the graph's own solver cache.

    Returns:
        The measured :class:`StrategyOutcome`.
    """
    if flow is not None:
        prepared = prepare_evaluation(
            setup, strategy, area_overhead,
            hotspot_threshold=hotspot_threshold,
            wrapper_ring_um=wrapper_ring_um,
            flow=flow,
        )
        new_map = flow.thermal(
            prepared.power_map, prepared.grid, warm_start=setup.thermal_map
        ).thermal_map
        return finish_evaluation(
            prepared, new_map, analyze_timing=analyze_timing, flow=flow
        )
    prepared = prepare_evaluation(
        setup,
        strategy,
        area_overhead,
        hotspot_threshold=hotspot_threshold,
        wrapper_ring_um=wrapper_ring_um,
    )
    # The transform already built the thermal grid, so the solver comes
    # straight from it.  The re-solve warm-starts from the baseline
    # temperature field: the transformed die shares the grid resolution,
    # so the baseline rises are an excellent multigrid starting guess (LU
    # simply ignores them).
    if cache is not None:
        solver = cache.solver(prepared.grid)
    else:
        from ..thermal import ThermalSolver

        solver = ThermalSolver(prepared.grid)
    new_map = simulate_placement(
        prepared.result.placement,
        setup.power,
        package=setup.package,
        nx=setup.grid_nx,
        ny=setup.grid_ny,
        solver=solver,
        power_map=prepared.power_map,
        warm_start=setup.thermal_map,
    )
    return finish_evaluation(prepared, new_map, analyze_timing=analyze_timing)


def sweep_overheads(
    setup: ExperimentSetup,
    overheads: Sequence[float] = DEFAULT_OVERHEADS,
    strategies: Sequence[StrategySpec] = DEFAULT_STRATEGIES,
    analyze_timing: bool = False,
    cache: Optional[SolverCache] = None,
    flow: Optional[FlowGraph] = None,
) -> List[StrategyOutcome]:
    """Reproduce Figure 6: reduction versus overhead for every strategy.

    All points share one :class:`SolverCache`, so die outlines revisited
    across the sweep (the hotspot wrapper reuses the Default outline at
    each overhead) are factorised only once.

    Args:
        setup: The prepared experiment baseline (scattered-hotspot workload
            for the paper's first test set).
        overheads: Area-overhead sweep points.
        strategies: Strategies to evaluate.
        analyze_timing: Also compute the timing overhead per point (slower).
        cache: Solver cache to share; a fresh one is created when omitted.
        flow: Optional :class:`~repro.flow.graph.FlowGraph` to run every
            point through (see :func:`evaluate_strategy`).

    Returns:
        One :class:`StrategyOutcome` per (strategy, overhead) pair.
    """
    shared_cache = cache if cache is not None else SolverCache()
    outcomes: List[StrategyOutcome] = []
    for strategy in strategies:
        for overhead in overheads:
            outcomes.append(
                evaluate_strategy(
                    setup, strategy, overhead,
                    analyze_timing=analyze_timing, cache=shared_cache,
                    flow=flow,
                )
            )
    return outcomes


def concentrated_hotspot_table(
    setup: ExperimentSetup,
    row_counts: Sequence[int] = (20, 40),
    analyze_timing: bool = False,
    cache: Optional[SolverCache] = None,
) -> List[StrategyOutcome]:
    """Reproduce Table I: Default versus ERI on a concentrated hotspot.

    For every requested row count the equivalent area overhead is computed
    (rows x row area / baseline core area); the Default scheme is evaluated
    at that same overhead, and ERI is evaluated with exactly that many
    inserted rows — matching the paper's pairing of rows 1/3 and 2/4.

    Args:
        setup: Baseline prepared with the concentrated-hotspot workload.
        row_counts: Numbers of rows to insert (paper: 20 and 40).
        analyze_timing: Also compute timing overheads.
        cache: Solver cache to share; a fresh one is created when omitted.

    Returns:
        Outcomes ordered as in the paper's table: all Default rows first,
        then the ERI rows.
    """
    shared_cache = cache if cache is not None else SolverCache()
    base_rows = setup.placement.floorplan.num_rows
    overheads = [count / base_rows for count in row_counts]

    outcomes: List[StrategyOutcome] = []
    for overhead in overheads:
        outcomes.append(
            evaluate_strategy(
                setup, "default", overhead,
                analyze_timing=analyze_timing, cache=shared_cache,
            )
        )

    for count, overhead in zip(row_counts, overheads):
        eri = apply_empty_row_insertion(setup.placement, setup.hotspots, num_rows=count)
        new_map = simulate_placement(
            eri.placement, setup.power, package=setup.package,
            nx=setup.grid_nx, ny=setup.grid_ny, cache=shared_cache,
            warm_start=setup.thermal_map,
        )
        timing_overhead_value: Optional[float] = None
        if analyze_timing:
            delay_model = DelayModel(temperature=new_map.peak)
            new_timing = StaticTimingAnalyzer(
                eri.placement.netlist,
                delay_model=delay_model,
                clock_period_ps=setup.timing.clock_period_ps,
            ).analyze()
            timing_overhead_value = new_timing.overhead_versus(setup.timing)
        outcomes.append(
            StrategyOutcome(
                strategy="eri",
                requested_overhead=overhead,
                actual_overhead=eri.actual_overhead,
                temperature_reduction=new_map.reduction_versus(setup.thermal_map),
                peak_rise=new_map.peak_rise,
                gradient=new_map.gradient,
                timing_overhead=timing_overhead_value,
                inserted_rows=eri.inserted_rows,
                core_width=eri.placement.floorplan.core_width,
                core_height=eri.placement.floorplan.core_height,
                num_fillers=eri.num_fillers,
                fallback_used=bool(getattr(new_map, "fallback_used", False)),
            )
        )
    return outcomes
