"""Detailed placement improvement.

A lightweight detailed-placement pass in the spirit of what commercial
tools run after legalization: adjacent cells within a row are swapped when
the swap reduces total half-perimeter wirelength.  The pass preserves
legality (cells stay in the same row span) and is intentionally local so
that the post-placement thermal techniques remain the dominant effect on
the layout.
"""

from __future__ import annotations


from ..deadlines import check_active
from ..netlist import CellInstance
from .placement import Placement, Row


def _cell_hpwl(cell: CellInstance) -> float:
    """Sum of HPWL over all nets attached to ``cell``."""
    total = 0.0
    seen = set()
    for pin in cell.pins.values():
        net = pin.net
        if net is None or net.name in seen:
            continue
        seen.add(net.name)
        total += net.hpwl()
    return total


def _swap_positions(row: Row, a: CellInstance, b: CellInstance) -> None:
    """Swap two adjacent cells ``a`` (left) and ``b`` (right) within a row."""
    new_b_x = a.x
    new_a_x = a.x + b.width
    b.place(new_b_x, row.y, row.index)
    a.place(new_a_x, row.y, row.index)
    row.sort()


def _swap_adjacent(row: Row, i: int) -> None:
    """Swap the cells at list positions ``i`` and ``i + 1`` in a sorted row.

    Equivalent to :func:`_swap_positions` on the pair, but exchanges the two
    list entries directly instead of re-sorting the whole row — the swap is
    the innermost operation of the detailed placer.
    """
    a = row.cells[i]
    b = row.cells[i + 1]
    new_b_x = a.x
    new_a_x = a.x + b.width
    b.place(new_b_x, row.y, row.index)
    a.place(new_a_x, row.y, row.index)
    row.cells[i] = b
    row.cells[i + 1] = a


def _pair_hpwl(a: CellInstance, b: CellInstance, cache: dict) -> float:
    """``_cell_hpwl(a) + _cell_hpwl(b)`` served from a per-net HPWL cache.

    HPWL is a pure function of terminal positions, so cached values are
    bitwise identical to fresh ones as long as the caller invalidates the
    nets of any cell it moves (see :func:`_invalidate_cell_nets`); the
    per-cell summation order — and therefore every accept/reject decision —
    is exactly the uncached behaviour.  Adjacent cells usually share nets
    and consecutive pairs share a cell, so the cache removes most of the
    dominant cost of the swap evaluation.
    """

    def one(cell: CellInstance) -> float:
        total = 0.0
        seen = set()
        for pin in cell.pins.values():
            net = pin.net
            if net is None or net.name in seen:
                continue
            seen.add(net.name)
            value = cache.get(net.name)
            if value is None:
                value = net.hpwl()
                cache[net.name] = value
            total += value
        return total

    return one(a) + one(b)


def _invalidate_cell_nets(cell: CellInstance, cache: dict) -> None:
    """Drop the cached HPWL of every net attached to a moved cell."""
    for pin in cell.pins.values():
        net = pin.net
        if net is not None:
            cache.pop(net.name, None)


def _snapshot_pair_nets(a: CellInstance, b: CellInstance, cache: dict) -> dict:
    """Cached HPWL entries of every net attached to either cell.

    Taken right after ``_pair_hpwl`` computed them, so the snapshot covers
    exactly the nets a subsequent swap of the pair can disturb.
    """
    saved: dict = {}
    for cell in (a, b):
        for pin in cell.pins.values():
            net = pin.net
            if net is not None and net.name in cache:
                saved[net.name] = cache[net.name]
    return saved


def improve_row(placement: Placement, row: Row) -> int:
    """One pass of adjacent-pair swaps over a row.

    Returns:
        The number of swaps applied.
    """
    row.sort()
    swaps = 0
    i = 0
    site_width = placement.floorplan.site_width
    hpwl_cache: dict = {}
    while i + 1 < len(row.cells):
        left = row.cells[i]
        right = row.cells[i + 1]
        # Only swap abutting or near-abutting neighbours so whitespace
        # created on purpose (wrappers, spread rows) is not disturbed.
        if right.x - (left.x + left.width) > site_width:
            i += 1
            continue
        # A reverted swap of an *exactly* abutting pair restores both x
        # coordinates bitwise, so the pre-swap HPWL cache entries stay
        # valid and can be put back instead of recomputed — most swaps are
        # rejected, and this halves the placer's HPWL evaluations.  A pair
        # with a sub-site gap reverts with the gap migrated, so its nets
        # are invalidated as before.
        abutting = right.x == left.x + left.width
        before = _pair_hpwl(left, right, hpwl_cache)
        saved = (
            _snapshot_pair_nets(left, right, hpwl_cache) if abutting else None
        )
        _swap_adjacent(row, i)
        _invalidate_cell_nets(left, hpwl_cache)
        _invalidate_cell_nets(right, hpwl_cache)
        after = _pair_hpwl(left, right, hpwl_cache)
        if after >= before - 1e-9:
            # Revert: swap back (right is now left of left).
            _swap_adjacent(row, i)
            if saved is not None:
                hpwl_cache.update(saved)
            else:
                _invalidate_cell_nets(left, hpwl_cache)
                _invalidate_cell_nets(right, hpwl_cache)
        else:
            swaps += 1
        i += 1
    return swaps


def improve_placement(placement: Placement, max_passes: int = 2) -> int:
    """Run adjacent-swap improvement over every row.

    Args:
        placement: Placement to improve in place.
        max_passes: Maximum number of full sweeps over all rows; the loop
            stops early when a sweep applies no swap.

    Returns:
        Total number of swaps applied.
    """
    total = 0
    for _ in range(max_passes):
        swaps = 0
        for row in placement.rows:
            # Cooperative cancellation between rows: a pass over a large
            # design is the placer's long-running unit of work.
            check_active("placement.detailed")
            swaps += improve_row(placement, row)
        total += swaps
        if swaps == 0:
            break
    return total
