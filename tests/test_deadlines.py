"""Deadline suite: hung work is bounded on every execution tier.

PR 8's chaos suite proved components that *fail* are quarantined; this
suite proves components that *hang* are cancelled.  A seeded ``hang``
fault (:class:`~repro.faults.FaultRule` with ``kind="hang"``) is pushed
through the serial, threaded, batched, process-sharded and served sweep
paths under a per-point deadline.  The invariants:

* the sweep *completes* in bounded wall-clock time — a hanging point is
  cancelled (cooperatively, or by the parent watchdog SIGKILLing a stuck
  shard worker) and quarantined, never allowed to wedge the grid;
* ``metadata["timeouts"]`` counts exactly the attempts lost to blown
  deadlines;
* surviving records stay bitwise-identical to a fault-free run;
* ``DeadlineExceeded`` is retryable, so a transient hang heals under the
  retry policy;
* a blown deadline inside the multigrid loop propagates — it never
  triggers (and pays for) the LU fallback.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.deadlines import (
    Budget,
    Deadline,
    DeadlineExceeded,
    check_active,
    current_deadline,
    deadline_scope,
)
from repro.faults import FaultPlan, FaultRule, RetryPolicy, active_plan
from repro.flow import Campaign, ExperimentSetup, SolverCache
from repro.service import ServiceError, SweepClient, SweepServer
from repro.thermal import ThermalGrid, ThermalSolver, default_package

NX = NY = 16
STRATEGIES = ("default", "eri")
OVERHEADS = (0.1, 0.2)

#: Per-point deadline used by the campaign tests: far above a healthy
#: point's runtime on this grid, far below the suite's patience.
POINT_TIMEOUT_S = 0.75


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """No test may leave a fault plan installed process-wide."""
    yield
    faults.deactivate()


@pytest.fixture(autouse=True)
def _no_leaked_scope():
    """No test may leave a deadline scope on the main thread."""
    yield
    assert current_deadline() is None


@pytest.fixture(scope="module")
def deadline_setup():
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=11,
    )


@pytest.fixture(scope="module")
def reference(deadline_setup):
    """Fault-free serial sweep the surviving records must match bitwise."""
    return Campaign(deadline_setup, STRATEGIES, OVERHEADS, name="ref").run(
        max_workers=1
    )


def _hang_rule(**match):
    """An unbounded cooperative hang: only a deadline can end it."""
    return FaultRule(
        site="point.evaluate", kind="hang", times=None,
        match=match or {"strategy": "eri", "overhead": 0.2},
    )


def _assert_survivors_bitwise(result, reference_result, *, expect_failed=1):
    assert result.metadata["num_failed"] == expect_failed
    failed = result.failed_points
    assert len(failed) == expect_failed
    for entry in failed:
        assert entry["strategy"] == "eri" and entry["overhead"] == 0.2
        assert "deadline exceeded" in entry["error"]
    survivors = {record.point: record for record in result.records}
    assert len(survivors) == len(reference_result.records) - expect_failed
    for ref in reference_result.records:
        if ref.point in survivors:
            assert survivors[ref.point].outcome == ref.outcome  # bitwise


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(60.0)
        assert 0.0 < deadline.remaining() <= 60.0
        assert not deadline.expired()
        deadline.check("fine")  # must not raise
        with pytest.raises(ValueError, match=">= 0"):
            Deadline.after(-1.0)

    def test_never_is_inert(self):
        never = Deadline.never()
        assert never.remaining() == float("inf")
        assert not never.expired()
        never.check("fine")

    def test_expired_check_names_site_and_overrun(self):
        deadline = Deadline.after(0.0)
        assert deadline.expired()
        assert deadline.remaining() <= 0.0
        with pytest.raises(DeadlineExceeded, match="solver.multigrid") as info:
            deadline.check("solver.multigrid")
        assert info.value.site == "solver.multigrid"
        assert info.value.overrun_s >= 0.0
        assert isinstance(info.value, TimeoutError)

    def test_sub_is_capped_by_parent(self):
        parent = Deadline.after(0.5)
        child = parent.sub(3600.0)
        assert child.instant == parent.instant  # cannot outlive the parent
        tighter = parent.sub(0.0)
        assert tighter.instant <= parent.instant
        unlimited_child = Deadline.never().sub(1.0)
        assert unlimited_child.instant is not None

    def test_min_picks_the_tighter(self):
        soon = Deadline.after(0.1)
        late = Deadline.after(60.0)
        assert soon.min(late) is soon
        assert late.min(soon) is soon
        assert Deadline.never().min(soon) is soon
        assert soon.min(Deadline.never()) is soon

    def test_budget_split_carves_off(self):
        budget = Budget(10.0)
        child = budget.split(0.3)
        assert child.seconds == pytest.approx(3.0)
        assert budget.seconds == pytest.approx(7.0)
        deadline = child.deadline()
        assert 0.0 < deadline.remaining() <= 3.0
        with pytest.raises(ValueError, match="fraction"):
            budget.split(1.5)
        with pytest.raises(ValueError, match=">= 0"):
            Budget(-1.0)

    def test_unlimited_budget_stays_unlimited(self):
        budget = Budget(None)
        assert budget.split(0.5).seconds is None
        assert budget.seconds is None
        assert budget.deadline().instant is None


class TestScopes:
    def test_check_active_without_scope_is_a_noop(self):
        assert current_deadline() is None
        check_active("anywhere")  # must not raise

    def test_scope_installs_and_restores(self):
        with deadline_scope(Deadline.after(60.0)) as effective:
            assert current_deadline() is effective
            check_active("inside")
        assert current_deadline() is None

    def test_expired_scope_cancels(self):
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded, match="loop"):
                check_active("loop")

    def test_nested_scope_takes_the_tighter(self):
        # An inner never-deadline cannot loosen an expired outer one.
        with deadline_scope(Deadline.after(0.0)):
            with deadline_scope(Deadline.never()):
                with pytest.raises(DeadlineExceeded):
                    check_active("nested")

    def test_scopes_are_thread_local(self):
        seen = {}

        def probe():
            seen["deadline"] = current_deadline()
            check_active("other thread")  # no scope here: no raise

        with deadline_scope(Deadline.after(0.0)):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join(timeout=10.0)
        assert seen["deadline"] is None

    def test_deadline_exceeded_is_retryable(self):
        policy = RetryPolicy()
        assert policy.classify(DeadlineExceeded("site"))
        assert not policy.classify(ValueError())


class TestHangFault:
    def test_bounded_hang_returns(self):
        plan = FaultPlan(rules=[
            FaultRule(site="s", kind="hang", hang_s=0.05)
        ])
        with active_plan(plan):
            start = time.monotonic()
            faults.inject("s", {})
        assert 0.05 <= time.monotonic() - start < 5.0
        assert plan.fired("s") == 1

    def test_cooperative_hang_cancelled_by_deadline(self):
        with active_plan(FaultPlan(rules=[_hang_rule()])):
            start = time.monotonic()
            with deadline_scope(Deadline.after(0.1)):
                with pytest.raises(DeadlineExceeded):
                    faults.inject(
                        "point.evaluate", {"strategy": "eri", "overhead": 0.2}
                    )
        assert time.monotonic() - start < 5.0

    def test_hang_rule_validation_and_roundtrip(self):
        with pytest.raises(ValueError, match="hang_s"):
            FaultRule(site="s", kind="hang", hang_s=-1.0)
        rule = FaultRule(site="s", kind="hang", hang_s=0.5, cooperative=False)
        clone = FaultRule.from_dict(rule.to_dict())
        assert clone.kind == "hang"
        assert clone.hang_s == 0.5
        assert clone.cooperative is False
        # The default (cooperative) is not serialized, and parses back.
        default = FaultRule.from_dict(FaultRule(site="s", kind="hang").to_dict())
        assert default.cooperative is True and default.hang_s is None


class TestSolverCancellation:
    def test_multigrid_deadline_bypasses_lu_fallback(self):
        grid = ThermalGrid(800.0, 800.0, nx=NX, ny=NY, package=default_package())
        power = np.random.default_rng(3).random((NY, NX)) * 1e-4
        solver = ThermalSolver(grid, method="multigrid")
        with deadline_scope(Deadline.after(0.0)):
            with pytest.raises(DeadlineExceeded):
                solver.solve(power)
        # A blown deadline must not be absorbed into a degraded record —
        # and must never start the (expensive) LU factorisation.
        assert solver.fallback_count == 0
        healthy = solver.solve(power)  # scope gone: solves normally
        assert not healthy.fallback_used


class TestCampaignTimeouts:
    def test_hanging_point_quarantined_serial(self, deadline_setup, reference):
        with active_plan(FaultPlan(rules=[_hang_rule()])):
            start = time.monotonic()
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS, name="serial-hang",
                point_timeout_s=POINT_TIMEOUT_S,
            ).run(max_workers=1)
        assert time.monotonic() - start < 60.0  # bounded, not wedged
        _assert_survivors_bitwise(result, reference)
        assert result.metadata["timeouts"] == 1
        assert result.metadata["point_timeout_s"] == POINT_TIMEOUT_S

    def test_hanging_point_quarantined_threaded(self, deadline_setup, reference):
        with active_plan(FaultPlan(rules=[_hang_rule()])):
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS, name="thread-hang",
                point_timeout_s=POINT_TIMEOUT_S,
            ).run(max_workers=2)
        _assert_survivors_bitwise(result, reference)
        assert result.metadata["timeouts"] == 1

    def test_hanging_point_quarantined_batched(self, deadline_setup):
        batched_ref = Campaign(
            deadline_setup, STRATEGIES, OVERHEADS, name="batched-ref",
            batch_solves=True,
        ).run(max_workers=1)
        with active_plan(FaultPlan(rules=[_hang_rule()])):
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS, name="batched-hang",
                batch_solves=True, point_timeout_s=POINT_TIMEOUT_S,
            ).run(max_workers=1)
        _assert_survivors_bitwise(result, batched_ref)
        assert result.metadata["timeouts"] == 1

    def test_transient_hang_retried_to_success(self, deadline_setup, reference):
        # The hang only matches attempt 0: the timed-out attempt is
        # retryable (DeadlineExceeded is a TimeoutError), so one retry
        # converges the sweep to the fault-free answer, bitwise.
        plan = FaultPlan(rules=[
            _hang_rule(strategy="eri", overhead=0.2, attempt=0)
        ])
        with active_plan(plan):
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS, name="retry-hang",
                point_timeout_s=POINT_TIMEOUT_S,
                retry_policy=RetryPolicy(max_attempts=2, backoff_s=0.0),
            ).run(max_workers=1)
        assert result.metadata["num_failed"] == 0
        assert result.metadata["timeouts"] == 1
        assert result.metadata["retries"] == 1
        for ours, ref in zip(result.records, reference.records):
            assert ours.outcome == ref.outcome

    def test_without_timeout_bounded_hang_just_runs_long(self, deadline_setup):
        # No point_timeout_s: a (bounded) hang is slow, not fatal — the
        # campaign has no deadline to blow.
        plan = FaultPlan(rules=[FaultRule(
            site="point.evaluate", kind="hang", hang_s=0.1,
            match={"strategy": "eri", "overhead": 0.2},
        )])
        with active_plan(plan):
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS, name="no-timeout",
            ).run(max_workers=1)
        assert result.metadata["num_failed"] == 0
        assert result.metadata["timeouts"] == 0


class TestShardedTimeouts:
    def test_cooperative_hang_quarantined_sharded(self, deadline_setup, reference):
        # The worker's own deadline scope cancels the pollable hang; the
        # parent counts the timeout and quarantines the point.
        with active_plan(FaultPlan(rules=[_hang_rule()])):
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS,
                executor="process", name="shard-hang",
                point_timeout_s=POINT_TIMEOUT_S,
            ).run(max_workers=2)
        _assert_survivors_bitwise(result, reference)
        assert result.metadata["timeouts"] == 1

    def test_watchdog_kills_stuck_worker(self, deadline_setup, reference):
        # cooperative=False never polls the deadline — the worker is
        # genuinely stuck, as in native code.  The parent watchdog must
        # SIGKILL it past the grace window; the requeued attempt (the rule
        # matches attempt 0 only) then succeeds on a respawned worker.
        plan = FaultPlan(rules=[FaultRule(
            site="shard.worker", kind="hang", cooperative=False, times=None,
            match={"strategy": "default", "overhead": 0.1, "attempt": 0},
        )])
        with active_plan(plan):
            start = time.monotonic()
            result = Campaign(
                deadline_setup, STRATEGIES, OVERHEADS,
                executor="process", name="watchdog",
                point_timeout_s=POINT_TIMEOUT_S,
            ).run(max_workers=2)
        assert time.monotonic() - start < 120.0
        assert result.metadata["num_failed"] == 0
        assert result.metadata["timeouts"] >= 1
        assert result.metadata["respawns"] >= 1
        assert len(result.records) == len(reference.records)
        for ours, ref in zip(result.records, reference.records):
            assert ours.point == ref.point
            assert ours.outcome == ref.outcome  # bitwise


class TestServiceDeadlines:
    @pytest.fixture(scope="class")
    def server(self, deadline_setup):
        instance = SweepServer(
            {deadline_setup.workload.name: deadline_setup}, port=0,
            batch_window_s=0.05, point_timeout_s=POINT_TIMEOUT_S,
        )
        with instance:
            yield instance

    def test_health_reports_deadline_config_and_inflight_age(self, server):
        host, port = server.address
        health = SweepClient(host=host, port=port).health()
        assert health["request_timeout_s"] == server.request_timeout_s
        assert health["point_timeout_s"] == POINT_TIMEOUT_S
        assert health["oldest_inflight_s"] == 0.0  # nothing pending

    def test_bad_client_timeout_rejected(self, server, deadline_setup):
        name = deadline_setup.workload.name
        base = {
            "op": "sweep", "workload": name,
            "strategies": ["eri"], "overheads": [0.1],
        }
        response = server._handle_sweep({**base, "timeout_s": -1})
        assert not response["ok"] and "timeout_s must be > 0" in response["error"]
        response = server._handle_sweep({**base, "timeout_s": "nope"})
        assert not response["ok"] and "bad timeout_s" in response["error"]

    def test_served_hanging_point_fails_fast_then_heals(
        self, server, deadline_setup
    ):
        host, port = server.address
        name = deadline_setup.workload.name
        client = SweepClient(host=host, port=port)
        with active_plan(FaultPlan(rules=[_hang_rule()])):
            start = time.monotonic()
            with pytest.raises(ServiceError, match="failed after"):
                client.sweep(name, STRATEGIES, OVERHEADS)
        assert time.monotonic() - start < 60.0  # cancelled, not wedged
        assert client.ping()["ok"]  # the daemon survived
        # Fault gone: only the timed-out point is recomputed.
        result, stats = client.sweep(name, STRATEGIES, OVERHEADS)
        assert len(result.records) == 4
        assert stats["store_hits"] == 3
        assert stats["computed"] == 1

    def test_batch_deadline_bounds_a_hung_batch(self, deadline_setup):
        # A cooperative hang at the batch seam runs under the per-batch
        # deadline scope: the batch fails its waiters within
        # request_timeout_s instead of wedging the scheduler thread.
        instance = SweepServer(
            {deadline_setup.workload.name: deadline_setup}, port=0,
            batch_window_s=0.05, request_timeout_s=1.0,
        )
        plan = FaultPlan(rules=[
            FaultRule(site="service.batch", kind="hang", times=1)
        ])
        with instance:
            host, port = instance.address
            client = SweepClient(host=host, port=port)
            with active_plan(plan):
                start = time.monotonic()
                with pytest.raises(ServiceError, match="deadline exceeded"):
                    client.sweep(
                        deadline_setup.workload.name, ("eri",), (0.1,)
                    )
                assert time.monotonic() - start < 30.0
            assert client.ping()["ok"]  # scheduler thread still alive
