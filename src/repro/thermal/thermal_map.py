"""Thermal maps: solved temperature fields and their metrics.

A :class:`ThermalMap` holds the temperature of every thermal cell of the
active layer (the layer the standard cells live in), which is what the
paper's thermal maps (Figure 5, right) show, plus the scalar metrics the
evaluation uses: peak temperature, peak temperature rise above ambient and
the on-die temperature gradient (max minus min).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .grid import ThermalGrid


@dataclass
class ThermalMap:
    """Active-layer temperature field and associated metadata.

    Attributes:
        temperatures: Array of shape ``(ny, nx)`` with absolute
            temperatures in Celsius of the active layer; row 0 is the
            bottom (minimum y) of the die.
        ambient: Ambient temperature in Celsius.
        full_field: Optional full 3-D field of shape ``(nz, ny, nx)``.
        package_temperature: Temperature of the lumped package node, if any.
        grid_rises: Flat grid temperature-rise vector (Kelvin above
            ambient, length ``nx * ny * nz``) the map was built from, when
            produced by a solver.  This is what warm-starts the multigrid
            backend on subsequent re-solves (leakage feedback, sweep
            points); ``None`` on hand-built maps.
        fallback_used: True when the solver produced this map through its
            degraded path (multigrid failed and the direct LU fallback
            answered).  The temperatures are still exact — LU is the
            reference backend — but they are not bitwise-comparable to a
            healthy multigrid run, so downstream records carry the flag.
    """

    temperatures: np.ndarray
    ambient: float
    full_field: Optional[np.ndarray] = None
    package_temperature: Optional[float] = None
    grid_rises: Optional[np.ndarray] = None
    fallback_used: bool = False

    # -- scalar metrics -------------------------------------------------------

    @property
    def peak(self) -> float:
        """Peak temperature in Celsius."""
        return float(self.temperatures.max())

    @property
    def peak_rise(self) -> float:
        """Peak temperature rise above ambient in Kelvin."""
        return self.peak - self.ambient

    @property
    def minimum(self) -> float:
        """Minimum active-layer temperature in Celsius."""
        return float(self.temperatures.min())

    @property
    def gradient(self) -> float:
        """On-die temperature gradient (max minus min) in Kelvin."""
        return self.peak - self.minimum

    @property
    def mean_rise(self) -> float:
        """Mean temperature rise above ambient in Kelvin."""
        return float(self.temperatures.mean()) - self.ambient

    def peak_location(self) -> Tuple[int, int]:
        """Grid indices ``(iy, ix)`` of the hottest thermal cell."""
        flat = int(np.argmax(self.temperatures))
        iy, ix = np.unravel_index(flat, self.temperatures.shape)
        return int(iy), int(ix)

    def rise_map(self) -> np.ndarray:
        """Temperature rise above ambient for every cell, in Kelvin."""
        return self.temperatures - self.ambient

    def reduction_versus(self, baseline: "ThermalMap") -> float:
        """Peak-temperature reduction of this map relative to a baseline.

        Defined, as in the paper's evaluation, on the peak temperature rise
        above ambient: ``(rise_base - rise_this) / rise_base``.

        Returns:
            The fractional reduction (positive means this map is cooler).

        Raises:
            ValueError: If the baseline has a non-positive peak rise.
        """
        base_rise = baseline.peak_rise
        if base_rise <= 0.0:
            raise ValueError("baseline peak rise must be positive")
        return (base_rise - self.peak_rise) / base_rise

    def statistics(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "peak_celsius": self.peak,
            "peak_rise_kelvin": self.peak_rise,
            "mean_rise_kelvin": self.mean_rise,
            "gradient_kelvin": self.gradient,
            "ambient_celsius": self.ambient,
        }


def map_from_solution(
    grid: ThermalGrid,
    solution: np.ndarray,
    package_node: Optional[int],
    keep_full_field: bool = False,
    fallback_used: bool = False,
) -> ThermalMap:
    """Convert a flat temperature-rise solution vector into a :class:`ThermalMap`.

    Args:
        grid: The thermal mesh the solution refers to.
        solution: Vector of temperature rises (Kelvin above ambient) of
            length ``grid.num_nodes`` (+1 if a package node is present).
        package_node: Index of the package node in ``solution`` or ``None``.
        keep_full_field: Store the full 3-D field in the result.
        fallback_used: Mark the map as produced by the degraded LU path.

    Returns:
        The active-layer :class:`ThermalMap` in absolute Celsius.
    """
    ambient = grid.package.ambient_celsius
    rises = np.asarray(solution[: grid.num_nodes], dtype=float)
    field = rises.reshape(grid.nz, grid.ny, grid.nx)
    active = field[grid.package.active_layer]
    package_temp = (
        float(solution[package_node]) + ambient if package_node is not None else None
    )
    return ThermalMap(
        temperatures=active + ambient,
        ambient=ambient,
        full_field=(field + ambient) if keep_full_field else None,
        package_temperature=package_temp,
        grid_rises=rises,
        fallback_used=fallback_used,
    )
