#!/usr/bin/env python3
"""Bring your own design: a custom unit mix through the whole tool chain.

Shows the lower-level APIs that the one-call experiment flow wraps:

1. assemble a custom benchmark from the arithmetic-unit generators,
2. place it, estimate per-cell power under a custom workload,
3. export the placed design (structural Verilog + DEF) and the thermal
   RC network as a SPICE deck,
4. wrap the hottest spot with the hotspot-wrapper transformation and
   report the before/after metrics, including timing.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.analysis import compare
from repro.bench import UnitSpec, build_synthetic_circuit, custom_workload
from repro.core import apply_hotspot_wrapper, detect_hotspots
from repro.netlist import write_def, write_verilog
from repro.placement import place_design
from repro.power import PowerModel, build_power_map, estimate_activity
from repro.thermal import (
    ThermalNetwork,
    default_package,
    grid_for_placement,
    simulate_placement,
    write_spice_netlist,
)
from repro.timing import analyze_timing


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output-dir", type=Path, default=Path("custom_circuit_out"),
                        help="where to write the exported Verilog/DEF/SPICE files")
    args = parser.parse_args()
    args.output_dir.mkdir(parents=True, exist_ok=True)

    # 1. A custom design: two multipliers, a MAC and two adders.
    units = (
        UnitSpec("dsp_mul16", "wallace_mult", 16),
        UnitSpec("dsp_mul12", "array_mult", 12),
        UnitSpec("dsp_mac12", "mac", 12),
        UnitSpec("ctl_cla32", "cla", 32),
        UnitSpec("ctl_csa16", "csa", 16, operands=4),
    )
    netlist = build_synthetic_circuit(units=units, name="custom_dsp")
    print(f"custom design: {netlist.num_cells} cells in {len(netlist.units())} units")

    # 2. Placement and power under a workload where one small multiplier is
    #    busy while everything else idles -- a small, concentrated hotspot,
    #    which is exactly the case the hotspot wrapper is designed for.
    placement = place_design(netlist, utilization=0.8)
    workload = custom_workload("dsp_busy", ["dsp_mul12"])
    activity = estimate_activity(netlist, workload.port_toggle_probabilities(netlist))
    power = PowerModel().estimate(netlist, activity)
    thermal = simulate_placement(placement, power)
    print(f"placed at {placement.utilization():.2f} utilization, "
          f"total power {power.total() * 1e3:.2f} mW, "
          f"peak rise {thermal.peak_rise:.2f} K")

    # 3. Export the artefacts a downstream flow would consume.
    (args.output_dir / "custom_dsp.v").write_text(write_verilog(netlist))
    (args.output_dir / "custom_dsp.def").write_text(
        write_def(netlist, placement.floorplan.die_width, placement.floorplan.die_height,
                  placement.floorplan.num_rows, placement.floorplan.row_height)
    )
    grid = grid_for_placement(placement, package=default_package())
    network = ThermalNetwork(grid)
    power_map = build_power_map(placement, power)
    (args.output_dir / "thermal_network.sp").write_text(
        write_spice_netlist(network, power_map.power_w)
    )
    print(f"wrote Verilog, DEF and SPICE deck to {args.output_dir}/")

    # 4. Wrap the hottest spot and compare before/after.
    hotspots = detect_hotspots(thermal, placement, power=power, threshold_fraction=0.75)
    print(f"detected {len(hotspots)} hotspot(s); "
          f"hottest caused by {hotspots[0].dominant_units[:2]}")
    wrapped = apply_hotspot_wrapper(placement, hotspots)
    new_thermal = simulate_placement(wrapped.placement, power)

    baseline_timing = analyze_timing(netlist, temperature=thermal.peak)
    new_timing = analyze_timing(wrapped.placement.netlist, temperature=new_thermal.peak)
    metrics = compare(placement, thermal, wrapped.placement, new_thermal,
                      baseline_timing, new_timing)
    print(f"hotspot wrapper: {metrics.temperature_reduction * 100:.2f}% peak-rise "
          f"reduction, {metrics.timing_overhead * 100:+.2f}% timing overhead, "
          f"{wrapped.num_fillers} fillers inserted")


if __name__ == "__main__":
    main()
