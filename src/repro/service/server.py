"""The ``repro serve`` daemon: a batching, deduplicating sweep service.

One :class:`SweepServer` owns the expensive state — prepared experiment
baselines, the factorised-solver cache, the persistent result store — and
serves sweep requests from many concurrent clients over TCP.  Each request
names a workload and a (strategies x overheads) grid; the daemon resolves
every point against three tiers, cheapest first:

1. **Result store** — points evaluated by any earlier request, campaign or
   server lifetime are answered immediately from the store.
2. **In-flight dedupe** — a point another request is already computing is
   joined, not recomputed: both requests receive the one record.
3. **Cross-request batching** — remaining misses from *all* concurrent
   requests are gathered for a short window, grouped by transformed die
   geometry, and solved as warm-started multi-RHS blocks
   (:meth:`~repro.thermal.solver.ThermalSolver.solve_many`).  The
   "millions of users" story: many small requests amortized into a few
   big batched solves, with ``num_solve_groups`` < total points.

Records are computed by the same :class:`~repro.flow.runner.Campaign`
machinery clients would run locally, so server-side results are
bitwise-identical to an in-process sweep (on the LU backend; multigrid
batches agree to ~1e-12, exactly as ``Campaign(batch_solves=True)``).

The wire protocol is newline-delimited JSON over a plain socket — one
request object per line, one response object per line, stdlib only.
"""

from __future__ import annotations

import json
import logging
import socketserver
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, TimeoutError as FuturesTimeoutError
from typing import Dict, List, Mapping, Optional, Tuple

from ..core import resolve_strategy
from ..deadlines import Deadline, deadline_scope
from ..faults import InjectedFault, inject
from ..flow.cache import SolverCache
from ..flow.experiment import ExperimentSetup
from ..flow.recover import recover_store
from ..flow.runner import Campaign, CampaignPoint, CampaignRecord, FailedPoint
from ..flow.store import ResultStore
from .admission import (
    AdmissionController,
    AdmissionError,
    ClientQuota,
    FairTaskQueue,
)
from .governor import ResourceGovernor

logger = logging.getLogger(__name__)

#: Protocol identifier echoed by ``ping`` so clients can verify what they
#: reached before submitting work.
PROTOCOL = "repro-sweep/1"


class _Task:
    """One point a request is waiting on, with its fan-out future.

    ``client`` and ``deadline`` drive the fair queue: batches are
    gathered round-robin across clients, and when the in-flight bound is
    hit the queued tasks closest to missing their deadline are shed first.
    """

    __slots__ = (
        "key", "point", "analyze_timing", "future", "created_at",
        "client", "deadline",
    )

    def __init__(
        self,
        key: str,
        point: CampaignPoint,
        analyze_timing: bool,
        client: str = "anonymous",
        deadline: Optional[float] = None,
    ) -> None:
        self.key = key
        self.point = point
        self.analyze_timing = analyze_timing
        self.future: "Future[CampaignRecord]" = Future()
        self.created_at = time.monotonic()
        self.client = client
        self.deadline = deadline if deadline is not None else float("inf")


class SweepServer:
    """Long-running sweep daemon over prepared experiment baselines.

    Args:
        setups: Prepared baselines, keyed by workload name — the workloads
            clients may sweep.  Preparing them is the server operator's
            startup cost; requests only ever pay for strategy evaluation.
        result_store: Persistent record store; a memory-only
            :class:`ResultStore` when omitted.  Give it an on-disk root to
            share results with offline campaigns and across restarts.
        cache: Factorised-solver cache shared by every request; fresh
            when omitted.
        host: Bind address (default loopback).
        port: Bind port; ``0`` (default) picks a free one — read
            :attr:`address` after construction.
        batch_window_s: How long the scheduler gathers points across
            requests before solving a batch.  Larger windows find more
            cross-request geometry sharing; smaller windows cut latency.
        max_batch: Upper bound on points per gathered batch.
        max_workers: Worker threads per batch evaluation (default: CPUs).
        request_timeout_s: How long a request handler waits for its
            points before failing the request.  Each gathered batch also
            runs its solves under a deadline of the same length, so a hung
            solve fails its batch instead of wedging the scheduler.
        point_timeout_s: Per-point attempt budget forwarded to the
            server's internal campaigns (see
            :class:`~repro.flow.runner.Campaign`); ``None`` disables
            per-point deadlines.
        auth_token: Shared secret; when set, sweep and shutdown requests
            must carry a matching ``token`` field (``submit --token``).
        quota: Per-client limits (rate, points/request, in-flight
            points); ``None`` admits everything.
        max_inflight_points: Hard cap on in-flight point futures across
            *all* clients.  When full, queued points closest to missing
            their deadline are shed in favour of longer-lived work; if
            nothing sheddable remains the new request is rejected with a
            ``retry_after_s`` hint.
        max_pending_requests: Cap on sweep requests being served
            concurrently (each holds a handler thread).
        max_request_bytes: Largest accepted request line; longer frames
            get a structured ``payload_too_large`` error.
        max_rss_mb: Process memory budget for the resource governor;
            ``None`` disables graceful degradation.
        artifact_store: Optional artifact cache whose in-memory LRU the
            governor shrinks under memory pressure.
        shed_retry_after_s: Retry hint attached to shed/overload
            rejections (rate-limit rejections compute the exact
            token-bucket refill time instead).
    """

    def __init__(
        self,
        setups: Mapping[str, ExperimentSetup],
        result_store: Optional[ResultStore] = None,
        cache: Optional[SolverCache] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_window_s: float = 0.05,
        max_batch: int = 256,
        max_workers: Optional[int] = None,
        request_timeout_s: float = 600.0,
        point_timeout_s: Optional[float] = None,
        auth_token: Optional[str] = None,
        quota: Optional[ClientQuota] = None,
        max_inflight_points: Optional[int] = None,
        max_pending_requests: Optional[int] = None,
        max_request_bytes: int = 1_048_576,
        max_rss_mb: Optional[float] = None,
        artifact_store=None,
        shed_retry_after_s: float = 0.25,
    ) -> None:
        if not setups:
            raise ValueError("server requires at least one prepared setup")
        if batch_window_s < 0:
            raise ValueError("batch_window_s must be >= 0")
        if request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be > 0")
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError("point_timeout_s must be > 0")
        if max_inflight_points is not None and max_inflight_points <= 0:
            raise ValueError("max_inflight_points must be > 0")
        if max_pending_requests is not None and max_pending_requests <= 0:
            raise ValueError("max_pending_requests must be > 0")
        if max_request_bytes <= 0:
            raise ValueError("max_request_bytes must be > 0")
        self.setups: Dict[str, ExperimentSetup] = dict(setups)
        self.store = result_store if result_store is not None else ResultStore()
        self.cache = cache if cache is not None else SolverCache()
        self.batch_window_s = batch_window_s
        self.max_batch = max_batch
        self.max_workers = max_workers
        self.request_timeout_s = request_timeout_s
        self.point_timeout_s = point_timeout_s
        self.max_inflight_points = max_inflight_points
        self.max_pending_requests = max_pending_requests
        self.max_request_bytes = max_request_bytes
        self.shed_retry_after_s = shed_retry_after_s
        self.admission = AdmissionController(
            quota=quota, auth_token=auth_token, retry_after_s=shed_retry_after_s
        )
        self.governor = ResourceGovernor(
            max_rss_mb=max_rss_mb,
            result_store=self.store,
            artifact_store=artifact_store,
        )

        # A hard-killed predecessor may have left single-flight claims and
        # staging debris in the shared store; clear what is provably
        # abandoned before accepting requests, so the first sweeps do not
        # wait out stale claims.
        if self.store.root is not None:
            try:
                recovered = recover_store(self.store.root)
                if recovered.num_repaired:
                    logger.warning(
                        "recovered result store %s at startup (%s)",
                        self.store.root, recovered.summary(),
                    )
            except OSError as error:
                logger.warning("store recovery pass failed: %s", error)

        # One batching campaign per analyze_timing flavour; both share the
        # server's setups and solver cache, so geometry reuse spans them.
        self._campaigns: Dict[bool, Campaign] = {}
        self._pending: Dict[str, _Task] = {}
        self._queue = FairTaskQueue()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._draining = threading.Event()
        self._closed = threading.Event()
        self._active_requests = 0
        self._counters = {
            "requests": 0,
            "points_requested": 0,
            "store_hits": 0,
            "inflight_joins": 0,
            "points_solved": 0,
            "num_solve_groups": 0,
            "batches": 0,
            "failed_points": 0,
            "bad_requests": 0,
        }

        server = self

        class _Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:  # one JSON line per request
                limit = server.max_request_bytes
                while True:
                    try:
                        line = self.rfile.readline(limit + 1)
                    except OSError:
                        return
                    if not line:
                        return
                    if len(line) > limit:
                        # Oversized frame: refuse it with a structured
                        # error, then discard bytes up to the next
                        # newline so the connection can keep framing.
                        if not line.endswith(b"\n") and not self._drain_oversized():
                            return
                        server._note_bad_request()
                        response: Dict[str, object] = {
                            "ok": False,
                            "code": "payload_too_large",
                            "error": (
                                f"request line exceeds "
                                f"{limit} bytes"
                            ),
                            "retryable": False,
                        }
                    elif not line.endswith(b"\n"):
                        # Truncated frame: the peer closed mid-line;
                        # nothing well-formed to answer.
                        return
                    else:
                        try:
                            response = server._dispatch(line)
                        except Exception as error:  # pragma: no cover
                            # _dispatch has its own guard; this is the
                            # belt for anything that escapes it, so one
                            # poisoned line can never kill the
                            # connection loop.
                            logger.exception("dispatch failed")
                            response = {
                                "ok": False,
                                "code": "internal",
                                "error": f"{type(error).__name__}: {error}",
                            }
                    try:
                        self.wfile.write(
                            json.dumps(response, sort_keys=False).encode()
                            + b"\n"
                        )
                        self.wfile.flush()
                    except OSError:
                        return
                    if response.get("closing"):
                        return

            def _drain_oversized(self) -> bool:
                """Discard the rest of an oversized line; False at EOF."""
                while True:
                    try:
                        chunk = self.rfile.readline(server.max_request_bytes)
                    except OSError:
                        return False
                    if not chunk:
                        return False
                    if chunk.endswith(b"\n"):
                        return True

        class _TCPServer(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._tcp = _TCPServer((host, port), _Handler)
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-batcher", daemon=True
        )
        self._serve_thread: Optional[threading.Thread] = None
        self._accept_loop_started = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` the server is bound to."""
        return self._tcp.server_address[:2]

    def start(self) -> None:
        """Serve in background threads (for tests and embedding)."""
        self._accept_loop_started = True
        self._scheduler.start()
        self._serve_thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve-accept", daemon=True
        )
        self._serve_thread.start()
        logger.info("repro serve listening on %s:%d", *self.address)

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown` (CLI mode)."""
        self._accept_loop_started = True
        self._scheduler.start()
        logger.info("repro serve listening on %s:%d", *self.address)
        self._tcp.serve_forever()

    def shutdown(self, drain: bool = False, drain_timeout_s: float = 30.0) -> None:
        """Stop the server and release the socket.

        With ``drain=True`` the accept loop stops first (new connections are
        refused and new sweeps rejected), then in-flight batches are given up
        to ``drain_timeout_s`` to finish before the scheduler is stopped.
        Without draining, outstanding points fail immediately with
        ``RuntimeError("server shut down")``.
        """
        self._draining.set()
        # Refuse new connections before anything else; handler threads
        # already inside a request keep running until their response is sent.
        # BaseServer.shutdown() waits on an event only serve_forever() sets,
        # so it must be skipped when the accept loop never ran.
        if self._accept_loop_started:
            self._tcp.shutdown()
        if drain:
            deadline = time.monotonic() + drain_timeout_s
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(0.02)
        self._stop.set()
        self._tcp.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._scheduler.is_alive():
            self._scheduler.join(timeout=5.0)
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for task in pending:
            if not task.future.done():
                task.future.set_exception(RuntimeError("server shut down"))
        self._closed.set()

    def wait_closed(self, timeout: Optional[float] = None) -> bool:
        """Block until a (possibly draining) shutdown has fully finished.

        The ``shutdown`` protocol op runs :meth:`shutdown` on a background
        thread; CLI mode waits on this after the accept loop returns so a
        drain is not cut short by process exit.
        """
        return self._closed.wait(timeout)

    def __enter__(self) -> "SweepServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # -- request dispatch ----------------------------------------------------

    def _note_bad_request(self) -> None:
        with self._lock:
            self._counters["bad_requests"] += 1

    def _dispatch(self, line: bytes) -> Dict[str, object]:
        try:
            payload = json.loads(line)
            if not isinstance(payload, dict):
                raise ValueError("request must be a JSON object")
        except Exception as error:
            # Broad on purpose: json.loads can raise beyond ValueError
            # (RecursionError on deeply nested garbage, for one), and a
            # malformed line must come back as a structured error, not a
            # dead connection.
            self._note_bad_request()
            return {
                "ok": False,
                "code": "bad_request",
                "error": f"bad request: {type(error).__name__}: {error}",
                "retryable": False,
            }
        op = payload.get("op")
        client = str(payload.get("client") or "anonymous")
        try:
            if op == "ping":
                return {"ok": True, "protocol": PROTOCOL,
                        "workloads": sorted(self.setups)}
            if op == "health":
                return self._handle_health()
            if op == "stats":
                return {"ok": True, "stats": self.stats()}
            if op == "sweep":
                return self._handle_sweep(payload, client)
            if op == "shutdown":
                try:
                    self.admission.authenticate(dict(payload), client)
                except AdmissionError as rejection:
                    return rejection.to_response()
                # Deferred: respond first, then stop the accept loop from a
                # thread that is not inside it.  ``drain: true`` finishes
                # in-flight batches before the scheduler stops.
                drain = bool(payload.get("drain", False))
                self._draining.set()
                threading.Thread(
                    target=self.shutdown, kwargs={"drain": drain}, daemon=True
                ).start()
                return {"ok": True, "closing": True, "draining": drain}
            self._note_bad_request()
            return {
                "ok": False,
                "code": "bad_request",
                "error": f"unknown op {op!r}",
                "retryable": False,
            }
        except Exception as error:  # a request must never kill the daemon
            logger.exception("request %r failed", op)
            return {"ok": False, "error": f"{type(error).__name__}: {error}"}

    def _handle_health(self) -> Dict[str, object]:
        now = time.monotonic()
        with self._lock:
            pending = len(self._pending)
            oldest = min(
                (now - task.created_at for task in self._pending.values()),
                default=0.0,
            )
        admission = self.admission.counters()
        return {
            "ok": True,
            "protocol": PROTOCOL,
            "status": "draining" if self._draining.is_set() else "serving",
            "pending": pending,
            # Age of the longest-waiting in-flight point: the
            # operator's wedge detector (compare against
            # request_timeout_s when alerting).
            "oldest_inflight_s": oldest,
            "request_timeout_s": self.request_timeout_s,
            "point_timeout_s": self.point_timeout_s,
            "workloads": sorted(self.setups),
            # Overload observability: queue/backpressure state, the
            # admission counters, memory pressure, per-client usage.
            "queue_depth": len(self._queue),
            "inflight_points": pending,
            "max_inflight_points": self.max_inflight_points,
            "shed_total": admission["shed_total"],
            "rejected_total": admission["rejected_total"],
            "throttled_total": admission["throttled_total"],
            "rss_mb": round(self.governor.rss_mb(), 1),
            "max_rss_mb": self.governor.max_rss_mb,
            "pressure": self.governor.level,
            "clients": self.admission.client_stats(),
        }

    def _campaign(self, analyze_timing: bool) -> Campaign:
        with self._lock:
            campaign = self._campaigns.get(analyze_timing)
            if campaign is None:
                campaign = Campaign(
                    self.setups,
                    analyze_timing=analyze_timing,
                    cache=self.cache,
                    name=f"serve-batch{'-timing' if analyze_timing else ''}",
                    batch_solves=True,
                    point_timeout_s=self.point_timeout_s,
                )
                self._campaigns[analyze_timing] = campaign
            return campaign

    def _handle_sweep(
        self, payload: Mapping[str, object], client: str = "anonymous"
    ) -> Dict[str, object]:
        if self._draining.is_set():
            return {
                "ok": False,
                "code": "draining",
                "error": "server is draining; not accepting sweeps",
                "retryable": False,
            }
        try:
            self.admission.authenticate(dict(payload), client)
        except AdmissionError as rejection:
            return rejection.to_response()
        workload = payload.get("workload")
        inject("service.sweep", {"workload": workload})
        if workload not in self.setups:
            return {
                "ok": False,
                "error": f"unknown workload {workload!r}; "
                         f"serving {sorted(self.setups)}",
            }
        try:
            strategies = [
                resolve_strategy(spec).spec for spec in payload["strategies"]
            ]
            overheads = [float(value) for value in payload["overheads"]]
        except (KeyError, TypeError, ValueError) as error:
            return {"ok": False, "error": f"bad sweep spec: {error}"}
        if not strategies or not overheads:
            return {"ok": False, "error": "sweep needs strategies and overheads"}
        analyze_timing = bool(payload.get("analyze_timing", False))
        # A client may ship its own end-to-end deadline; the server then
        # waits no longer than the tighter of the two, so work for a
        # caller that has already given up is failed promptly server-side.
        timeout_s = self.request_timeout_s
        client_timeout = payload.get("timeout_s")
        if client_timeout is not None:
            try:
                client_timeout = float(client_timeout)
            except (TypeError, ValueError):
                return {"ok": False, "error": f"bad timeout_s: {client_timeout!r}"}
            if client_timeout <= 0:
                return {"ok": False, "error": "timeout_s must be > 0"}
            timeout_s = min(timeout_s, client_timeout)

        campaign = self._campaign(analyze_timing)
        points = [
            CampaignPoint(workload=workload, strategy=strategy, overhead=overhead)
            for strategy in strategies
            for overhead in overheads
        ]
        # Front door, in order: concurrency cap, memory pressure, then
        # the per-client quota checks (which charge in-flight credit on
        # success — balanced by the release in the finally below).
        with self._lock:
            if (
                self.max_pending_requests is not None
                and self._active_requests >= self.max_pending_requests
            ):
                self.admission.note_shed(client)
                return AdmissionError(
                    "overloaded",
                    f"server is at its {self.max_pending_requests} "
                    f"concurrent-request cap",
                    retry_after_s=self.shed_retry_after_s,
                ).to_response()
            self._active_requests += 1
        try:
            if self.governor.check() == "critical":
                self.admission.note_shed(client)
                return AdmissionError(
                    "pressure",
                    f"server is under memory pressure "
                    f"(rss {self.governor.stats()['rss_mb']} MB, "
                    f"budget {self.governor.max_rss_mb} MB)",
                    retry_after_s=self.shed_retry_after_s,
                ).to_response()
            try:
                self.admission.admit(client, len(points))
            except AdmissionError as rejection:
                return rejection.to_response()
            try:
                return self._resolve_points(
                    payload, client, campaign, points, analyze_timing,
                    timeout_s,
                )
            finally:
                self.admission.release(client, len(points))
        finally:
            with self._lock:
                self._active_requests -= 1

    def _resolve_points(
        self,
        payload: Mapping[str, object],
        client: str,
        campaign: Campaign,
        points: List[CampaignPoint],
        analyze_timing: bool,
        timeout_s: float,
    ) -> Dict[str, object]:
        """Resolve admitted points through the three tiers and wait."""
        deadline = time.monotonic() + timeout_s
        try:
            # Chaos seam: a seeded plan sheds this request at enqueue
            # time, exactly as a full queue would.
            inject("service.queue", {
                "client": client,
                "num_points": len(points),
                "queue_depth": len(self._queue),
            })
        except InjectedFault as fault:
            self.admission.note_shed(client)
            return AdmissionError(
                "shed",
                f"request shed at enqueue (fault injection: {fault})",
                retry_after_s=self.shed_retry_after_s,
            ).to_response()
        store_hits = 0
        joins = 0
        slots: List[Tuple[Optional[CampaignRecord], Optional[_Task]]] = []
        for point in points:
            key = campaign.result_key_for(point)
            record = self.store.get(key)
            if record is not None:
                store_hits += 1
                slots.append((record, None))
                continue
            with self._lock:
                task = self._pending.get(key)
                if task is not None and task.analyze_timing == analyze_timing:
                    joins += 1
                    slots.append((None, task))
                    continue
                if (
                    self.max_inflight_points is not None
                    and len(self._pending) >= self.max_inflight_points
                ):
                    # The in-flight bound is hit.  Shed queued work that
                    # would give up before this request does (oldest
                    # deadline first); if nothing qualifies, this request
                    # is the one that yields.
                    victims = self._queue.shed_before(deadline, count=1)
                    for victim in victims:
                        self._pending.pop(victim.key, None)
                    if not victims:
                        self.admission.note_shed(client)
                        return AdmissionError(
                            "overloaded",
                            f"server has {len(self._pending)} point(s) in "
                            f"flight (cap {self.max_inflight_points})",
                            retry_after_s=self.shed_retry_after_s,
                        ).to_response()
                    self._shed_tasks(victims)
                task = _Task(
                    key, point, analyze_timing,
                    client=client, deadline=deadline,
                )
                self._pending[key] = task
            self._queue.put(task)
            slots.append((None, task))

        records: List[CampaignRecord] = []
        for record, task in slots:
            if record is None:
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    record = task.future.result(timeout=remaining)
                except FuturesTimeoutError:
                    # The request deadline elapsed while the point was
                    # still in flight.  The task stays pending — a later
                    # request (or the running batch) may still finish it;
                    # only this waiter gives up.
                    return {
                        "ok": False,
                        "error": (
                            f"request deadline exceeded after {timeout_s:.1f}s "
                            f"waiting for point {task.point}"
                        ),
                    }
                except AdmissionError as rejection:
                    # One of this request's queued points was shed to
                    # make room for longer-lived work.  Points already
                    # computed are in the store, so the client's retry
                    # only pays for what was lost.
                    return rejection.to_response()
            records.append(record)

        with self._lock:
            self._counters["requests"] += 1
            self._counters["points_requested"] += len(points)
            self._counters["store_hits"] += store_hits
            self._counters["inflight_joins"] += joins
        return {
            "ok": True,
            "records": [record.to_dict() for record in records],
            "stats": {
                "num_points": len(points),
                "store_hits": store_hits,
                "inflight_joins": joins,
                "computed": len(points) - store_hits - joins,
                "server": self.stats(),
            },
        }

    def _shed_tasks(self, victims: List[_Task]) -> None:
        """Fail shed tasks' waiters with a structured, retryable rejection."""
        for victim in victims:
            self.admission.note_shed(victim.client)
            if not victim.future.done():
                victim.future.set_exception(
                    AdmissionError(
                        "shed",
                        f"point {victim.point} was shed under load "
                        f"(deadline-ordered eviction)",
                        retry_after_s=self.shed_retry_after_s,
                    )
                )
            logger.info(
                "shed queued point %s for client %r", victim.point, victim.client
            )

    # -- batching scheduler --------------------------------------------------

    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            first = self._queue.get(timeout=0.1)
            if first is None:
                continue
            # The gather window drains the fair queue round-robin across
            # clients, so a small sweep's points land in the next batch
            # even when one client has thousands queued.
            batch = [first]
            deadline = time.monotonic() + self.batch_window_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                task = self._queue.get(timeout=remaining)
                if task is None:
                    break
                batch.append(task)
            try:
                self._run_batch(batch)
            except Exception as error:
                # The scheduler thread must survive anything a poisoned
                # batch throws — a dead scheduler wedges every current
                # and future waiter.  Fail this batch's futures and on.
                logger.exception("batch execution failed")
                with self._lock:
                    for task in batch:
                        self._pending.pop(task.key, None)
                for task in batch:
                    if not task.future.done():
                        task.future.set_exception(error)

    def _run_batch(self, batch: List[_Task]) -> None:
        """Solve one gathered batch, grouped by timing flavour then geometry."""
        by_flag: Dict[bool, "OrderedDict[str, _Task]"] = {}
        for task in batch:
            by_flag.setdefault(task.analyze_timing, OrderedDict())[task.key] = task
        for analyze_timing, tasks in by_flag.items():
            campaign = self._campaign(analyze_timing)
            points = [task.point for task in tasks.values()]
            try:
                # Crash seam for the kill-9 harness, then the per-batch
                # deadline: the scheduler thread runs the grouped solves
                # itself, so the scope bounds them directly — a hung batch
                # fails its waiters instead of wedging the scheduler loop.
                with deadline_scope(Deadline.after(self.request_timeout_s)):
                    inject("service.batch", {"num_points": len(points)})
                    records = campaign.evaluate_points(
                        points, max_workers=self.max_workers
                    )
            except Exception as error:
                logger.exception("batch of %d points failed", len(points))
                with self._lock:
                    for key in tasks:
                        self._pending.pop(key, None)
                for task in tasks.values():
                    if not task.future.done():
                        task.future.set_exception(error)
                continue
            groups = getattr(campaign, "_num_solve_groups", len(points))
            solved = sum(1 for record in records if isinstance(record, CampaignRecord))
            failed = len(records) - solved
            with self._lock:
                self._counters["points_solved"] += solved
                self._counters["failed_points"] += failed
                self._counters["num_solve_groups"] += groups
                self._counters["batches"] += 1
            logger.info(
                "batch: %d point(s) -> %d solve group(s)", len(points), groups
            )
            for (key, task), record in zip(tasks.items(), records):
                with self._lock:
                    self._pending.pop(key, None)
                if isinstance(record, FailedPoint):
                    # Quarantined point: fail only its waiters; never publish.
                    if not task.future.done():
                        task.future.set_exception(
                            RuntimeError(
                                f"point failed after {record.attempts} "
                                f"attempt(s): {record.error}"
                            )
                        )
                    continue
                if record is None:
                    if not task.future.done():
                        task.future.set_exception(
                            RuntimeError("point skipped (server interrupted)")
                        )
                    continue
                self.store.put(key, record)
                if not task.future.done():
                    task.future.set_result(record)
        # Post-batch pressure check: shrink caches while the process is
        # between solves, not in the middle of one.
        self.governor.check()

    # -- observability -------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Lifetime service counters plus store and solver-cache stats."""
        with self._lock:
            counters = dict(self._counters)
        counters["result_store"] = self.store.stats().as_dict()
        counters["solver_cache"] = self.cache.stats().as_dict()
        counters.update(self.admission.counters())
        counters["queue_depth"] = len(self._queue)
        counters["governor"] = self.governor.stats()
        return counters


__all__ = ["SweepServer", "PROTOCOL"]
