"""Ablation studies for the design choices called out in DESIGN.md.

These go beyond the paper's own evaluation: they quantify how sensitive the
techniques are to the hotspot-detection threshold, the thermal-grid
resolution, the package's heat-removal capability and the wrapper ring
width.  They run on the scaled-down benchmark so the whole ablation suite
stays fast.
"""

from __future__ import annotations

import pytest

from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.core import (
    AreaManagementConfig,
    AreaManager,
    apply_hotspot_wrapper,
    detect_hotspots,
)
from repro.flow import ExperimentSetup, evaluate_strategy
from repro.placement import place_design
from repro.thermal import (
    default_package,
    high_performance_package,
    low_cost_package,
    simulate_placement,
)


@pytest.fixture(scope="module")
def small_setup():
    circuit = small_synthetic_circuit()
    placement = place_design(circuit, utilization=0.85)
    workload = scattered_hotspots_workload(circuit, regions=placement.regions)
    return ExperimentSetup.prepare(circuit, workload, num_cycles=12, batch_size=8, seed=3)


def test_ablation_hotspot_threshold(small_setup, benchmark):
    """ERI sensitivity to the hotspot-detection threshold."""
    setup = small_setup
    thresholds = (0.3, 0.5, 0.7, 0.9)

    def run():
        results = {}
        for threshold in thresholds:
            outcome = evaluate_strategy(
                setup, "eri", 0.2, analyze_timing=False, hotspot_threshold=threshold
            )
            results[threshold] = outcome.temperature_reduction
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nERI reduction vs hotspot threshold (20% overhead):")
    for threshold, reduction in results.items():
        print(f"  threshold {threshold:.1f}: {reduction * 100:5.2f}%")
    assert all(r > 0.0 for r in results.values())
    # The default (0.5) must be at least as good as the tightest setting,
    # which starves the insertion plan of rows to work with.
    assert results[0.5] >= results[0.9] - 0.01


def test_ablation_grid_resolution(small_setup, benchmark):
    """Thermal-grid resolution: accuracy of the peak versus runtime."""
    setup = small_setup
    resolutions = (20, 40, 60)

    def run():
        peaks = {}
        for resolution in resolutions:
            thermal = simulate_placement(
                setup.placement, setup.power, package=setup.package,
                nx=resolution, ny=resolution,
            )
            peaks[resolution] = thermal.peak_rise
        return peaks

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\npeak rise vs grid resolution:")
    for resolution, peak in peaks.items():
        print(f"  {resolution}x{resolution}: {peak:.2f} K")
    # The 40x40 grid the paper uses must agree with the finer grid within a
    # few percent; the coarse grid underestimates local peaks.
    assert peaks[40] == pytest.approx(peaks[60], rel=0.10)
    assert peaks[20] <= peaks[60] + 0.5


def test_ablation_package_cooling(small_setup, benchmark):
    """Heat-removal capability changes the absolute temperatures, not the win."""
    setup = small_setup
    packages = {
        "low_cost": low_cost_package(),
        "default": default_package(),
        "high_performance": high_performance_package(),
    }

    def run():
        out = {}
        for name, package in packages.items():
            baseline = simulate_placement(setup.placement, setup.power, package=package)
            manager = AreaManager(AreaManagementConfig(strategy="eri", area_overhead=0.2))
            result = manager.optimize(setup.placement, setup.power, baseline)
            improved = simulate_placement(result.placement, setup.power, package=package)
            out[name] = (baseline.peak_rise, improved.reduction_versus(baseline))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nERI at 20% overhead under different packages:")
    for name, (rise, reduction) in results.items():
        print(f"  {name:17s} baseline rise {rise:6.2f} K   reduction {reduction * 100:5.2f}%")
    # Better cooling -> lower absolute temperatures.
    assert results["high_performance"][0] < results["default"][0] < results["low_cost"][0]
    # The technique keeps reducing the peak under every package.
    assert all(reduction > 0.0 for _rise, reduction in results.values())


def test_ablation_wrapper_ring_width(small_setup, benchmark):
    """Hotspot-wrapper ring width: wider rings isolate more but displace more."""
    setup = small_setup
    # Ring widths are kept modest: on the scaled-down benchmark a very wide
    # ring would cover more than half the core and the wrapper (correctly)
    # refuses to act on it.
    ring_widths = (1.0, 3.0, 6.0)

    def run():
        hotspots = detect_hotspots(
            setup.thermal_map, setup.placement, power=setup.power, threshold_fraction=0.85
        )
        out = {}
        for ring in ring_widths:
            result = apply_hotspot_wrapper(setup.placement, hotspots, ring_width_um=ring)
            thermal = simulate_placement(result.placement, setup.power, package=setup.package)
            displaced = sum(w.num_evicted + w.num_unmoved for w in result.wrapped)
            out[ring] = (thermal.reduction_versus(setup.thermal_map), displaced)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nhotspot wrapper vs ring width (no utilization relaxation):")
    for ring, (reduction, displaced) in results.items():
        print(f"  ring {ring:4.1f} um: reduction {reduction * 100:5.2f}%, "
              f"{displaced} bystander cells displaced")
    # A wider ring covers a superset of the narrower ring's area, so it
    # displaces at least as many bystander cells.
    assert results[ring_widths[-1]][1] >= results[ring_widths[0]][1]
    # Moving cells around without any utilization relaxation must not make
    # the peak temperature meaningfully worse.
    assert all(reduction > -0.05 for reduction, _displaced in results.values())
