"""Campaign runner: grid order, determinism, persistence."""

from __future__ import annotations

import json

import pytest

from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.flow import (
    Campaign,
    CampaignPoint,
    CampaignRecord,
    CampaignResult,
    ExperimentSetup,
    SolverCache,
    records_from_outcomes,
    sweep_overheads,
)

NX = NY = 16


@pytest.fixture(scope="module")
def runner_setup():
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=11,
    )


@pytest.fixture(scope="module")
def campaign_result(runner_setup):
    campaign = Campaign(
        runner_setup, strategies=("default", "eri"), overheads=(0.1, 0.2),
        name="unit-grid",
    )
    return campaign.run(max_workers=2)


class TestGrid:
    def test_points_in_canonical_order(self, runner_setup):
        campaign = Campaign(
            runner_setup, strategies=("default", "eri"), overheads=(0.1, 0.2)
        )
        workload = runner_setup.workload.name
        assert campaign.points == [
            CampaignPoint(workload, "default", 0.1),
            CampaignPoint(workload, "default", 0.2),
            CampaignPoint(workload, "eri", 0.1),
            CampaignPoint(workload, "eri", 0.2),
        ]
        assert len(campaign) == 4

    def test_single_setup_is_keyed_by_workload_name(self, runner_setup):
        campaign = Campaign(runner_setup)
        assert list(campaign.setups) == [runner_setup.workload.name]

    def test_empty_setups_rejected(self):
        with pytest.raises(ValueError):
            Campaign({})


class TestRun:
    def test_records_follow_grid_order(self, runner_setup, campaign_result):
        points = [record.point for record in campaign_result.records]
        assert points == Campaign(
            runner_setup, strategies=("default", "eri"), overheads=(0.1, 0.2)
        ).points

    def test_parallel_matches_serial_and_plain_sweep(self, runner_setup, campaign_result):
        serial = Campaign(
            runner_setup, strategies=("default", "eri"), overheads=(0.1, 0.2)
        ).run(max_workers=1)
        assert [r.outcome for r in serial.records] == [
            r.outcome for r in campaign_result.records
        ]
        # The runner is just sweep_overheads with scheduling: same outcomes.
        swept = sweep_overheads(
            runner_setup, overheads=(0.1, 0.2), strategies=("default", "eri"),
            cache=SolverCache(),
        )
        assert swept == [record.outcome for record in serial.records]

    def test_metadata_reports_grid_and_cache(self, campaign_result):
        meta = campaign_result.metadata
        assert meta["num_points"] == 4
        assert meta["strategies"] == ["default", "eri"]
        assert meta["overheads"] == [0.1, 0.2]
        assert meta["solver_cache"]["misses"] > 0
        assert meta["elapsed_s"] > 0.0

    def test_outcomes_filter_by_workload(self, runner_setup, campaign_result):
        workload = runner_setup.workload.name
        assert len(campaign_result.outcomes(workload)) == 4
        assert campaign_result.outcomes("missing") == []
        assert campaign_result.workloads() == [workload]

    def test_find_locates_grid_cell(self, campaign_result):
        record = campaign_result.find("eri", 0.2)
        assert record is not None
        assert record.outcome.strategy == "eri"
        assert campaign_result.find("eri", 0.99) is None

    def test_find_prefers_exact_spec_over_bare_name_match(self, campaign_result):
        base = campaign_result.records[0]
        parameterized = CampaignRecord(
            point=CampaignPoint(base.point.workload, "hw:ring_um=12.0", 0.15),
            outcome=base.outcome,
            elapsed_s=0.0,
        )
        exact = CampaignRecord(
            point=CampaignPoint(base.point.workload, "hw", 0.15),
            outcome=base.outcome,
            elapsed_s=0.0,
        )
        result = CampaignResult(records=[parameterized, exact])
        # Exact spec wins even though the parameterized record comes first...
        assert result.find("hw", 0.15) is exact
        assert result.find("hw:ring_um=12.0", 0.15) is parameterized
        # ...and a bare name still falls back to a parameterized-only grid.
        only_param = CampaignResult(records=[parameterized])
        assert only_param.find("hw", 0.15) is parameterized
        assert parameterized.strategy_params == {"ring_um": 12.0}

    def test_find_canonicalises_the_query_spec(self, campaign_result):
        base = campaign_result.records[0]
        record = CampaignRecord(
            point=CampaignPoint(base.point.workload, "hw:ring_um=8.0", 0.15),
            outcome=base.outcome,
            elapsed_s=0.0,
        )
        result = CampaignResult(records=[record])
        # The user's non-canonical form (int 8) still finds the stored
        # canonical point (float 8.0); unknown names just return None.
        assert result.find("hw:ring_um=8", 0.15) is record
        assert result.find("not-registered", 0.15) is None


class TestPersistence:
    def test_json_roundtrip(self, campaign_result, tmp_path):
        path = campaign_result.to_json(tmp_path / "nested" / "result.json")
        assert path.exists()
        loaded = CampaignResult.from_json(path)
        assert loaded.metadata["num_points"] == 4
        assert [r.outcome for r in loaded.records] == [
            r.outcome for r in campaign_result.records
        ]
        assert [r.point for r in loaded.records] == [
            r.point for r in campaign_result.records
        ]

    def test_json_is_flat_records(self, campaign_result, tmp_path):
        path = campaign_result.to_json(tmp_path / "result.json")
        payload = json.loads(path.read_text())
        assert set(payload) == {"metadata", "records"}
        first = payload["records"][0]
        for column in ("workload", "strategy", "requested_overhead",
                       "temperature_reduction", "peak_rise", "elapsed_s"):
            assert column in first

    def test_csv_has_header_and_rows(self, campaign_result, tmp_path):
        path = campaign_result.to_csv(tmp_path / "result.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(campaign_result.records)
        assert lines[0].startswith("workload,strategy,")

    def test_records_from_outcomes_wraps_in_order(self, campaign_result):
        outcomes = campaign_result.outcomes()
        records = records_from_outcomes("wl", outcomes, elapsed_s=8.0)
        assert [r.outcome for r in records] == outcomes
        assert all(r.point.workload == "wl" for r in records)
        assert sum(r.elapsed_s for r in records) == pytest.approx(8.0)

    def test_record_dict_roundtrip(self, campaign_result):
        record = campaign_result.records[0]
        assert CampaignRecord.from_dict(record.to_dict()) == record
