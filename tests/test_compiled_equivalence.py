"""Equivalence suite: the compiled array engine versus the reference paths.

Every fast path introduced by the compiled structure-of-arrays engine must
reproduce the reference (per-object loop) implementation: identical toggle
and one counts from the logic simulator, per-cell power to float tolerance,
identical power maps and cell-temperature lookups, and the same STA critical
path.  The designs used here are randomized synthetic DAGs (plus the shared
scaled-down benchmark), including the dangling-pin edge cases and
post-mutation cache invalidation.
"""

import math
import random

import numpy as np
import pytest

from repro.engine import use_engine
from repro.netlist import Netlist, default_library
from repro.placement import place_design
from repro.power import (
    LogicSimulator,
    PowerModel,
    SwitchingActivity,
    build_power_map,
    generate_vectors,
)
from repro.power.power_map import PowerMap
from repro.thermal import (
    ThermalGrid,
    ThermalNetwork,
    cell_temperature_array,
    cell_temperatures,
    default_package,
    simulate_placement,
    simulate_with_leakage_feedback,
)
from repro.timing import DelayModel, StaticTimingAnalyzer

COMB_MASTERS = (
    "INV_X1", "INV_X2", "BUF_X1", "NAND2_X1", "NAND3_X1", "NOR2_X1",
    "NOR3_X1", "AND2_X1", "OR2_X1", "XOR2_X1", "XNOR2_X1", "AOI21_X1",
    "OAI21_X1", "MUX2_X1", "HA_X1", "FA_X1",
)


def random_netlist(seed: int, num_gates: int = 60, num_inputs: int = 6,
                   num_ffs: int = 4) -> Netlist:
    """A random acyclic design covering every master plus dangling pins."""
    rng = random.Random(seed)
    library = default_library()
    netlist = Netlist(f"rand_{seed}", library)

    nets = []
    for i in range(num_inputs):
        name = f"in{i}"
        netlist.add_port(name, "input")
        netlist.connect_port(name, name)
        nets.append(name)

    ffs = []
    for i in range(num_ffs):
        ff = netlist.add_cell(f"ff{i}", "DFF_X1")
        q_net = f"q{i}"
        netlist.connect(q_net, ff.pin("Q"))
        nets.append(q_net)
        ffs.append(ff)

    gate_outputs = []
    for g in range(num_gates):
        master = library[rng.choice(COMB_MASTERS)]
        inst = netlist.add_cell(f"g{g}", master)
        for pin_name in master.inputs:
            netlist.connect(rng.choice(nets), inst.pin(pin_name))
        for k, pin_name in enumerate(master.outputs):
            out = f"n{g}_{k}"
            netlist.connect(out, inst.pin(pin_name))
            nets.append(out)
            gate_outputs.append(out)

    for ff in ffs:
        netlist.connect(rng.choice(gate_outputs), ff.pin("D"))

    for i in range(3):
        po = f"out{i}"
        netlist.add_port(po, "output")
        netlist.connect_port(rng.choice(gate_outputs), po)

    # Edge cases: an input pin left unconnected, an output pin left
    # unconnected, and a net with sinks the simulator never drives.
    half = netlist.add_cell("half_wired", "NAND2_X1")
    netlist.connect("in0", half.pin("A"))
    netlist.connect("half_out", half.pin("Y"))
    lonely = netlist.add_cell("lonely", "INV_X1")
    netlist.connect("in1", lonely.pin("A"))
    floater = netlist.add_cell("floater", "INV_X1")
    netlist.connect("undriven_net", floater.pin("A"))
    netlist.connect("floater_out", floater.pin("Y"))
    return netlist


def simulate_both(netlist, seed=11, num_cycles=10, batch_size=4, warmup=2):
    vectors = generate_vectors(
        netlist, {}, num_cycles=num_cycles, batch_size=batch_size, seed=seed
    )
    sim = LogicSimulator(netlist)
    reference = sim.simulate(vectors, warmup_cycles=warmup, engine="reference")
    compiled = sim.simulate(vectors, warmup_cycles=warmup, engine="compiled")
    return reference, compiled


def assert_simulations_equal(reference, compiled):
    assert compiled.num_cycles == reference.num_cycles
    assert compiled.batch_size == reference.batch_size
    assert set(compiled.one_counts) == set(reference.one_counts)
    for net, count in reference.one_counts.items():
        assert compiled.one_counts[net] == count, net
    assert set(compiled.toggle_counts) == set(reference.toggle_counts)
    for net, count in reference.toggle_counts.items():
        assert compiled.toggle_counts[net] == count, net
    assert set(compiled.final_values) == set(reference.final_values)
    for net, arr in reference.final_values.items():
        assert np.array_equal(compiled.final_values[net], arr), net


class TestLogicSimEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_designs(self, seed):
        netlist = random_netlist(seed)
        reference, compiled = simulate_both(netlist, seed=seed + 100)
        assert_simulations_equal(reference, compiled)

    def test_small_benchmark(self, small_circuit):
        reference, compiled = simulate_both(small_circuit, num_cycles=8)
        assert_simulations_equal(reference, compiled)

    def test_no_warmup_and_single_cycle(self):
        netlist = random_netlist(7)
        reference, compiled = simulate_both(netlist, num_cycles=1, warmup=0)
        assert_simulations_equal(reference, compiled)

    def test_evaluate_combinational(self):
        netlist = random_netlist(5, num_ffs=2)
        sim = LogicSimulator(netlist)
        inputs = {f"in{i}": np.array([bool(i % 2), True]) for i in range(6)}
        registers = {"ff0": np.array([True, False])}
        reference = sim.evaluate_combinational(inputs, registers, engine="reference")
        compiled = sim.evaluate_combinational(inputs, registers, engine="compiled")
        assert set(compiled) == set(reference)
        for net, arr in reference.items():
            assert np.array_equal(compiled[net], arr), net

    def test_missing_stimulus_raises(self):
        netlist = random_netlist(9)
        vectors = generate_vectors(
            netlist, {}, num_cycles=4, batch_size=2, seed=0
        )
        del vectors.values["in0"]
        sim = LogicSimulator(netlist)
        with pytest.raises(KeyError):
            sim.simulate(vectors, engine="compiled")


class TestPowerEquivalence:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_per_cell_power_matches(self, seed):
        netlist = random_netlist(seed)
        _, result = simulate_both(netlist, seed=seed)
        activity = SwitchingActivity.from_simulation(netlist, result)
        model = PowerModel()
        reference = model.estimate(netlist, activity, engine="reference")
        compiled = model.estimate(netlist, activity, engine="compiled")
        for name in netlist.cells:
            assert compiled.power_of(name) == pytest.approx(
                reference.power_of(name), rel=1e-12, abs=1e-20
            ), name
        assert compiled.total() == pytest.approx(reference.total(), rel=1e-12)
        assert compiled.total_dynamic() == pytest.approx(
            reference.total_dynamic(), rel=1e-12
        )
        assert compiled.total_leakage() == pytest.approx(
            reference.total_leakage(), rel=1e-12
        )

    def test_report_breakdowns_match(self):
        netlist = random_netlist(4)
        activity = SwitchingActivity.uniform(netlist, 0.3)
        model = PowerModel(temperature=60.0)
        reference = model.estimate(netlist, activity, engine="reference")
        compiled = model.estimate(netlist, activity, engine="compiled")
        for name, breakdown in reference.cell_powers.items():
            fast = compiled.cell_powers[name]
            assert fast.switching == pytest.approx(breakdown.switching, rel=1e-12, abs=1e-20)
            assert fast.internal == pytest.approx(breakdown.internal, rel=1e-12, abs=1e-20)
            assert fast.leakage == pytest.approx(breakdown.leakage, rel=1e-12, abs=1e-20)

    def test_temperature_map_matches(self):
        netlist = random_netlist(6)
        activity = SwitchingActivity.uniform(netlist, 0.25)
        model = PowerModel()
        rng = random.Random(0)
        temps = {name: 25.0 + 60.0 * rng.random() for name in netlist.cells}
        reference = model.estimate_with_temperature_map(
            netlist, activity, temps, engine="reference"
        )
        compiled = model.estimate_with_temperature_map(
            netlist, activity, temps, engine="compiled"
        )
        assert compiled.total() == pytest.approx(reference.total(), rel=1e-12)
        assert compiled.temperature == pytest.approx(reference.temperature, rel=1e-12)

    def test_total_for_names_extends_with_zeros(self):
        netlist = random_netlist(8)
        activity = SwitchingActivity.uniform(netlist, 0.2)
        report = PowerModel().estimate(netlist, activity, engine="compiled")
        names = list(netlist.cells) + ["added_filler_1", "added_filler_2"]
        totals = report.total_for_names(names)
        assert totals.shape == (len(names),)
        assert totals[-1] == 0.0 and totals[-2] == 0.0
        assert totals[: len(netlist.cells)].sum() == pytest.approx(report.total())


class TestBinningEquivalence:
    @pytest.fixture(scope="class")
    def placed_design(self):
        netlist = random_netlist(12, num_gates=120)
        placement = place_design(netlist, utilization=0.8)
        activity = SwitchingActivity.uniform(netlist, 0.3)
        power = PowerModel().estimate(netlist, activity)
        return placement, power

    @pytest.mark.parametrize("over_die", [True, False])
    def test_power_map_matches(self, placed_design, over_die):
        placement, power = placed_design
        reference = build_power_map(
            placement, power, nx=16, ny=12, over_die=over_die, engine="reference"
        )
        compiled = build_power_map(
            placement, power, nx=16, ny=12, over_die=over_die, engine="compiled"
        )
        np.testing.assert_allclose(
            compiled.power_w, reference.power_w, rtol=1e-12, atol=1e-18
        )

    def test_cell_temperatures_match(self, placed_design):
        placement, power = placed_design
        thermal_map = simulate_placement(placement, power, nx=16, ny=16)
        reference = cell_temperatures(
            placement, thermal_map, nx=16, ny=16, engine="reference"
        )
        compiled = cell_temperatures(
            placement, thermal_map, nx=16, ny=16, engine="compiled"
        )
        assert set(compiled) == set(reference)
        for name, temp in reference.items():
            assert compiled[name] == pytest.approx(temp, rel=1e-12), name

    def test_cell_temperature_array_alignment(self, placed_design):
        placement, power = placed_design
        thermal_map = simulate_placement(placement, power, nx=16, ny=16)
        temps = cell_temperature_array(
            placement, thermal_map, nx=16, ny=16, default=25.0
        )
        comp = placement.netlist.compiled()
        by_name = cell_temperatures(placement, thermal_map, nx=16, ny=16)
        for i, name in enumerate(comp.cell_names):
            assert temps[i] == pytest.approx(by_name.get(name, 25.0), rel=1e-12)

    def test_leakage_feedback_matches(self, placed_design):
        placement, _ = placed_design
        activity = SwitchingActivity.uniform(placement.netlist, 0.3)
        model = PowerModel()
        with use_engine("reference"):
            reference = simulate_with_leakage_feedback(
                placement, activity, model, nx=16, ny=16, iterations=3
            )
        with use_engine("compiled"):
            compiled = simulate_with_leakage_feedback(
                placement, activity, model, nx=16, ny=16, iterations=3
            )
        np.testing.assert_allclose(
            compiled.temperatures, reference.temperatures, rtol=1e-9
        )

    def test_placement_move_invalidates_coordinate_cache(self, placed_design):
        placement, power = placed_design
        build_power_map(placement, power, nx=16, ny=16)
        # Move every cell in one row; the epoch-keyed cache must refresh.
        row = max(placement.rows, key=lambda r: len(r.cells))
        row.pack()
        reference = build_power_map(placement, power, nx=16, ny=16, engine="reference")
        compiled = build_power_map(placement, power, nx=16, ny=16, engine="compiled")
        np.testing.assert_allclose(
            compiled.power_w, reference.power_w, rtol=1e-12, atol=1e-18
        )


class TestStaEquivalence:
    @pytest.mark.parametrize("seed", [1, 3, 5])
    def test_unplaced_design(self, seed):
        netlist = random_netlist(seed)
        analyzer = StaticTimingAnalyzer(netlist, delay_model=DelayModel(temperature=45.0))
        reference = analyzer.analyze(engine="reference")
        compiled = analyzer.analyze(engine="compiled")
        assert compiled.critical_path_ps == pytest.approx(
            reference.critical_path_ps, rel=1e-12
        )
        assert compiled.worst_slack_ps == pytest.approx(
            reference.worst_slack_ps, rel=1e-12
        )
        assert compiled.num_endpoints == reference.num_endpoints
        assert compiled.worst_path.endpoint == reference.worst_path.endpoint
        assert compiled.worst_path.through_cells == reference.worst_path.through_cells

    def test_placed_design(self):
        netlist = random_netlist(21, num_gates=100)
        place_design(netlist, utilization=0.8)
        analyzer = StaticTimingAnalyzer(netlist)
        reference = analyzer.analyze(engine="reference")
        compiled = analyzer.analyze(engine="compiled")
        assert compiled.critical_path_ps == pytest.approx(
            reference.critical_path_ps, rel=1e-12
        )
        assert compiled.worst_path.endpoint == reference.worst_path.endpoint
        assert compiled.worst_path.through_cells == reference.worst_path.through_cells

    def test_small_benchmark_with_temperature(self, small_circuit):
        analyzer = StaticTimingAnalyzer(small_circuit)
        reference = analyzer.analyze(temperature=85.0, engine="reference")
        compiled = analyzer.analyze(temperature=85.0, engine="compiled")
        assert compiled.critical_path_ps == pytest.approx(
            reference.critical_path_ps, rel=1e-12
        )
        assert compiled.worst_path.endpoint == reference.worst_path.endpoint


class TestCacheInvalidation:
    def test_mutation_recompiles(self):
        netlist = random_netlist(30)
        first = netlist.compiled()
        assert netlist.compiled() is first  # cached while unchanged

        reference, compiled = simulate_both(netlist, seed=1)
        assert_simulations_equal(reference, compiled)

        # Structural mutation through the Netlist API: a new gate tapping an
        # existing net and driving a new one.
        inst = netlist.add_cell("late_gate", "NOR2_X1")
        netlist.connect("n0_0", inst.pin("A"))
        netlist.connect("in2", inst.pin("B"))
        netlist.connect("late_net", inst.pin("Y"))

        second = netlist.compiled()
        assert second is not first
        assert "late_net" in second.net_index

        reference, compiled = simulate_both(netlist, seed=2)
        assert_simulations_equal(reference, compiled)

    def test_cell_removal_recompiles(self):
        netlist = random_netlist(31)
        netlist.compiled()
        before = netlist.compiled().num_cells
        netlist.remove_cell("lonely")
        after = netlist.compiled().num_cells
        assert after == before - 1
        reference, compiled = simulate_both(netlist, seed=3)
        assert_simulations_equal(reference, compiled)

    def test_power_after_filler_insertion(self):
        """Reports stay usable when the placed copy gains filler cells."""
        netlist = random_netlist(32)
        activity = SwitchingActivity.uniform(netlist, 0.2)
        report = PowerModel().estimate(netlist, activity)
        total_before = report.total()
        netlist.add_cell("fill_late", "FILL_X4")
        totals = report.total_for_names(list(netlist.cells))
        assert totals[-1] == 0.0
        assert totals.sum() == pytest.approx(total_before)


class TestCustomMasters:
    def test_zero_input_tie_cell_uses_its_function(self):
        """Regression: arity-0 groups must not be forced to constant 0."""
        from repro.netlist import MasterCell

        def tie_hi(inputs):
            return (np.ones(1, dtype=bool),)

        library = default_library()
        library.add(MasterCell("TIEHI", (), ("Y",), 2, 0.0, 0.0, 0.0,
                               1.0, 0.0, tie_hi))
        netlist = Netlist("tie", library)
        netlist.add_port("in0", "input")
        netlist.connect_port("in0", "in0")
        tie = netlist.add_cell("tie0", "TIEHI")
        netlist.connect("hi", tie.pin("Y"))
        gate = netlist.add_cell("g0", "AND2_X1")
        netlist.connect("in0", gate.pin("A"))
        netlist.connect("hi", gate.pin("B"))
        netlist.connect("out", gate.pin("Y"))
        netlist.add_port("out0", "output")
        netlist.connect_port("out", "out0")

        sim = LogicSimulator(netlist)
        inputs = {"in0": np.array([True, False])}
        reference = sim.evaluate_combinational(inputs, engine="reference")
        compiled = sim.evaluate_combinational(inputs, engine="compiled")
        assert list(compiled["hi"]) == [True, True]
        for net in reference:
            # The reference stores the custom function's raw array (here
            # shape (1,)); the compiled value matrix broadcasts it across
            # the lanes.  Compare values, not the shape quirk.
            assert np.array_equal(
                compiled[net],
                np.broadcast_to(reference[net], compiled[net].shape),
            ), net

    def test_unknown_multi_input_function_falls_back(self):
        from repro.netlist import MasterCell

        def maj3(inputs):
            a, b, c = inputs
            return ((a & b) | (b & c) | (a & c),)

        library = default_library()
        library.add(MasterCell("MAJ3", ("A", "B", "C"), ("Y",), 4, 1.0, 5.0,
                               10.0, 5.0, 0.5, maj3))
        netlist = Netlist("maj", library)
        for i in range(3):
            netlist.add_port(f"in{i}", "input")
            netlist.connect_port(f"in{i}", f"in{i}")
        gate = netlist.add_cell("m0", "MAJ3")
        for pin_name, net in zip(("A", "B", "C"), ("in0", "in1", "in2")):
            netlist.connect(net, gate.pin(pin_name))
        netlist.connect("y", gate.pin("Y"))

        sim = LogicSimulator(netlist)
        inputs = {
            "in0": np.array([True, True, False]),
            "in1": np.array([True, False, False]),
            "in2": np.array([False, True, False]),
        }
        reference = sim.evaluate_combinational(inputs, engine="reference")
        compiled = sim.evaluate_combinational(inputs, engine="compiled")
        assert np.array_equal(compiled["y"], reference["y"])
        assert list(compiled["y"]) == [True, True, False]


class TestPlacementEpoch:
    def test_rebuild_rows_invalidates_coordinate_cache(self):
        """Regression: direct coordinate writes + rebuild_rows must refresh
        the epoch-keyed coordinate arrays."""
        netlist = random_netlist(60, num_gates=40)
        placement = place_design(netlist, utilization=0.8)
        cx, cy, placed = placement.cell_center_arrays()  # warm the cache

        comp = placement.netlist.compiled()
        target_name = comp.cell_names[comp.cell_index["g0"]]
        cell = netlist.cells[target_name]
        cell.y = placement.rows[0].y  # direct write, bypassing place()
        placement.rebuild_rows()

        cx2, cy2, _ = placement.cell_center_arrays()
        idx = comp.cell_index[target_name]
        assert cy2[idx] == pytest.approx(cell.center[1])


class TestNetHpwlArrays:
    def test_trailing_terminal_less_nets(self):
        """Nets without terminals must not corrupt neighbouring segments.

        Regression: the reduceat segmentation previously clamped the start
        offset of a trailing empty net into the last real net's span,
        dropping that net's final terminal from its HPWL reduction.
        """
        library = default_library()
        netlist = Netlist("hpwl_edge", library)
        driver = netlist.add_cell("drv", "INV_X1")
        sink_a = netlist.add_cell("snk_a", "INV_X1")
        sink_b = netlist.add_cell("snk_b", "INV_X1")
        netlist.connect("wide", driver.pin("Y"))
        netlist.connect("wide", sink_a.pin("A"))
        netlist.connect("wide", sink_b.pin("A"))
        netlist.add_net("empty_tail")  # no terminals, sorts after "wide"
        driver.place(0.0, 0.0)
        sink_a.place(10.0, 0.0)
        sink_b.place(100.0, 0.0)

        comp = netlist.compiled()
        hpwl = comp.net_hpwl_um()
        for i, name in enumerate(comp.net_names):
            assert hpwl[i] == pytest.approx(netlist.nets[name].hpwl()), name

    def test_interleaved_empty_nets_match_reference(self):
        netlist = random_netlist(50, num_gates=30)
        # Sprinkle terminal-less nets between real ones.
        for i in range(5):
            netlist.add_net(f"hollow_{i}")
        place_design(netlist, utilization=0.8)
        comp = netlist.compiled()
        hpwl = comp.net_hpwl_um()
        for i, name in enumerate(comp.net_names):
            assert hpwl[i] == pytest.approx(netlist.nets[name].hpwl()), name


class TestThermalNetworkElements:
    def test_elements_match_reference(self):
        grid = ThermalGrid.for_die(
            die_width_um=80.0, die_height_um=60.0,
            package=default_package(), nx=6, ny=5,
        )
        network = ThermalNetwork(grid)
        fast = network.elements()
        slow = network._elements_reference()
        assert fast.num_nodes == slow.num_nodes
        assert fast.package_node == slow.package_node
        assert len(fast.conductances) == len(slow.conductances)
        for (fa, fb, fg), (sa, sb, sg) in zip(fast.conductances, slow.conductances):
            assert (fa, fb) == (sa, sb)
            assert fg == pytest.approx(sg, rel=1e-12)


class TestBinOfFloor:
    def test_points_below_origin_clamp_to_bin_zero(self):
        power_map = PowerMap(
            power_w=np.zeros((4, 5)),
            bin_width_um=10.0,
            bin_height_um=10.0,
            origin_um=(0.0, 0.0),
        )
        # A point just below the origin must floor to a negative raw index
        # and then clamp -- int() truncation would treat (-10, 0) as bin 0
        # "from inside".  Both map to bin 0, but the raw index must come
        # from floor so the clamp is what puts it there.
        assert power_map.bin_of(-0.5, -0.5) == (0, 0)
        assert math.floor(-0.5 / 10.0) == -1  # documents the fixed semantics
        assert power_map.bin_of(-1e-9, 5.0) == (0, 0)
        assert power_map.bin_of(9.999, 9.999) == (0, 0)
        assert power_map.bin_of(10.0, 10.0) == (1, 1)
        assert power_map.bin_of(1e9, 1e9) == (3, 4)
        assert power_map.bin_of(-1e9, -1e9) == (0, 0)

    def test_bin_of_matches_iter_cell_bins(self):
        netlist = random_netlist(40, num_gates=40)
        placement = place_design(netlist, utilization=0.8)
        from repro.power import iter_cell_bins
        from repro.power.power_map import cell_bin_indices

        comp = placement.netlist.compiled()
        iy, ix, placed = cell_bin_indices(placement, nx=8, ny=8)
        by_name = {
            cell.name: (bin_y, bin_x)
            for cell, bin_y, bin_x in iter_cell_bins(placement, nx=8, ny=8)
        }
        for i, name in enumerate(comp.cell_names):
            if name in by_name:
                assert (int(iy[i]), int(ix[i])) == by_name[name], name
