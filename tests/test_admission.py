"""Service front door: quotas, auth, fair queueing, protocol hardening."""

from __future__ import annotations

import json
import random
import socket
import time

import pytest

from repro import faults
from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.faults import FaultPlan, active_plan
from repro.flow import ExperimentSetup, ResultStore
from repro.service import (
    AdmissionController,
    AdmissionError,
    AuthError,
    ClientQuota,
    SweepClient,
    SweepServer,
    request_once,
)
from repro.service.admission import FairTaskQueue

NX = NY = 16


def _prepare(seed: int = 11) -> ExperimentSetup:
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=seed,
    )


@pytest.fixture(scope="module")
def served_setup():
    return _prepare()


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.deactivate()


class TestClientQuota:
    def test_parse_full_spec(self):
        quota = ClientQuota.parse(
            "requests_per_s=5,max_inflight_points=64,"
            "max_points_per_request=16,burst=10"
        )
        assert quota.requests_per_s == 5.0
        assert quota.max_inflight_points == 64
        assert quota.max_points_per_request == 16
        assert quota.bucket_size == 10.0

    def test_default_burst_is_ceil_of_rate(self):
        assert ClientQuota(requests_per_s=2.5).bucket_size == 3.0
        assert ClientQuota(requests_per_s=0.5).bucket_size == 1.0

    @pytest.mark.parametrize("text", [
        "", "nope", "speed=3", "requests_per_s=fast",
        "requests_per_s=0", "max_inflight_points=-1",
    ])
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            ClientQuota.parse(text)

    def test_burst_requires_rate(self):
        with pytest.raises(ValueError, match="burst requires"):
            ClientQuota(burst=5)


class TestAdmissionController:
    def test_passthrough_without_quota(self):
        controller = AdmissionController()
        for _ in range(100):
            controller.admit("anyone", 1000)
        assert controller.counters()["admitted_total"] == 100

    def test_token_bucket_rate_with_deterministic_retry_after(self):
        clock = FakeClock()
        controller = AdmissionController(
            quota=ClientQuota(requests_per_s=2.0, burst=1), clock=clock,
        )
        controller.admit("a", 1)
        with pytest.raises(AdmissionError) as info:
            controller.admit("a", 1)
        # Exact bucket math: an empty 1-deep bucket refills at 2/s, so
        # the next token is 0.5s away — the retry_after contract.
        assert info.value.code == "throttled"
        assert info.value.retryable
        assert info.value.retry_after_s == pytest.approx(0.5)
        clock.advance(0.5)
        controller.admit("a", 1)  # the promised instant really admits

    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(
            quota=ClientQuota(requests_per_s=1.0, burst=1), clock=clock,
        )
        controller.admit("a", 1)
        controller.admit("b", 1)  # b has its own bucket
        with pytest.raises(AdmissionError):
            controller.admit("a", 1)

    def test_points_per_request_cap_is_not_retryable(self):
        controller = AdmissionController(
            quota=ClientQuota(max_points_per_request=4)
        )
        with pytest.raises(AdmissionError) as info:
            controller.admit("a", 5)
        assert info.value.code == "too_many_points"
        assert not info.value.retryable
        assert controller.counters()["rejected_total"] == 1

    def test_inflight_quota_charged_and_released(self):
        controller = AdmissionController(
            quota=ClientQuota(max_inflight_points=6)
        )
        controller.admit("a", 4)
        with pytest.raises(AdmissionError) as info:
            controller.admit("a", 4)
        assert info.value.code == "quota" and info.value.retryable
        controller.release("a", 4)
        controller.admit("a", 4)
        stats = controller.client_stats()["a"]
        assert stats["inflight_points"] == 4
        assert stats["throttled"] == 1

    def test_admit_seam_converts_fault_to_throttle(self):
        plan = FaultPlan(seed=3).fail(
            "service.admit", times=2, match={"client": "storm"}
        )
        controller = AdmissionController()
        with active_plan(plan):
            for _ in range(2):
                with pytest.raises(AdmissionError) as info:
                    controller.admit("storm", 1)
                assert info.value.code == "throttled"
                assert info.value.retry_after_s is not None
            controller.admit("storm", 1)  # times=2 exhausted
            controller.admit("calm", 1)   # other clients unmatched
        assert plan.fired("service.admit") == 2
        assert controller.counters()["throttled_total"] == 2

    def test_rejection_wire_form(self):
        error = AdmissionError("shed", "dropped", retry_after_s=0.25)
        response = error.to_response()
        assert response == {
            "ok": False, "error": "dropped", "code": "shed",
            "retryable": True, "retry_after_s": 0.25,
        }


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class _Item:
    def __init__(self, client: str, deadline: float = float("inf")) -> None:
        self.client = client
        self.deadline = deadline

    def __repr__(self) -> str:
        return f"_Item({self.client}, {self.deadline})"


class TestFairTaskQueue:
    def test_round_robin_across_clients(self):
        fair = FairTaskQueue()
        a1, a2, a3 = _Item("a"), _Item("a"), _Item("a")
        b1, c1 = _Item("b"), _Item("c")
        for item in (a1, a2, a3, b1, c1):
            fair.put(item)
        # One greedy client's backlog interleaves with everyone else's.
        order = [fair.get(timeout=0.1) for _ in range(5)]
        assert order == [a1, b1, c1, a2, a3]

    def test_get_times_out_empty(self):
        assert FairTaskQueue().get(timeout=0.01) is None

    def test_shed_prefers_earliest_deadlines(self):
        fair = FairTaskQueue()
        early, mid, late = _Item("a", 1.0), _Item("b", 2.0), _Item("a", 3.0)
        for item in (late, early, mid):
            fair.put(item)
        victims = fair.shed_before(deadline=2.5, count=5)
        assert victims == [early, mid]  # late outlives the bound; kept
        assert len(fair) == 1
        assert fair.get(timeout=0.1) is late

    def test_shed_never_displaces_longer_lived_work(self):
        fair = FairTaskQueue()
        fair.put(_Item("a", deadline=10.0))
        assert fair.shed_before(deadline=5.0, count=1) == []
        assert len(fair) == 1


class TestAuth:
    @pytest.fixture()
    def auth_server(self, served_setup, tmp_path):
        instance = SweepServer(
            {served_setup.workload.name: served_setup},
            result_store=ResultStore(root=tmp_path / "auth"),
            port=0,
            auth_token="hunter2",
        )
        with instance:
            yield instance

    def test_ping_and_health_stay_open(self, auth_server):
        host, port = auth_server.address
        client = SweepClient(host=host, port=port)  # no token
        assert client.ping()["protocol"]
        assert client.health()["status"] == "serving"

    def test_sweep_without_token_is_auth_error(self, auth_server, served_setup):
        host, port = auth_server.address
        client = SweepClient(host=host, port=port)
        with pytest.raises(AuthError):
            client.sweep(served_setup.workload.name, ("default",), (0.1,))
        assert auth_server.stats()["rejected_total"] == 1

    def test_sweep_with_wrong_token_is_auth_error(self, auth_server, served_setup):
        host, port = auth_server.address
        client = SweepClient(host=host, port=port, token="wrong")
        with pytest.raises(AuthError):
            client.sweep(served_setup.workload.name, ("default",), (0.1,))

    def test_sweep_with_token_succeeds(self, auth_server, served_setup):
        host, port = auth_server.address
        client = SweepClient(host=host, port=port, token="hunter2")
        result, stats = client.sweep(
            served_setup.workload.name, ("default",), (0.1,)
        )
        assert len(result.records) == 1
        assert stats["computed"] == 1

    def test_shutdown_requires_token(self, auth_server):
        host, port = auth_server.address
        response = request_once(host, port, {"op": "shutdown"})
        assert not response["ok"] and response["code"] == "auth"
        health = SweepClient(host=host, port=port).health()
        assert health["status"] == "serving"


@pytest.fixture()
def hardened_server(served_setup, tmp_path):
    instance = SweepServer(
        {served_setup.workload.name: served_setup},
        result_store=ResultStore(root=tmp_path / "hard"),
        port=0,
        max_request_bytes=4096,
    )
    with instance:
        yield instance


def _raw_exchange(address, data: bytes, read_lines: int = 1):
    """Send raw bytes, return up to ``read_lines`` response lines."""
    with socket.create_connection(address, timeout=10.0) as conn:
        conn.sendall(data)
        conn.shutdown(socket.SHUT_WR)
        raw = b""
        conn.settimeout(10.0)
        while raw.count(b"\n") < read_lines:
            try:
                chunk = conn.recv(65536)
            except socket.timeout:
                break
            if not chunk:
                break
            raw += chunk
    return raw.split(b"\n")[:read_lines]


class TestProtocolHardening:
    def test_malformed_json_gets_structured_error(self, hardened_server):
        (line,) = _raw_exchange(hardened_server.address, b"{not json]\n")
        response = json.loads(line)
        assert not response["ok"] and response["code"] == "bad_request"

    def test_garbage_line_does_not_kill_the_connection(self, hardened_server):
        with socket.create_connection(hardened_server.address, timeout=10.0) as conn:
            reader = conn.makefile("rb")
            conn.sendall(b"\x00\xff\xfe garbage \x80\n")
            first = json.loads(reader.readline())
            assert not first["ok"]
            # Same connection, next frame: still served.
            conn.sendall(b'{"op": "ping"}\n')
            second = json.loads(reader.readline())
            assert second["ok"]

    def test_deeply_nested_json_is_refused_not_fatal(self, hardened_server):
        bomb = b"[" * 2000 + b"]" * 2000 + b"\n"
        (line,) = _raw_exchange(hardened_server.address, bomb)
        response = json.loads(line)
        assert not response["ok"] and response["code"] == "bad_request"

    def test_oversized_payload_structured_error_and_resync(self, hardened_server):
        big = b'{"op": "sweep", "pad": "' + b"x" * 8192 + b'"}\n'
        with socket.create_connection(hardened_server.address, timeout=10.0) as conn:
            reader = conn.makefile("rb")
            conn.sendall(big)
            first = json.loads(reader.readline())
            assert not first["ok"] and first["code"] == "payload_too_large"
            # Framing resynced on the newline: the connection still works.
            conn.sendall(b'{"op": "ping"}\n')
            assert json.loads(reader.readline())["ok"]

    def test_truncated_frame_is_dropped_silently(self, hardened_server):
        lines = _raw_exchange(
            hardened_server.address, b'{"op": "ping"', read_lines=1
        )
        assert lines in ([], [b""])  # no response, no crash
        host, port = hardened_server.address
        assert SweepClient(host=host, port=port).ping()["protocol"]

    def test_unknown_op_counts_as_bad_request(self, hardened_server):
        host, port = hardened_server.address
        response = request_once(host, port, {"op": "warp"})
        assert not response["ok"] and response["code"] == "bad_request"
        assert hardened_server.stats()["bad_requests"] >= 1

    def test_fuzzed_frames_never_wedge_the_server(self, hardened_server):
        """Seeded byte-mutation fuzz over valid frames.

        Every mutation must leave the daemon serving and must not leak a
        pending future (a wedged waiter would show up in health()).
        """
        rng = random.Random(0xC0FFEE)
        valid = json.dumps({
            "op": "sweep", "workload": "no-such-workload",
            "strategies": ["eri"], "overheads": [0.1],
        }).encode()
        for _ in range(60):
            frame = bytearray(valid)
            for _ in range(rng.randint(1, 8)):
                mutation = rng.randrange(3)
                position = rng.randrange(len(frame))
                if mutation == 0:
                    frame[position] = rng.randrange(256)
                elif mutation == 1:
                    del frame[position]
                else:
                    frame.insert(position, rng.randrange(256))
            payload = bytes(frame)
            if rng.random() < 0.3:
                payload = payload[: rng.randrange(1, max(2, len(payload)))]
            else:
                payload += b"\n"
            _raw_exchange(hardened_server.address, payload)
        host, port = hardened_server.address
        health = SweepClient(host=host, port=port).health()
        assert health["status"] == "serving"
        assert health["pending"] == 0
        assert health["queue_depth"] == 0
