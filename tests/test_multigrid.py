"""Multigrid thermal engine: agreement with LU, warm starts, batching.

The multigrid backend must be a drop-in replacement for the sparse direct
factorisation: same temperatures (to well below 1e-8 relative), same
package-node elimination, and a ``solve_many`` path whose batched lanes
reproduce sequential solves.  Warm starts must measurably cut the outer
iteration count — that is the property the feedback loops and sweep
re-solves rely on.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.flow import Campaign, ExperimentSetup, SolverCache, geometry_key
from repro.thermal import (
    MULTIGRID_AUTO_MIN_NODES,
    MultigridSolver,
    Package,
    ThermalGrid,
    ThermalNetwork,
    ThermalSolver,
    default_package,
    low_cost_package,
    resolve_thermal_method,
    simulate_placement,
    simulate_with_leakage_feedback,
)

#: Relative agreement demanded between the two backends, everywhere.
AGREEMENT_RTOL = 1e-8


def random_power(nx: int, ny: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random((ny, nx)) * 1e-4


def no_lateral_package() -> Package:
    base = default_package()
    return Package(
        layers=base.layers,
        active_layer=base.active_layer,
        bottom_htc=base.bottom_htc,
        top_htc=base.top_htc,
        lateral_htc=0.0,
        package_resistance=base.package_resistance,
    )


def no_package_node_package() -> Package:
    base = default_package()
    return Package(
        layers=base.layers,
        active_layer=base.active_layer,
        bottom_htc=base.bottom_htc,
        top_htc=base.top_htc,
        lateral_htc=base.lateral_htc,
        package_resistance=0.0,
    )


class TestAgreementWithLU:
    """Multigrid temperatures match the direct factorisation everywhere."""

    @pytest.mark.parametrize(
        "width,height,nx,ny,package_builder,seed",
        [
            (1500.0, 1500.0, 40, 40, default_package, 0),     # the paper grid
            (1234.5, 876.9, 27, 13, default_package, 1),      # non-power-of-two
            (640.0, 2210.0, 13, 41, low_cost_package, 2),     # tall aspect
            (800.0, 800.0, 33, 40, no_lateral_package, 3),    # adiabatic sides
            (980.0, 700.0, 24, 17, no_package_node_package, 4),  # no pkg node
        ],
    )
    def test_randomized_geometries(self, width, height, nx, ny, package_builder, seed):
        grid = ThermalGrid(width, height, nx=nx, ny=ny, package=package_builder())
        power = random_power(nx, ny, seed)
        lu = ThermalSolver(grid, method="lu").solve(power)
        mg = ThermalSolver(grid, method="multigrid").solve(power)
        scale = np.abs(lu.rise_map()).max()
        assert scale > 0
        worst = np.abs(mg.rise_map() - lu.rise_map()).max() / scale
        assert worst <= AGREEMENT_RTOL, f"multigrid off by {worst:.2e} relative"
        if lu.package_temperature is not None:
            assert mg.package_temperature == pytest.approx(
                lu.package_temperature, rel=AGREEMENT_RTOL
            )

    def test_full_field_agreement(self):
        grid = ThermalGrid(1100.0, 900.0, nx=21, ny=19, package=default_package())
        power = random_power(21, 19, 7)
        lu = ThermalSolver(grid, keep_full_field=True, method="lu").solve(power)
        mg = ThermalSolver(grid, keep_full_field=True, method="multigrid").solve(power)
        scale = np.abs(lu.full_field - lu.ambient).max()
        worst = np.abs(mg.full_field - lu.full_field).max() / scale
        assert worst <= AGREEMENT_RTOL


class TestPackageSchurElimination:
    """The rank-1 package elimination must match the full bordered system."""

    @pytest.mark.parametrize("method", ["lu", "multigrid"])
    def test_matches_unreduced_system(self, method):
        grid = ThermalGrid(700.0, 900.0, nx=14, ny=18, package=default_package())
        network = ThermalNetwork(grid)
        assert network.package_node is not None
        power = random_power(14, 18, 11)

        # Reference: solve the full system including the package node's
        # dense row, with no Schur elimination at all.
        full = network.conductance_matrix.tocsc()
        rhs = network.power_vector(power)
        reference = spla.spsolve(full, rhs)

        solved = ThermalSolver(grid, keep_full_field=True, method=method).solve(power)
        ref_field = reference[: grid.num_nodes].reshape(grid.nz, grid.ny, grid.nx)
        scale = np.abs(ref_field).max()
        worst = np.abs((solved.full_field - solved.ambient) - ref_field).max() / scale
        assert worst <= AGREEMENT_RTOL
        assert solved.package_temperature - solved.ambient == pytest.approx(
            float(reference[network.package_node]), rel=1e-7
        )


class TestWarmStart:
    def test_warm_start_cuts_iterations(self):
        grid = ThermalGrid(1500.0, 1500.0, nx=40, ny=40, package=default_package())
        solver = ThermalSolver(grid, method="multigrid")
        power = random_power(40, 40, 21)
        baseline = solver.solve(power)
        cold_iterations = solver.last_iterations
        assert cold_iterations > 2

        # A leakage-feedback-sized perturbation re-solved from the previous
        # field must converge in strictly fewer outer iterations.
        perturbed = power * 1.001
        solver.solve(perturbed)
        cold_perturbed = solver.last_iterations
        solver.solve(perturbed, x0=baseline.grid_rises)
        warm_perturbed = solver.last_iterations
        assert warm_perturbed < cold_perturbed

        # Re-solving the identical map from its own solution is free.
        solver.solve(power, x0=baseline.grid_rises)
        assert solver.last_iterations == 0

    def test_warm_start_does_not_change_the_answer(self):
        grid = ThermalGrid(900.0, 1200.0, nx=18, ny=25, package=default_package())
        solver = ThermalSolver(grid, method="multigrid")
        power = random_power(18, 25, 22)
        baseline = solver.solve(power)
        warm = solver.solve(power * 1.05, x0=baseline.grid_rises)
        cold = solver.solve(power * 1.05)
        np.testing.assert_allclose(
            warm.temperatures, cold.temperatures, rtol=1e-9, atol=1e-12
        )

    def test_mismatched_warm_start_is_ignored(self):
        grid = ThermalGrid(900.0, 900.0, nx=12, ny=12, package=default_package())
        solver = ThermalSolver(grid, method="multigrid")
        power = random_power(12, 12, 23)
        stale = np.ones(17)  # wrong length: must fall back to a cold start
        result = solver.solve(power, x0=stale)
        reference = solver.solve(power)
        np.testing.assert_allclose(
            result.temperatures, reference.temperatures, rtol=1e-12
        )

    def test_lu_ignores_warm_start_bitwise(self):
        grid = ThermalGrid(800.0, 800.0, nx=10, ny=10, package=default_package())
        solver = ThermalSolver(grid, method="lu")
        power = random_power(10, 10, 24)
        cold = solver.solve(power)
        warm = solver.solve(power, x0=cold.grid_rises)
        assert cold.temperatures.tobytes() == warm.temperatures.tobytes()


class TestSolveMany:
    @pytest.mark.parametrize("method", ["lu", "multigrid"])
    def test_batched_equals_sequential(self, method):
        grid = ThermalGrid(1500.0, 1500.0, nx=40, ny=40, package=default_package())
        solver = ThermalSolver(grid, method=method)
        stack = [random_power(40, 40, 30 + i) for i in range(5)]
        batched = solver.solve_many(stack)
        assert len(batched) == 5
        for power, solved in zip(stack, batched):
            single = solver.solve(power)
            scale = np.abs(single.rise_map()).max()
            worst = np.abs(solved.rise_map() - single.rise_map()).max() / scale
            assert worst <= 1e-12, f"batched lane off by {worst:.2e}"
            if single.package_temperature is not None:
                assert solved.package_temperature == pytest.approx(
                    single.package_temperature, rel=1e-12
                )

    def test_empty_stack(self):
        grid = ThermalGrid(400.0, 400.0, nx=8, ny=8, package=default_package())
        assert ThermalSolver(grid).solve_many([]) == []

    def test_warm_started_lanes(self):
        grid = ThermalGrid(1000.0, 1000.0, nx=20, ny=20, package=default_package())
        solver = ThermalSolver(grid, method="multigrid")
        stack = [random_power(20, 20, 40 + i) for i in range(3)]
        baseline = solver.solve(stack[0])
        x0 = np.repeat(baseline.grid_rises[:, None], 3, axis=1)
        warm = solver.solve_many(stack, x0=x0)
        cold = solver.solve_many(stack)
        for w, c in zip(warm, cold):
            np.testing.assert_allclose(
                w.temperatures, c.temperatures, rtol=1e-9, atol=1e-12
            )


class TestAutoHeuristicAndCacheKeys:
    def test_resolve_validates(self):
        with pytest.raises(ValueError, match="unknown thermal solver method"):
            resolve_thermal_method("cholesky")

    def test_auto_picks_by_size(self):
        small = ThermalGrid(400.0, 400.0, nx=8, ny=8, package=default_package())
        large = ThermalGrid(1500.0, 1500.0, nx=40, ny=40, package=default_package())
        assert small.num_nodes < MULTIGRID_AUTO_MIN_NODES <= large.num_nodes
        assert resolve_thermal_method("auto", small) == "lu"
        assert resolve_thermal_method("auto", large) == "multigrid"
        assert resolve_thermal_method("lu", large) == "lu"
        assert resolve_thermal_method("multigrid", small) == "multigrid"
        assert ThermalSolver(large).method == "multigrid"
        assert ThermalSolver(small).method == "lu"

    def test_geometry_key_includes_resolved_method(self):
        grid = ThermalGrid(500.0, 500.0, nx=10, ny=10, package=default_package())
        lu_key = geometry_key(grid, method="lu")
        mg_key = geometry_key(grid, method="multigrid")
        auto_key = geometry_key(grid, method="auto")
        assert lu_key != mg_key
        assert auto_key == lu_key  # auto resolves to lu at this size
        assert "lu" in lu_key and "multigrid" in mg_key

    def test_cache_never_hands_lu_to_a_multigrid_request(self):
        grid = ThermalGrid(600.0, 600.0, nx=12, ny=12, package=default_package())
        cache = SolverCache(method="lu")
        lu_solver = cache.solver(grid)
        mg_solver = cache.solver(grid, method="multigrid")
        assert lu_solver is not mg_solver
        assert lu_solver.method == "lu"
        assert mg_solver.method == "multigrid"
        assert cache.stats().misses == 2
        # Repeated requests hit their own entries.
        assert cache.solver(grid) is lu_solver
        assert cache.solver(grid, method="multigrid") is mg_solver
        assert cache.stats().hits == 2

    def test_cache_method_configures_built_solvers(self):
        grid = ThermalGrid(600.0, 700.0, nx=11, ny=13, package=default_package())
        cache = SolverCache(method="multigrid")
        assert cache.solver(grid).method == "multigrid"
        assert cache.key_for(grid) in cache

    def test_multigrid_coarsens_the_paper_grid(self):
        grid = ThermalGrid(1500.0, 1500.0, nx=40, ny=40, package=default_package())
        mg = MultigridSolver(grid)
        assert mg.num_levels >= 3
        coarsest = mg.levels[-1]
        assert coarsest.coarse_lu is not None
        assert coarsest.nx * coarsest.ny <= 40 * 40


class TestFlowIntegration:
    @pytest.fixture(scope="class")
    def setup16(self):
        circuit = small_synthetic_circuit()
        workload = scattered_hotspots_workload(circuit)
        return ExperimentSetup.prepare(
            circuit, workload, grid_nx=16, grid_ny=16,
            num_cycles=6, batch_size=4, seed=11,
        )

    def test_simulate_placement_method_override(self, setup16):
        lu = simulate_placement(
            setup16.placement, setup16.power, nx=16, ny=16, method="lu"
        )
        mg = simulate_placement(
            setup16.placement, setup16.power, nx=16, ny=16, method="multigrid"
        )
        scale = np.abs(lu.rise_map()).max()
        assert np.abs(mg.rise_map() - lu.rise_map()).max() / scale <= AGREEMENT_RTOL
        assert lu.grid_rises is not None and mg.grid_rises is not None

    def test_leakage_feedback_backends_agree(self, setup16):
        from repro.power import PowerModel, estimate_activity

        activity = estimate_activity(
            setup16.netlist,
            setup16.workload.port_toggle_probabilities(setup16.netlist),
            num_cycles=6, batch_size=4, seed=11,
        )
        lu = simulate_with_leakage_feedback(
            setup16.placement, activity, PowerModel(), nx=16, ny=16,
            iterations=3, method="lu",
        )
        mg = simulate_with_leakage_feedback(
            setup16.placement, activity, PowerModel(), nx=16, ny=16,
            iterations=3, method="multigrid",
        )
        scale = np.abs(lu.rise_map()).max()
        assert np.abs(mg.rise_map() - lu.rise_map()).max() / scale <= 1e-7

    def test_campaign_batched_equals_per_point(self, setup16):
        strategies = ("default", "eri", "hw")
        overheads = (0.1, 0.2)
        per_point = Campaign(
            setup16, strategies=strategies, overheads=overheads, name="pp"
        ).run(max_workers=1)
        batched = Campaign(
            setup16, strategies=strategies, overheads=overheads, name="b",
            batch_solves=True,
        ).run(max_workers=2)

        assert [r.point for r in batched.records] == [
            r.point for r in per_point.records
        ]
        for fast, slow in zip(batched.records, per_point.records):
            b, p = fast.outcome, slow.outcome
            assert b.strategy == p.strategy
            assert b.actual_overhead == p.actual_overhead
            assert b.peak_rise == pytest.approx(p.peak_rise, rel=1e-12)
            assert b.gradient == pytest.approx(p.gradient, rel=1e-9, abs=1e-12)
            assert b.temperature_reduction == pytest.approx(
                p.temperature_reduction, rel=1e-9, abs=1e-12
            )
        # The hotspot wrapper reuses the Default outline at each overhead,
        # so batching must have grouped the grid into fewer solves.
        assert batched.metadata["batch_solves"] is True
        assert 0 < batched.metadata["num_solve_groups"] < len(batched.records)
        assert batched.cache_misses == batched.metadata["num_solve_groups"]

    def test_campaign_batched_multigrid(self, setup16):
        cache = SolverCache(method="multigrid")
        batched = Campaign(
            setup16, strategies=("default", "hw"), overheads=(0.15,),
            cache=cache, name="bmg", batch_solves=True,
        ).run(max_workers=1)
        per_point = Campaign(
            setup16, strategies=("default", "hw"), overheads=(0.15,),
            cache=SolverCache(method="multigrid"), name="pmg",
        ).run(max_workers=1)
        for fast, slow in zip(batched.records, per_point.records):
            assert fast.outcome.peak_rise == pytest.approx(
                slow.outcome.peak_rise, rel=1e-12
            )
        assert batched.metadata["thermal_solver"] == "multigrid"
