"""Result store: keys, persistence, single-flight, pruning, resume."""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import signal
import threading
import time

import pytest

from repro.bench import small_synthetic_circuit, scattered_hotspots_workload
from repro.engine import get_engine
from repro.flow import (
    Campaign,
    ExperimentSetup,
    ResultStore,
    prune_store,
    result_key,
    scan_store,
    setup_digest,
)
from repro.flow.artifacts import read_blob, write_blob
from repro.flow.store import RESULT_SUFFIX, STALE_CLAIM_S

NX = NY = 16


@pytest.fixture(scope="module")
def store_setup():
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=NX, grid_ny=NY,
        num_cycles=6, batch_size=4, seed=11,
    )


class TestKeys:
    def test_setup_digest_stable_across_identical_prepares(self, store_setup):
        circuit = small_synthetic_circuit()
        workload = scattered_hotspots_workload(circuit)
        again = ExperimentSetup.prepare(
            circuit, workload, grid_nx=NX, grid_ny=NY,
            num_cycles=6, batch_size=4, seed=11,
        )
        assert setup_digest(again) == setup_digest(store_setup)

    def test_setup_digest_sensitive_to_inputs(self, store_setup):
        circuit = small_synthetic_circuit()
        workload = scattered_hotspots_workload(circuit)
        other_seed = ExperimentSetup.prepare(
            circuit, workload, grid_nx=NX, grid_ny=NY,
            num_cycles=6, batch_size=4, seed=12,
        )
        assert setup_digest(other_seed) != setup_digest(store_setup)

    def test_result_key_sensitive_to_every_component(self, store_setup):
        fingerprint = setup_digest(store_setup)
        base = dict(
            strategy_spec="eri", overhead=0.15, method="lu",
            engine="compiled", analyze_timing=False,
        )

        def key(**overrides):
            merged = {**base, **overrides}
            return result_key(
                overrides.get("fingerprint", fingerprint),
                merged["strategy_spec"], merged["overhead"],
                method=merged["method"], engine=merged["engine"],
                analyze_timing=merged["analyze_timing"],
            )

        reference = key()
        assert key() == reference  # deterministic
        assert key(fingerprint=fingerprint[::-1]) != reference
        assert key(strategy_spec="hw") != reference
        assert key(overhead=0.2) != reference
        assert key(method="multigrid") != reference
        assert key(engine="reference") != reference
        assert key(analyze_timing=True) != reference

    def test_campaign_point_keys_follow_engine_and_method(self, store_setup):
        campaign = Campaign(store_setup, ("eri",), (0.1,))
        point = campaign.points[0]
        key = campaign.result_key_for(point)
        assert key == campaign.result_key_for(point)  # stable
        # The small grid resolves "auto" to LU; pinning multigrid must
        # change the key (the backends agree to tolerance, not bitwise).
        from repro.flow import SolverCache

        pinned = Campaign(
            store_setup, ("eri",), (0.1,), cache=SolverCache(method="multigrid")
        )
        assert pinned.result_key_for(point) != key
        assert get_engine() == "compiled"


class TestResultStore:
    def test_memory_roundtrip_and_counters(self):
        store = ResultStore()
        assert store.get("k") is None
        store.put("k", {"value": 1})
        assert store.get("k") == {"value": 1}
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_disk_tier_survives_new_instance(self, tmp_path):
        first = ResultStore(root=tmp_path / "store")
        first.put("deadbeef", [1, 2, 3])
        second = ResultStore(root=tmp_path / "store")
        assert second.get("deadbeef") == [1, 2, 3]
        assert second.stats().disk_hits == 1

    def test_entries_shard_by_key_prefix(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        store.put("abcd", "x")
        assert (tmp_path / "store" / "ab" / f"abcd{RESULT_SUFFIX}").exists()

    def test_memory_lru_bound(self):
        store = ResultStore(maxsize=2)
        for index in range(3):
            store.put(f"k{index}", index)
        assert len(store) == 2
        assert store.get("k0") is None  # oldest evicted
        assert store.get("k2") == 2

    def test_corrupt_disk_entry_evicted_not_served(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        store.put("cafe", {"good": True})
        path = tmp_path / "store" / "ca" / f"cafe{RESULT_SUFFIX}"
        path.write_bytes(path.read_bytes()[:-3] + b"xyz")
        fresh = ResultStore(root=tmp_path / "store")
        assert fresh.get("cafe") is None
        assert fresh.stats().corrupt_evictions == 1
        assert not path.exists()

    def test_pickles_by_configuration(self, tmp_path):
        store = ResultStore(root=tmp_path / "store", maxsize=7)
        store.put("k", 1)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.maxsize == 7
        assert len(clone) == 0  # contents travel via disk, not pickle
        assert clone.get("k") == 1

    def test_compute_if_missing_thread_single_flight(self, tmp_path):
        store = ResultStore(root=tmp_path / "store")
        computes = []
        barrier = threading.Barrier(4)
        results = []

        def compute():
            computes.append(threading.get_ident())
            time.sleep(0.05)
            return "value"

        def worker():
            barrier.wait()
            record, _ = store.compute_if_missing("k", compute)
            results.append(record)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(computes) == 1
        assert results == ["value"] * 4


class TestClaimEdgeCases:
    """Single-flight claim files under pruning and owner crashes."""

    def test_prune_keeps_live_claim_during_compute(self, tmp_path):
        """A prune racing a live computation must not break its claim."""
        from repro.flow.store import prune_store

        root = tmp_path / "store"
        store = ResultStore(root=root)
        claim = store._claim_path("livekey")
        entered = threading.Event()
        release = threading.Event()
        outcome = {}

        def compute():
            entered.set()
            release.wait(timeout=30)
            return "live-value"

        def owner():
            outcome["result"] = store.compute_if_missing("livekey", compute)

        thread = threading.Thread(target=owner)
        thread.start()
        try:
            assert entered.wait(timeout=10)
            assert claim.exists()
            # The claim is fresh (its owner is alive and computing): a
            # concurrent prune must leave it in place.
            report = prune_store(root)
            assert report.strays_removed == 0
            assert claim.exists()
        finally:
            release.set()
            thread.join(timeout=30)
        assert outcome["result"] == ("live-value", True)
        assert not claim.exists()
        assert store.get("livekey") == "live-value"

    def test_stale_claim_broken_by_polling_waiter(self, tmp_path):
        """A claim whose owner died goes stale mid-poll: the waiter breaks
        it and recomputes exactly once, with exactly one publication."""
        root = tmp_path / "store"
        store = ResultStore(root=root)
        claim = store._claim_path("stalekey")
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.touch()  # a fresh claim from a (soon to be dead) owner
        computes = []

        def compute():
            computes.append(threading.get_ident())
            return "recomputed"

        result = {}
        waiter = threading.Thread(
            target=lambda: result.update(
                value=store.compute_if_missing("stalekey", compute, poll_s=0.01)
            )
        )
        waiter.start()
        try:
            # Let the waiter observe the live claim and poll on it...
            time.sleep(0.1)
            assert not computes
            # ... then the owner "crashes": age the claim past staleness.
            stale = time.time() - STALE_CLAIM_S - 60.0
            os.utime(claim, (stale, stale))
        finally:
            waiter.join(timeout=30)
        assert result["value"] == ("recomputed", True)
        assert len(computes) == 1
        assert store.stats().writes == 1
        assert not claim.exists()
        assert ResultStore(root=root).get("stalekey") == "recomputed"


def _racing_writer(root, key, value, start_event, results):
    """Hammer one key with puts; verify the entry is always intact."""
    store = ResultStore(root=root)
    start_event.wait()
    try:
        for _ in range(50):
            store.put(key, value)
            read = store._read_disk(key)
            assert read == value, read
        results.put("ok")
    except Exception as error:  # pragma: no cover - failure reporting
        results.put(f"{type(error).__name__}: {error}")


def _single_flight_worker(root, key, start_event, results):
    """Race compute_if_missing across processes; report who computed."""
    store = ResultStore(root=root)
    start_event.wait()

    def compute():
        time.sleep(0.1)
        return {"by": os.getpid()}

    record, computed = store.compute_if_missing(key, compute)
    results.put((os.getpid(), computed, record))


class TestCrossProcess:
    def test_racing_writers_never_corrupt(self, tmp_path):
        """Parallel processes publishing the same key leave intact entries."""
        ctx = mp.get_context()
        start = ctx.Event()
        results = ctx.Queue()
        value = {"payload": list(range(100))}
        workers = [
            ctx.Process(
                target=_racing_writer,
                args=(tmp_path / "store", "sharedkey", value, start, results),
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        start.set()
        outcomes = [results.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=10)
        assert outcomes == ["ok"] * 4
        # And the final on-disk entry verifies.
        store = ResultStore(root=tmp_path / "store")
        assert store.get("sharedkey") == value

    def test_exactly_one_process_computes(self, tmp_path):
        """compute_if_missing is single-flight across processes."""
        ctx = mp.get_context()
        start = ctx.Event()
        results = ctx.Queue()
        workers = [
            ctx.Process(
                target=_single_flight_worker,
                args=(tmp_path / "store", "onceonly", start, results),
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        start.set()
        outcomes = [results.get(timeout=60) for _ in workers]
        for worker in workers:
            worker.join(timeout=10)
        computed = [pid for pid, did_compute, _record in outcomes if did_compute]
        assert len(computed) == 1, outcomes
        winner = outcomes[0][2]
        assert all(record == winner for _pid, _c, record in outcomes)


class TestScanPrune:
    def _populate(self, root, count=4):
        store = ResultStore(root=root)
        for index in range(count):
            store.put(f"key{index:02d}", {"index": index, "pad": "x" * 200})
        return store

    def test_scan_counts_entries_and_bytes(self, tmp_path):
        root = tmp_path / "store"
        self._populate(root)
        usage = scan_store(root)
        assert usage.entries == 4
        assert usage.total_bytes > 0
        assert usage.by_group == {"results": (4, usage.total_bytes)}
        assert scan_store(tmp_path / "absent").entries == 0

    def test_scan_groups_artifact_store_stages(self, tmp_path):
        root = tmp_path / "artifacts"
        write_blob(root / "thermal" / "aa.art", {"stage": "thermal"})
        write_blob(root / "synth" / "bb.art", {"stage": "synth"})
        usage = scan_store(root)
        assert usage.entries == 2
        assert set(usage.by_group) == {"thermal", "synth"}

    def test_prune_by_age(self, tmp_path):
        root = tmp_path / "store"
        self._populate(root)
        now = time.time()
        old = root / "ke" / f"key00{RESULT_SUFFIX}"
        os.utime(old, (now - 10 * 86400, now - 10 * 86400))
        report = prune_store(root, max_age_days=5, now=now)
        assert report.removed == 1 and report.kept == 3
        assert not old.exists()

    def test_prune_by_size_drops_oldest_first(self, tmp_path):
        root = tmp_path / "store"
        self._populate(root)
        now = time.time()
        for index in range(4):  # distinct mtimes, key00 oldest; all past
            # the min_age_s live-writer guard so size pressure applies.
            age = 100 - index
            path = root / "ke" / f"key{index:02d}{RESULT_SUFFIX}"
            os.utime(path, (now - age, now - age))
        usage = scan_store(root)
        per_entry_mb = usage.total_bytes / 4 / 1e6
        report = prune_store(root, max_size_mb=2.5 * per_entry_mb, now=now)
        assert report.removed == 2
        assert not (root / "ke" / f"key00{RESULT_SUFFIX}").exists()
        assert (root / "ke" / f"key03{RESULT_SUFFIX}").exists()

    def test_prune_dry_run_removes_nothing(self, tmp_path):
        root = tmp_path / "store"
        self._populate(root)
        report = prune_store(root, max_size_mb=0.0, dry_run=True, min_age_s=0.0)
        assert report.removed == 4
        assert scan_store(root).entries == 4

    def test_prune_cleans_stale_strays_only(self, tmp_path):
        root = tmp_path / "store"
        self._populate(root)
        fresh_lock = root / "ke" / "key99.lock"
        fresh_lock.touch()
        stale_tmp = root / "ke" / "zz.tmp.123.456"
        stale_tmp.write_bytes(b"partial")
        now = time.time()
        os.utime(stale_tmp, (now - 3600, now - 3600))
        report = prune_store(root, now=now)
        assert report.strays_removed == 1
        assert fresh_lock.exists() and not stale_tmp.exists()
        assert scan_store(root).entries == 4  # entries untouched


class TestCampaignResume:
    STRATEGIES = ("default", "eri")
    OVERHEADS = (0.1, 0.2)

    def _campaign(self, setup, store, **kwargs):
        return Campaign(
            setup, self.STRATEGIES, self.OVERHEADS,
            result_store=store, name="resume-test", **kwargs
        )

    def test_rerun_recomputes_zero_points(self, store_setup, tmp_path):
        store = ResultStore(root=tmp_path / "results")
        first = self._campaign(store_setup, store).run(max_workers=2)
        assert first.metadata["num_evaluated"] == 4
        assert first.metadata["store_hits"] == 0

        rerun = self._campaign(
            store_setup, ResultStore(root=tmp_path / "results")
        ).run(max_workers=2)
        assert rerun.metadata["num_evaluated"] == 0
        assert rerun.metadata["store_hits"] == 4
        assert [r.outcome for r in rerun.records] == [
            r.outcome for r in first.records
        ]

    def test_store_reuse_matches_fresh_run_bitwise(self, store_setup, tmp_path):
        reference = Campaign(
            store_setup, self.STRATEGIES, self.OVERHEADS, name="ref"
        ).run(max_workers=1)
        store = ResultStore(root=tmp_path / "results")
        self._campaign(store_setup, store).run(max_workers=1)
        served = self._campaign(store_setup, store).run(max_workers=1)
        assert [r.outcome for r in served.records] == [
            r.outcome for r in reference.records
        ]

    def test_sigint_flushes_and_resumes(self, store_setup, tmp_path, monkeypatch):
        """Interrupt mid-run: finished points persist, rerun computes the rest."""
        from repro.flow import runner as runner_module

        real_evaluate = runner_module.evaluate_strategy
        calls = {"count": 0}

        def interrupting_evaluate(*args, **kwargs):
            calls["count"] += 1
            outcome = real_evaluate(*args, **kwargs)
            if calls["count"] == 2:
                # Raise SIGINT in ourselves mid-campaign: the handler the
                # run installed must flip the stop flag, not kill pytest.
                os.kill(os.getpid(), signal.SIGINT)
            return outcome

        monkeypatch.setattr(
            runner_module, "evaluate_strategy", interrupting_evaluate
        )
        store = ResultStore(root=tmp_path / "results")
        partial = self._campaign(store_setup, store).run(max_workers=1)
        assert partial.metadata["interrupted"] is True
        assert len(partial.records) == 2
        assert partial.metadata["num_evaluated"] == 2

        monkeypatch.setattr(runner_module, "evaluate_strategy", real_evaluate)
        resumed = self._campaign(
            store_setup, ResultStore(root=tmp_path / "results")
        ).run(max_workers=1)
        assert resumed.metadata["interrupted"] is False
        assert resumed.metadata["store_hits"] == 2
        assert resumed.metadata["num_evaluated"] == 2
        assert len(resumed.records) == 4

        reference = Campaign(
            store_setup, self.STRATEGIES, self.OVERHEADS, name="ref"
        ).run(max_workers=1)
        assert [r.outcome for r in resumed.records] == [
            r.outcome for r in reference.records
        ]

    def test_sigint_batched_path(self, store_setup, tmp_path, monkeypatch):
        """The batched executor also stops cleanly and resumes."""
        from repro.flow import runner as runner_module

        real_prepare = runner_module.prepare_evaluation
        calls = {"count": 0}

        def interrupting_prepare(*args, **kwargs):
            calls["count"] += 1
            prepared = real_prepare(*args, **kwargs)
            if calls["count"] == 2:
                os.kill(os.getpid(), signal.SIGINT)
            return prepared

        monkeypatch.setattr(
            runner_module, "prepare_evaluation", interrupting_prepare
        )
        store = ResultStore(root=tmp_path / "results")
        partial = self._campaign(store_setup, store, batch_solves=True).run(
            max_workers=1
        )
        assert partial.metadata["interrupted"] is True
        assert len(partial.records) < 4

        monkeypatch.setattr(runner_module, "prepare_evaluation", real_prepare)
        resumed = self._campaign(
            store_setup, ResultStore(root=tmp_path / "results"),
            batch_solves=True,
        ).run(max_workers=1)
        assert len(resumed.records) == 4
        assert resumed.metadata["store_hits"] == len(partial.records)


class TestBlobHelpers:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "blob.bin"
        write_blob(path, {"a": [1, 2, 3]})
        assert read_blob(path) == {"a": [1, 2, 3]}

    def test_missing_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_blob(tmp_path / "absent.bin")
