"""Experiment campaign runner: (workload x strategy x overhead) grids.

One figure of the paper is a grid of experiment points — Figure 6 sweeps
three strategies over eight overheads, Table I pairs Default and ERI rows.
:class:`Campaign` executes such a grid as a unit: every point is one
:func:`~repro.flow.experiment.evaluate_strategy` call, all points share one
:class:`~repro.flow.cache.SolverCache` (so die outlines revisited by
different points pay the solver setup once), and the grid can be executed
by a thread pool — the sparse solver kernels release the GIL inside
SciPy, so thermal-bound campaigns scale with cores.  With
``batch_solves=True`` the runner additionally groups the grid points by
transformed die geometry and solves each group's power maps as one
warm-started multi-RHS block
(:meth:`~repro.thermal.solver.ThermalSolver.solve_many`).

Results are deterministic: records are returned in grid order (workload,
then strategy, then overhead) regardless of worker scheduling, and every
record carries the full :class:`~repro.flow.experiment.StrategyOutcome`
plus its wall-clock cost.  :class:`CampaignResult` persists to JSON or CSV
and round-trips back, which is what the ``repro`` command line uses to
write figure/table data to disk.
"""

from __future__ import annotations

import csv
import json
import logging
import os
import signal
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import StrategySpec, parse_strategy_spec, resolve_strategy
from ..deadlines import Deadline, DeadlineExceeded, deadline_scope
from ..engine import get_engine
from ..faults import RetryPolicy, inject
from ..thermal.solver import grid_for_placement, resolve_thermal_method
from .cache import SolverCache
from .graph import FlowGraph
from .experiment import (
    DEFAULT_OVERHEADS,
    DEFAULT_STRATEGIES,
    ExperimentSetup,
    PreparedEvaluation,
    StrategyOutcome,
    evaluate_strategy,
    finish_evaluation,
    prepare_evaluation,
)
from .store import ResultStore, result_key, setup_digest

#: Executors :class:`Campaign` accepts.
EXECUTORS = ("thread", "process")

logger = logging.getLogger(__name__)


def _map_indexed(fn, items: Sequence, max_workers: int) -> List:
    """Apply ``fn(index, item)`` to every item, results in item order.

    Serial when ``max_workers`` is 1 (or there is at most one item),
    thread-pooled otherwise; a worker exception propagates out of
    ``future.result()`` either way.
    """
    results: List = [None] * len(items)
    if max_workers == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            results[index] = fn(index, item)
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(fn, index, item): index
                for index, item in enumerate(items)
            }
            for future, index in futures.items():
                results[index] = future.result()
    return results


@dataclass(frozen=True)
class CampaignPoint:
    """One cell of the campaign grid.

    Attributes:
        workload: Name of the workload/setup the point runs against.
        strategy: Whitespace-allocation strategy spec in canonical string
            form (``"eri"``, ``"hw:ring_um=8.0"``, ...).
        overhead: Requested area overhead fraction.
    """

    workload: str
    strategy: str
    overhead: float


def _spec_params(spec: str) -> Dict[str, object]:
    """The parameter overrides encoded in a canonical spec string."""
    try:
        return parse_strategy_spec(spec)[1]
    except (TypeError, ValueError):
        return {}


@dataclass
class FailedPoint:
    """A grid point quarantined after exhausting its retry budget.

    The sweep completes around it: the point's slot carries no record, and
    this entry lands in the result metadata's ``failed_points`` list so the
    failure is inspectable (and the point retried by a later run against
    the same result store — failures are never published).
    """

    point: CampaignPoint
    error: str
    attempts: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.point.workload,
            "strategy": self.point.strategy,
            "overhead": self.point.overhead,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class CampaignRecord:
    """One executed campaign point.

    Attributes:
        point: The grid cell that was run.
        outcome: The measured :class:`StrategyOutcome`.
        elapsed_s: Wall-clock seconds spent evaluating the point.
        strategy_params: Parameter overrides of the point's strategy spec
            (empty for bare names), so persisted records are self-
            describing when a sweep varies strategy parameters.
    """

    point: CampaignPoint
    outcome: StrategyOutcome
    elapsed_s: float
    strategy_params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.strategy_params:
            self.strategy_params = _spec_params(self.point.strategy)

    @property
    def degraded(self) -> bool:
        """True when the point's solve went through the LU fallback chain.

        Degraded records are exact (LU is the reference backend) but not
        bitwise-comparable to a healthy multigrid run of the same point.
        """
        return bool(getattr(self.outcome, "fallback_used", False))

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form (used for both JSON and CSV rows)."""
        row: Dict[str, object] = {"workload": self.point.workload}
        row.update(asdict(self.outcome))
        row["strategy_params"] = dict(self.strategy_params)
        row["elapsed_s"] = self.elapsed_s
        return row

    @classmethod
    def from_dict(cls, row: Mapping[str, object]) -> "CampaignRecord":
        """Inverse of :meth:`to_dict`."""
        outcome_fields = {f.name for f in fields(StrategyOutcome)}
        outcome = StrategyOutcome(
            **{k: v for k, v in row.items() if k in outcome_fields}
        )
        point = CampaignPoint(
            workload=str(row["workload"]),
            strategy=outcome.strategy,
            overhead=outcome.requested_overhead,
        )
        params = row.get("strategy_params", {})
        if isinstance(params, str):
            params = json.loads(params) if params else {}
        return cls(
            point=point,
            outcome=outcome,
            elapsed_s=float(row.get("elapsed_s", 0.0)),
            strategy_params=dict(params),
        )


@dataclass
class CampaignResult:
    """Ordered records of one campaign run plus run-level metadata.

    Attributes:
        records: One record per grid point, in grid order.
        metadata: Run-level facts (grid shape, elapsed time, cache stats).
    """

    records: List[CampaignRecord]
    metadata: Dict[str, object] = field(default_factory=dict)

    def outcomes(self, workload: Optional[str] = None) -> List[StrategyOutcome]:
        """The outcomes, optionally restricted to one workload."""
        return [
            record.outcome
            for record in self.records
            if workload is None or record.point.workload == workload
        ]

    # -- solver-cache counters ------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Shared solver cache's hit count when the run finished.

        Lifetime totals of the cache instance: when the same cache also
        served the baseline preparation (as the CLI does), those lookups
        are included.
        """
        return int(self.metadata.get("solver_cache", {}).get("hits", 0))

    @property
    def cache_misses(self) -> int:
        """Shared solver cache's build count (lifetime, as :attr:`cache_hits`)."""
        return int(self.metadata.get("solver_cache", {}).get("misses", 0))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of solver lookups served from the cache (0 when unused)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def failed_points(self) -> List[Dict[str, object]]:
        """Quarantined points of the run (``[]`` on a clean sweep)."""
        return list(self.metadata.get("failed_points", []))

    def degraded_records(self) -> List[CampaignRecord]:
        """Records whose solve went through the LU fallback chain."""
        return [record for record in self.records if record.degraded]

    def find(
        self, strategy: str, overhead: float, workload: Optional[str] = None
    ) -> Optional[CampaignRecord]:
        """The record of one grid cell, or ``None`` when absent.

        ``strategy`` matches the point's full spec string (canonicalised
        first, so ``"hw:ring_um=8"`` finds the stored ``"hw:ring_um=8.0"``);
        a bare name also matches a parameterized point of that strategy,
        but only when no exact-spec record exists at that cell.
        """
        try:
            strategy = resolve_strategy(strategy).spec
        except (TypeError, ValueError):
            pass  # unregistered name: match the raw string as-is

        def _match(exact: bool) -> Optional[CampaignRecord]:
            for record in self.records:
                point = record.point
                matches = (
                    point.strategy == strategy
                    if exact
                    else point.strategy.partition(":")[0] == strategy
                )
                if (
                    matches
                    and abs(point.overhead - overhead) < 1e-12
                    and (workload is None or point.workload == workload)
                ):
                    return record
            return None

        return _match(exact=True) or _match(exact=False)

    def workloads(self) -> List[str]:
        """Workload names present, in first-seen order."""
        seen: List[str] = []
        for record in self.records:
            if record.point.workload not in seen:
                seen.append(record.point.workload)
        return seen

    # -- persistence ---------------------------------------------------------

    def to_json(self, path: Union[str, Path]) -> Path:
        """Write the result (metadata + flat records) as JSON.

        Returns:
            The written path.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "metadata": self.metadata,
            "records": [record.to_dict() for record in self.records],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
        return path

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "CampaignResult":
        """Load a result previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        return cls(
            records=[CampaignRecord.from_dict(row) for row in payload["records"]],
            metadata=dict(payload.get("metadata", {})),
        )

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the records as a flat CSV table.

        Returns:
            The written path.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = [record.to_dict() for record in self.records]
        # CSV cells must be scalars; structured values (strategy_params)
        # are embedded as JSON so they round-trip through from_dict.
        for row in rows:
            for key, value in row.items():
                if isinstance(value, (dict, list)):
                    row[key] = json.dumps(value, sort_keys=True)
        columns = list(rows[0].keys()) if rows else ["workload"]
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            writer.writerows(rows)
        return path


def records_from_outcomes(
    workload: str,
    outcomes: Sequence[StrategyOutcome],
    elapsed_s: float = 0.0,
) -> List[CampaignRecord]:
    """Wrap plain outcomes (e.g. Table I rows) as campaign records.

    Args:
        workload: Workload name to attach to every record.
        outcomes: The outcomes to wrap.
        elapsed_s: Total wall-clock time, split evenly across the records.

    Returns:
        One :class:`CampaignRecord` per outcome, in the given order.
    """
    per_point = elapsed_s / len(outcomes) if outcomes else 0.0
    return [
        CampaignRecord(
            point=CampaignPoint(
                workload=workload,
                strategy=outcome.strategy,
                overhead=outcome.requested_overhead,
            ),
            outcome=outcome,
            elapsed_s=per_point,
        )
        for outcome in outcomes
    ]


class Campaign:
    """A deterministic (workload x strategy x overhead) experiment grid.

    Args:
        setups: Prepared baselines, keyed by workload name — or a single
            :class:`ExperimentSetup`, keyed by its workload's name.
        strategies: Strategy specs to evaluate at every overhead; each may
            be a registered name, a parameterized spec string or mapping,
            or a resolved strategy.  Specs are validated (and canonicalised
            to strings) here, so a typo fails at construction rather than
            deep inside the run.
        overheads: Requested area-overhead sweep points.
        analyze_timing: Also run STA per point (slower).
        cache: Solver cache shared by all points; a fresh unbounded
            :class:`SolverCache` is created when omitted.
        name: Campaign name recorded in the result metadata.
        batch_solves: Group the grid points by transformed die geometry and
            solve each group's power maps as one batched multi-RHS block
            (:meth:`~repro.thermal.solver.ThermalSolver.solve_many`), warm-
            started from the baseline temperature fields.  Results match
            the per-point path to better than 1e-12 relative but are not
            bit-for-bit identical to it (per-lane iterates round
            differently), which is why batching is opt-in.
        flow: Optional :class:`~repro.flow.graph.FlowGraph`; every point
            then runs its stages against the graph's content-addressed
            store, so points (or whole re-runs) whose stage inputs are
            unchanged re-execute nothing.  When given and ``cache`` is
            omitted, the graph's solver cache becomes the campaign's.  With
            ``batch_solves`` the transform stages still go through the
            graph but the grouped multi-RHS solves stay outside the
            artifact store — batched temperature fields are not bitwise
            reproducible per-point, so caching them would poison
            content-addressed reuse.
        result_store: Optional :class:`~repro.flow.store.ResultStore`.
            Every completed point is published to it as soon as the point
            finishes, and every run starts by sweeping the grid against it
            — so repeated sweeps are incremental (only new points compute)
            and an interrupted sweep resumes for free on rerun.  A store
            with an on-disk root is shared safely by concurrent campaigns,
            sharded worker processes and the ``repro serve`` daemon.
        executor: ``"thread"`` (default) fans points out over a GIL-sharing
            thread pool; ``"process"`` shards them across worker processes
            (:mod:`repro.flow.shard`) whose baselines share power-map and
            temperature-field arrays via ``multiprocessing.shared_memory``.
            Both produce records bitwise-identical to a serial run.  The
            process executor is incompatible with ``batch_solves`` and
            ``flow`` (per-process artifact stores would defeat both).
        retry_policy: Per-point :class:`~repro.faults.RetryPolicy`.  The
            default never retries; a policy with ``max_attempts > 1``
            re-runs a point that raised a retryable exception, with
            deterministic exponential backoff.  Evaluation is pure, so a
            retried point that succeeds produces exactly the record a
            fault-free run would have.
        fail_fast: Abort the whole run on the first point that exhausts
            its retries (pre-quarantine behaviour).  The default records
            the failure as a ``failed_points`` metadata entry and lets the
            rest of the sweep complete.
        point_timeout_s: Wall-clock budget per point *attempt*.  Every
            evaluation runs under a :func:`~repro.deadlines.deadline_scope`
            checked cooperatively inside the hot loops (multigrid V-cycles,
            placer passes, logic-sim cycles); an attempt that blows its
            budget raises :class:`~repro.deadlines.DeadlineExceeded`, which
            the retry policy classifies as retryable — so a hung point is
            retried and, on exhaustion, quarantined like any other failure
            instead of stalling the sweep.  With ``executor="process"`` the
            timeout additionally arms a parent-side watchdog that SIGKILLs
            a worker whose heartbeat goes stale (a non-cooperative hang).
            ``None`` (default) disables per-point deadlines.
    """

    def __init__(
        self,
        setups: Union[ExperimentSetup, Mapping[str, ExperimentSetup]],
        strategies: Sequence[StrategySpec] = DEFAULT_STRATEGIES,
        overheads: Sequence[float] = DEFAULT_OVERHEADS,
        analyze_timing: bool = False,
        cache: Optional[SolverCache] = None,
        name: str = "campaign",
        batch_solves: bool = False,
        flow: Optional[FlowGraph] = None,
        result_store: Optional[ResultStore] = None,
        executor: str = "thread",
        retry_policy: Optional[RetryPolicy] = None,
        fail_fast: bool = False,
        point_timeout_s: Optional[float] = None,
    ) -> None:
        if isinstance(setups, ExperimentSetup):
            setups = {setups.workload.name: setups}
        if not setups:
            raise ValueError("campaign requires at least one setup")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if executor == "process" and batch_solves:
            raise ValueError("executor='process' is incompatible with batch_solves")
        if executor == "process" and flow is not None:
            raise ValueError("executor='process' is incompatible with flow")
        self.setups: Dict[str, ExperimentSetup] = dict(setups)
        self.strategies = tuple(resolve_strategy(spec).spec for spec in strategies)
        self.overheads = tuple(overheads)
        self.analyze_timing = analyze_timing
        self.flow = flow
        if cache is None:
            cache = flow.solver_cache if flow is not None else SolverCache()
        self.cache = cache
        self.name = name
        self.batch_solves = batch_solves
        self.result_store = result_store
        self.executor = executor
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fail_fast = fail_fast
        if point_timeout_s is not None and point_timeout_s <= 0:
            raise ValueError(
                f"point_timeout_s must be > 0, got {point_timeout_s}"
            )
        self.point_timeout_s = point_timeout_s
        self._stop_event = threading.Event()
        self._workload_fingerprints: Dict[str, Tuple[str, str]] = {}
        self._counter_lock = threading.Lock()
        self._retries = 0
        self._respawns = 0
        self._timeouts = 0

    @property
    def points(self) -> List[CampaignPoint]:
        """The grid cells in canonical (workload, strategy, overhead) order."""
        return [
            CampaignPoint(workload=workload, strategy=strategy, overhead=overhead)
            for workload in self.setups
            for strategy in self.strategies
            for overhead in self.overheads
        ]

    def __len__(self) -> int:
        return len(self.setups) * len(self.strategies) * len(self.overheads)

    # -- result-store keys ---------------------------------------------------

    def _workload_fingerprint(self, workload: str) -> Tuple[str, str]:
        """``(setup digest, resolved solver method)`` of one workload.

        Computed once per workload: the method is resolved on the baseline
        grid, and every transformed grid of the same setup shares its node
        count (same ``nx * ny * nz``), so the ``"auto"`` heuristic resolves
        identically for all of the workload's points.
        """
        cached = self._workload_fingerprints.get(workload)
        if cached is not None:
            return cached
        setup = self.setups[workload]
        grid = grid_for_placement(
            setup.placement, package=setup.package,
            nx=setup.grid_nx, ny=setup.grid_ny,
        )
        fingerprint = (
            setup_digest(setup),
            resolve_thermal_method(self.cache.method, grid),
        )
        self._workload_fingerprints[workload] = fingerprint
        return fingerprint

    def result_key_for(self, point: CampaignPoint) -> str:
        """The :class:`~repro.flow.store.ResultStore` key of one grid point.

        Covers the point's baseline content, canonical strategy spec,
        overhead, *resolved* solver backend, active engine and the timing
        flag — everything that shapes its :class:`CampaignRecord`.
        """
        fingerprint, method = self._workload_fingerprint(point.workload)
        return result_key(
            fingerprint, point.strategy, point.overhead,
            method=method, engine=get_engine(),
            analyze_timing=self.analyze_timing,
        )

    def stop(self) -> None:
        """Ask a running campaign to stop after the points already started.

        Finished points keep their records (and are flushed to the result
        store when one is attached); unstarted points are skipped and the
        result's metadata gets ``interrupted: True``.  This is what the
        SIGINT handler installed by :meth:`run` calls.
        """
        self._stop_event.set()

    def _point_scope(self):
        """Deadline scope for one point attempt (no-op without a timeout).

        A fresh deadline per attempt: a retry of a timed-out point gets
        the full budget again, so ``point_timeout_s x max_attempts`` bounds
        a pathological point's total wall-clock cost.
        """
        if self.point_timeout_s is None:
            return nullcontext()
        return deadline_scope(Deadline.after(self.point_timeout_s))

    # -- retry / quarantine --------------------------------------------------

    def _retry_loop(self, token: str, attempt_fn):
        """Run ``attempt_fn(attempt)`` under the campaign's retry policy.

        Returns ``(value, error, attempts)``: on success ``error`` is
        ``None``; on exhaustion ``value`` is ``None`` and ``error`` is the
        final exception.  Backoff is deterministic (seeded on ``token``).
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            try:
                return attempt_fn(attempt), None, attempt + 1
            except Exception as error:  # noqa: BLE001 - quarantine boundary
                attempts = attempt + 1
                if isinstance(error, DeadlineExceeded):
                    with self._counter_lock:
                        self._timeouts += 1
                if (
                    policy.classify(error)
                    and attempts < policy.max_attempts
                    and not self._stop_event.is_set()
                ):
                    with self._counter_lock:
                        self._retries += 1
                    delay = policy.delay_s(attempts, token=token)
                    logger.warning(
                        "%s failed on attempt %d/%d (%r); retrying in %.3fs",
                        token, attempts, policy.max_attempts, error, delay,
                    )
                    if delay > 0.0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                return None, error, attempts

    def _guarded_point(self, point: CampaignPoint, attempt_fn):
        """Retry ``attempt_fn(attempt)``; quarantine the point on exhaustion.

        Returns the attempt function's value, or a :class:`FailedPoint`
        (with ``fail_fast`` the final exception is re-raised instead).
        """
        token = f"{point.workload}:{point.strategy}:{point.overhead}"
        value, error, attempts = self._retry_loop(token, attempt_fn)
        if error is None:
            return value
        if self.fail_fast:
            raise error
        logger.warning(
            "quarantining point %s after %d attempt(s): %r",
            point, attempts, error,
        )
        return FailedPoint(point=point, error=repr(error), attempts=attempts)

    # ------------------------------------------------------------------

    def _evaluate(
        self, index: int, total: int, point: CampaignPoint, attempt: int = 0
    ) -> CampaignRecord:
        with self._point_scope():
            inject(
                "point.evaluate",
                {
                    "workload": point.workload,
                    "strategy": point.strategy,
                    "overhead": point.overhead,
                    "attempt": attempt,
                },
            )
            start = time.perf_counter()
            outcome = evaluate_strategy(
                self.setups[point.workload],
                point.strategy,
                point.overhead,
                analyze_timing=self.analyze_timing,
                cache=self.cache,
                flow=self.flow,
            )
            elapsed = time.perf_counter() - start
        logger.info(
            "[%d/%d] %s %s @ %.1f%%: reduction %.2f%% in %.2fs",
            index + 1,
            total,
            point.workload,
            point.strategy,
            point.overhead * 100.0,
            outcome.temperature_reduction * 100.0,
            elapsed,
        )
        return CampaignRecord(point=point, outcome=outcome, elapsed_s=elapsed)

    # -- batched execution ---------------------------------------------------

    def _prepare(
        self, point: CampaignPoint, attempt: int = 0
    ) -> Tuple[PreparedEvaluation, float]:
        # Same site and context as :meth:`_evaluate`: a rule targeting a
        # point fires regardless of which execution path runs it.
        with self._point_scope():
            inject(
                "point.evaluate",
                {
                    "workload": point.workload,
                    "strategy": point.strategy,
                    "overhead": point.overhead,
                    "attempt": attempt,
                },
            )
            start = time.perf_counter()
            prepared = prepare_evaluation(
                self.setups[point.workload], point.strategy, point.overhead,
                flow=self.flow,
            )
            return prepared, time.perf_counter() - start

    def _solve_groups(
        self, points: List[CampaignPoint], prepared: "List[PreparedEvaluation]"
    ) -> Tuple[List, List[float], Dict[int, "FailedPoint"]]:
        """Solve every point's power map, batching points that share a solver.

        Points are grouped by the cache key of their transformed die
        geometry (the same key the :class:`SolverCache` uses, so a group is
        exactly the set of points that share one prepared solver) and each
        group is solved as one multi-RHS block, warm-started per lane from
        its workload's baseline temperature field.

        A group whose solve raises is retried under the campaign's policy;
        on exhaustion every point of the group is quarantined (returned in
        the third element, keyed by point position).
        """
        groups: "OrderedDict[tuple, List[int]]" = OrderedDict()
        for index, prep in enumerate(prepared):
            groups.setdefault(self.cache.key_for(prep.grid), []).append(index)

        maps: List = [None] * len(points)
        solve_time = [0.0] * len(points)
        failed: Dict[int, FailedPoint] = {}
        for group_key, indices in groups.items():
            if self._stop_event.is_set():
                break
            start = time.perf_counter()
            first = prepared[indices[0]]
            solver = self.cache.solver(first.grid)
            # Per-lane warm starts from each point's baseline field; lanes
            # whose baseline has no rise vector (or a mismatched grid)
            # start cold.
            x0 = np.zeros((first.grid.num_nodes, len(indices)))
            warm = False
            for lane, index in enumerate(indices):
                rises = prepared[index].setup.thermal_map.grid_rises
                if rises is not None and rises.shape[0] == x0.shape[0]:
                    x0[:, lane] = rises
                    warm = True
            def _solve_attempt(_attempt, solver=solver, indices=indices,
                               x0=x0, warm=warm):
                # One per-point budget bounds the whole group solve: the
                # batched block does no more work per lane than a single
                # point's solve, so the group inherits the point deadline.
                with self._point_scope():
                    return solver.solve_many(
                        [prepared[index].power_map for index in indices],
                        x0=x0 if warm else None,
                    )

            solved, error, attempts = self._retry_loop(
                f"solve-group:{group_key}", _solve_attempt
            )
            if error is not None:
                if self.fail_fast:
                    raise error
                for index in indices:
                    point = points[index]
                    logger.warning(
                        "quarantining point %s after %d group-solve "
                        "attempt(s): %r",
                        point, attempts, error,
                    )
                    failed[index] = FailedPoint(
                        point=point, error=repr(error), attempts=attempts
                    )
                continue
            elapsed = time.perf_counter() - start
            for lane, index in enumerate(indices):
                maps[index] = solved[lane]
                solve_time[index] = elapsed / len(indices)
        self._num_solve_groups = len(groups)
        return maps, solve_time, failed

    def _finish(
        self,
        index: int,
        total: int,
        point: CampaignPoint,
        prepared: PreparedEvaluation,
        new_map,
        elapsed_so_far: float,
    ) -> CampaignRecord:
        start = time.perf_counter()
        with self._point_scope():
            outcome = finish_evaluation(
                prepared, new_map, analyze_timing=self.analyze_timing, flow=self.flow
            )
        elapsed = elapsed_so_far + (time.perf_counter() - start)
        logger.info(
            "[%d/%d] %s %s @ %.1f%%: reduction %.2f%% in %.2fs (batched)",
            index + 1,
            total,
            point.workload,
            point.strategy,
            point.overhead * 100.0,
            outcome.temperature_reduction * 100.0,
            elapsed,
        )
        return CampaignRecord(point=point, outcome=outcome, elapsed_s=elapsed)

    def _run_batched(self, points: List[CampaignPoint], max_workers: int) -> List:
        """Three-phase execution: transform all points, solve by geometry
        group, then extract outcomes.

        Interruption-aware: a stop request skips the points not yet
        prepared, breaks out between solve groups, and leaves ``None`` in
        the slots of unfinished points (the caller drops them).  A point
        that exhausts its retries in any phase occupies its slot as a
        :class:`FailedPoint` instead of aborting the batch.
        """
        total = len(points)
        transformed = _map_indexed(
            lambda index, point: (
                None
                if self._stop_event.is_set()
                else self._guarded_point(
                    point,
                    lambda attempt, point=point: self._prepare(
                        point, attempt=attempt
                    ),
                )
            ),
            points,
            max_workers,
        )
        records: List = [None] * total
        live: List[int] = []
        for index, entry in enumerate(transformed):
            if isinstance(entry, FailedPoint):
                records[index] = entry
            elif entry is not None:
                live.append(index)
        live_points = [points[index] for index in live]
        prepared = [transformed[index][0] for index in live]
        prep_time = [transformed[index][1] for index in live]
        # ``prepared`` now owns the only references we need; dropping the
        # transform results lets each point's placement/solver state be
        # reclaimed as soon as its slot below is released.
        transformed = None

        maps, solve_time, solve_failed = self._solve_groups(live_points, prepared)

        def _finish_and_release(pos: int, point: CampaignPoint):
            if pos in solve_failed:
                return solve_failed[pos]
            if maps[pos] is None or self._stop_event.is_set():
                return None
            record = self._guarded_point(
                point,
                lambda attempt: self._finish(
                    live[pos], total, point, prepared[pos], maps[pos],
                    prep_time[pos] + solve_time[pos],
                ),
            )
            # Backpressure for huge served batches: a finished point's
            # prepared evaluation and thermal map are released immediately
            # instead of pinning the whole batch's peak until it returns.
            prepared[pos] = None
            maps[pos] = None
            return record

        finished = _map_indexed(_finish_and_release, live_points, max_workers)
        for pos, index in enumerate(live):
            records[index] = finished[pos]
        return records

    def evaluate_points(
        self, points: Sequence[CampaignPoint], max_workers: Optional[int] = None
    ) -> List:
        """Evaluate an explicit point list (not the campaign's own grid).

        This is the batching entry the ``repro serve`` daemon uses: it
        collects points from *different client requests*, and — with
        ``batch_solves`` — this method groups them by transformed die
        geometry and solves each group as one warm-started multi-RHS
        block, regardless of which request each point came from.  Points
        must reference workloads present in ``setups``.

        Returns:
            One entry per point, in the given order: a
            :class:`CampaignRecord`, or a :class:`FailedPoint` for points
            that exhausted their retries (unless ``fail_fast``).
        """
        points = list(points)
        for point in points:
            if point.workload not in self.setups:
                raise ValueError(f"unknown workload {point.workload!r}")
        if max_workers is None:
            max_workers = max(1, min(len(points) or 1, os.cpu_count() or 1))
        self._num_solve_groups = 0
        if self.batch_solves:
            return self._run_batched(points, max_workers)
        total = len(points)
        return _map_indexed(
            lambda index, point: self._guarded_point(
                point,
                lambda attempt, index=index, point=point: self._evaluate(
                    index, total, point, attempt=attempt
                ),
            ),
            points,
            max_workers,
        )

    def _evaluate_pending(
        self, index: int, total: int, point: CampaignPoint, key: Optional[str]
    ):
        """Evaluate one not-yet-stored point (thread/serial executor).

        Skips (returns ``None``) after a stop request.  With a result
        store attached the evaluation goes through cross-process
        single-flight, so two campaigns (or a campaign and the serve
        daemon) racing on the same point compute it once between them.
        An evaluation that raises is retried under the campaign's policy
        *around* the store transaction (a failed attempt publishes
        nothing); exhaustion quarantines the point as a
        :class:`FailedPoint`.
        """
        if self._stop_event.is_set():
            return None

        def attempt_once(attempt: int):
            if self.result_store is None or key is None:
                return self._evaluate(index, total, point, attempt=attempt)
            record, _computed = self.result_store.compute_if_missing(
                key, lambda: self._evaluate(index, total, point, attempt=attempt)
            )
            return record

        return self._guarded_point(point, attempt_once)

    def run(self, max_workers: Optional[int] = None) -> CampaignResult:
        """Execute every grid point and collect the records in grid order.

        With a ``result_store`` the grid is swept against the store first:
        stored points are reused verbatim and only the remainder executes,
        publishing each new record as it completes — which is what makes
        repeated sweeps incremental and interrupted sweeps resumable.

        When called from the main thread, a SIGINT handler is installed
        for the duration of the run: the first Ctrl-C stops scheduling new
        points, lets in-flight ones finish and flush to the store, and
        returns a partial result whose metadata carries
        ``interrupted: True`` (no exception is raised).  A rerun with the
        same store recomputes none of the finished points.

        Args:
            max_workers: Worker threads (or processes, with
                ``executor="process"``); ``1`` forces serial execution and
                ``None`` sizes the pool to the machine (one worker per CPU,
                at most one per point).  Records are returned in grid order
                either way, and — because the shared solver cache is keyed
                on exact geometry — parallel runs produce bitwise-identical
                outcomes to serial ones.

        Returns:
            The :class:`CampaignResult`.
        """
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        points = self.points
        total = len(points)
        if max_workers is None:
            max_workers = max(1, min(total, os.cpu_count() or 1))
        start = time.perf_counter()
        logger.info(
            "campaign %r: %d points (%d workload(s) x %d strategies x %d overheads)",
            self.name, total, len(self.setups), len(self.strategies), len(self.overheads),
        )

        self._num_solve_groups = 0
        self._stop_event.clear()
        with self._counter_lock:
            self._retries = 0
            self._respawns = 0
            self._timeouts = 0

        # Fast crash-recovery pass: clear stale claims and tmp debris a
        # hard-killed predecessor left behind, so this run's single-flight
        # and resume logic start from a clean store.
        if self.result_store is not None and self.result_store.root is not None:
            from .recover import recover_store

            try:
                recovered = recover_store(self.result_store.root)
                if recovered.num_repaired:
                    logger.warning(
                        "campaign %r: recovered result store %s (%s)",
                        self.name, self.result_store.root, recovered.summary(),
                    )
            except OSError as error:
                logger.warning(
                    "campaign %r: store recovery pass failed: %s",
                    self.name, error,
                )

        # Resume sweep: reuse every point the result store already holds.
        stored: Dict[int, CampaignRecord] = {}
        keys: Optional[List[str]] = None
        if self.result_store is not None:
            keys = [self.result_key_for(point) for point in points]
            for index, key in enumerate(keys):
                record = self.result_store.get(key)
                if record is not None:
                    stored[index] = record
        pending = [index for index in range(total) if index not in stored]
        pending_points = [points[index] for index in pending]
        if stored:
            logger.info(
                "campaign %r: %d/%d points already in result store",
                self.name, len(stored), total,
            )

        # SIGTERM (container/orchestrator shutdown) gets the same graceful
        # treatment as Ctrl-C: finish in-flight points, flush to the store,
        # return a partial result marked ``interrupted``.
        previous_handlers: List[Tuple[int, object]] = []
        if threading.current_thread() is threading.main_thread():

            def _on_signal(signum, frame):
                logger.warning(
                    "campaign %r: %s received - flushing finished "
                    "points and stopping",
                    self.name, signal.Signals(signum).name,
                )
                self.stop()

            for signum in (signal.SIGINT, signal.SIGTERM):
                previous_handlers.append(
                    (signum, signal.signal(signum, _on_signal))
                )

        try:
            if self.executor == "process":
                from .shard import run_sharded

                shard_run = run_sharded(
                    self,
                    pending_points,
                    keys=[keys[i] for i in pending] if keys is not None else None,
                    max_workers=max_workers,
                    stop_event=self._stop_event,
                )
                computed = shard_run.records
                with self._counter_lock:
                    self._retries += shard_run.retries
                    self._respawns += shard_run.respawns
                    self._timeouts += shard_run.timeouts
            elif self.batch_solves:
                computed = self._run_batched(pending_points, max_workers)
            else:
                computed = _map_indexed(
                    lambda pos, point: self._evaluate_pending(
                        pending[pos], total, point,
                        keys[pending[pos]] if keys is not None else None,
                    ),
                    pending_points,
                    max_workers,
                )
        finally:
            for signum, handler in previous_handlers:
                signal.signal(signum, handler)

        interrupted = self._stop_event.is_set()

        records: List[Optional[CampaignRecord]] = [None] * total
        for index, record in stored.items():
            records[index] = record
        num_evaluated = 0
        failed: List[FailedPoint] = []
        failed_indices: set = set()
        publish = (
            self.result_store is not None
            and keys is not None
            # The thread executor already published through
            # compute_if_missing; batched and sharded paths publish here.
            and (self.batch_solves or self.executor == "process")
        )
        for pos, entry in enumerate(computed):
            if entry is None:
                continue
            index = pending[pos]
            if isinstance(entry, FailedPoint):
                # Quarantined: the slot stays empty and nothing is
                # published, so a rerun against the store retries it.
                failed.append(entry)
                failed_indices.add(index)
                continue
            records[index] = entry
            num_evaluated += 1
            if publish:
                self.result_store.put(keys[index], entry)

        elapsed = time.perf_counter() - start
        logger.info("campaign %r: finished in %.2fs", self.name, elapsed)
        missing = [
            points[i]
            for i, r in enumerate(records)
            if r is None and i not in failed_indices
        ]
        if missing and not interrupted:
            # A worker failure either re-raises (fail_fast) or occupies
            # its slot as a FailedPoint, so every slot must be accounted
            # for by now; a hole would mean a scheduling bug.
            raise RuntimeError(
                f"campaign left {len(missing)} points unevaluated: {missing}"
            )
        if interrupted:
            logger.warning(
                "campaign %r: interrupted - %d/%d points finished "
                "(rerun with the same result store to resume)",
                self.name, total - len(missing) - len(failed), total,
            )
        if failed:
            logger.warning(
                "campaign %r: %d point(s) quarantined after exhausting "
                "retries (see result metadata 'failed_points')",
                self.name, len(failed),
            )
        final = [record for record in records if record is not None]
        with self._counter_lock:
            retries, respawns = self._retries, self._respawns
            timeouts = self._timeouts
        metadata: Dict[str, object] = {
            "name": self.name,
            "workloads": list(self.setups),
            "strategies": list(self.strategies),
            "overheads": list(self.overheads),
            "analyze_timing": self.analyze_timing,
            "num_points": total,
            "elapsed_s": elapsed,
            "solver_cache": self.cache.stats().as_dict(),
            "thermal_solver": self.cache.method,
            "batch_solves": self.batch_solves,
            "num_solve_groups": self._num_solve_groups,
            "executor": self.executor,
            "interrupted": interrupted,
            "retries": retries,
            "respawns": respawns,
            "timeouts": timeouts,
            "point_timeout_s": self.point_timeout_s,
            "failed_points": [entry.to_dict() for entry in failed],
            "num_failed": len(failed),
            "degraded_points": sum(1 for record in final if record.degraded),
        }
        if self.result_store is not None:
            metadata["result_store"] = self.result_store.stats().as_dict()
            metadata["store_hits"] = len(stored)
            metadata["num_evaluated"] = num_evaluated
        if self.flow is not None:
            metadata["flow_stages"] = self.flow.stats()
        return CampaignResult(records=final, metadata=metadata)
