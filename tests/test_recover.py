"""Crash-consistency suite: kill-9 debris, ``repro fsck``, and recovery.

A hard kill can interrupt the stores at exactly two seams — between
claiming a key and publishing its entry, and between staging a ``.tmp.*``
blob and the atomic rename.  This suite seeds real ``kind="exit"`` faults
(``os._exit`` mid-write, the kill-9 analogue) in subprocesses, then proves
the recovery contract:

* :func:`~repro.flow.recover.fsck_store` finds every category of debris
  (orphaned claims, stale temp files, corrupt blobs, unparseable keys)
  and ``--repair`` deletes or quarantines it atomically;
* after ``fsck --repair`` the store is clean and a rerun *resumes* —
  published survivors are reused, only the lost points recompute, and the
  merged result is bitwise-identical to an uninterrupted run;
* :func:`~repro.flow.recover.recover_store` (the startup pass) is safe
  against live peers: it only removes temp files with provably dead
  writers and claims past the stale threshold;
* single-flight claim handling survives clock skew, and
  :func:`~repro.flow.store.prune_store` racing a live writer never
  deletes young claims or fresh blobs.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.bench import scattered_hotspots_workload, small_synthetic_circuit
from repro.cli import main as cli_main
from repro.faults import FaultPlan, FaultRule
from repro.flow import (
    Campaign,
    ExperimentSetup,
    ResultStore,
    fsck_store,
    prune_store,
    recover_store,
)
from repro.flow.artifacts import BlobIntegrityError, read_blob, write_blob
from repro.flow.recover import QUARANTINE_DIR
from repro.flow.store import RESULT_SUFFIX, STALE_CLAIM_S

#: A syntactically valid store key (32 lowercase hex chars).
KEY = "ab" * 16

#: Source tree for subprocess PYTHONPATH.
SRC = str(Path(repro.__file__).resolve().parents[1])


def _entry_path(root: Path, key: str = KEY) -> Path:
    return root / key[:2] / f"{key}{RESULT_SUFFIX}"


def _run_child(code: str, plan: FaultPlan, timeout: float = 180.0):
    """Run ``code`` in a child interpreter with ``plan`` in REPRO_FAULTS."""
    env = dict(os.environ)
    env["REPRO_FAULTS"] = plan.to_json()
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, timeout=timeout,
    )


@pytest.fixture(scope="module")
def recover_setup():
    circuit = small_synthetic_circuit()
    workload = scattered_hotspots_workload(circuit)
    return ExperimentSetup.prepare(
        circuit, workload, grid_nx=16, grid_ny=16,
        num_cycles=6, batch_size=4, seed=11,
    )


class TestFsck:
    def test_missing_root_is_clean(self, tmp_path):
        report = fsck_store(tmp_path / "absent")
        assert report.clean and report.entries_checked == 0

    def test_healthy_store_is_clean(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root=root).put(KEY, {"value": 1})
        report = fsck_store(root)
        assert report.clean
        assert report.entries_checked == 1

    def test_finds_and_repairs_every_debris_category(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=root)
        store.put(KEY, {"value": 1})
        shard = root / KEY[:2]
        claim = shard / f"{KEY}.lock"
        claim.touch()
        tmp = shard / f"{KEY}{RESULT_SUFFIX}.tmp.999999.1"
        tmp.write_bytes(b"partial")
        bad_key = shard / f"not-a-key{RESULT_SUFFIX}"
        bad_key.write_bytes(b"renamed wrong")
        corrupt_key = "cd" * 16
        corrupt = _entry_path(root, corrupt_key)
        write_blob(corrupt, {"value": 2})
        corrupt.write_bytes(corrupt.read_bytes()[:-4] + b"XXXX")
        with pytest.raises(BlobIntegrityError):
            read_blob(corrupt)

        found = fsck_store(root)
        assert not found.clean
        assert found.orphaned_claims == [claim]
        assert found.stale_tmp == [tmp]
        assert found.bad_keys == [bad_key]
        assert found.corrupt_blobs == [corrupt]
        assert found.num_repaired == 0  # check-only: nothing touched
        assert claim.exists() and tmp.exists() and corrupt.exists()

        repaired = fsck_store(root, repair=True)
        assert repaired.num_repaired == 4
        assert repaired.repair_errors == 0
        assert not claim.exists() and not tmp.exists()
        # Debris is deleted; damaged *entries* are quarantined for the
        # operator, and the quarantine is outside later scans.
        quarantine = root / QUARANTINE_DIR
        assert (quarantine / corrupt.name).exists()
        assert (quarantine / bad_key.name).exists()
        after = fsck_store(root)
        assert after.clean
        assert after.entries_checked == 1  # the healthy entry survived
        assert ResultStore(root=root).get(KEY) == {"value": 1}

    def test_verify_blobs_can_be_skipped(self, tmp_path):
        root = tmp_path / "store"
        entry = _entry_path(root)
        write_blob(entry, {"value": 1})
        entry.write_bytes(entry.read_bytes()[:-4] + b"XXXX")
        assert fsck_store(root, verify_blobs=False).clean
        assert fsck_store(root).corrupt_blobs == [entry]

    def test_works_on_artifact_stores_too(self, tmp_path):
        root = tmp_path / "artifacts"
        entry = root / "thermal" / f"{KEY}.art"
        write_blob(entry, {"stage": "thermal"})
        assert fsck_store(root).entries_checked == 1
        entry.write_bytes(b"torn")
        report = fsck_store(root, repair=True)
        assert report.corrupt_blobs == [entry]
        assert (root / QUARANTINE_DIR / entry.name).exists()

    def test_cli_exit_codes(self, tmp_path, capsys):
        root = tmp_path / "store"
        ResultStore(root=root).put(KEY, {"value": 1})
        (root / KEY[:2] / f"{KEY}.lock").touch()
        assert cli_main(["fsck", str(root)]) == 1  # found, not repaired
        assert "orphaned claim" in capsys.readouterr().out
        assert cli_main(["fsck", "--repair", str(root)]) == 0
        assert cli_main(["fsck", str(root)]) == 0  # clean now
        assert "clean" in capsys.readouterr().out
        assert cli_main(["fsck", str(tmp_path / "absent")]) == 1


class TestKill9:
    def test_kill9_between_stage_and_publish_leaves_tmp(self, tmp_path):
        root = tmp_path / "store"
        plan = FaultPlan(rules=[FaultRule(site="store.publish", kind="exit")])
        child = _run_child(
            "from repro.faults import install_env_plan\n"
            "from repro.flow import ResultStore\n"
            "install_env_plan()\n"
            f"ResultStore(root={str(root)!r}).put({KEY!r}, {{'value': 1}})\n",
            plan,
        )
        assert child.returncode == 70, child.stderr
        report = fsck_store(root)
        assert len(report.stale_tmp) == 1
        assert report.entries_checked == 0  # nothing was published
        assert fsck_store(root, repair=True).num_repaired == 1
        assert fsck_store(root).clean
        # The rerun simply recomputes and publishes: resumable.
        store = ResultStore(root=root)
        store.put(KEY, {"value": 1})
        assert ResultStore(root=root).get(KEY) == {"value": 1}

    def test_kill9_after_claim_leaves_orphan_lock(self, tmp_path):
        root = tmp_path / "store"
        plan = FaultPlan(rules=[FaultRule(site="store.claim", kind="exit")])
        child = _run_child(
            "from repro.faults import install_env_plan\n"
            "from repro.flow import ResultStore\n"
            "install_env_plan()\n"
            f"store = ResultStore(root={str(root)!r})\n"
            f"store.compute_if_missing({KEY!r}, lambda: 'value')\n",
            plan,
        )
        assert child.returncode == 70, child.stderr
        report = fsck_store(root)
        assert len(report.orphaned_claims) == 1
        assert fsck_store(root, repair=True).num_repaired == 1
        # With the claim gone the next writer claims immediately instead
        # of waiting out the stale window.
        start = time.monotonic()
        record, computed = ResultStore(root=root).compute_if_missing(
            KEY, lambda: "value"
        )
        assert computed and record == "value"
        assert time.monotonic() - start < STALE_CLAIM_S / 10

    def test_killed_sweep_resumes_after_fsck_repair(
        self, tmp_path, recover_setup
    ):
        """The acceptance scenario: kill -9 a sweep mid-publication, fsck
        --repair the store, rerun — the merged result is bitwise-identical
        to an uninterrupted sweep."""
        root = tmp_path / "results"
        # The child dies inside its *second* point's publication (the
        # fault matches that point's blob name): one point is durable,
        # one left a .tmp, two were never reached.
        child = _run_child(
            "from repro import faults\n"
            "from repro.bench import scattered_hotspots_workload, "
            "small_synthetic_circuit\n"
            "from repro.flow import Campaign, CampaignPoint, "
            "ExperimentSetup, ResultStore\n"
            "circuit = small_synthetic_circuit()\n"
            "workload = scattered_hotspots_workload(circuit)\n"
            "setup = ExperimentSetup.prepare(circuit, workload, grid_nx=16, "
            "grid_ny=16, num_cycles=6, batch_size=4, seed=11)\n"
            "campaign = Campaign(setup, ('default', 'eri'), (0.1, 0.2), "
            f"name='victim', result_store=ResultStore(root={str(root)!r}))\n"
            "second = CampaignPoint(workload=workload.name, "
            "strategy='default', overhead=0.2)\n"
            "key = campaign.result_key_for(second)\n"
            "faults.activate(faults.FaultPlan(rules=[faults.FaultRule("
            "site='store.publish', kind='exit', "
            "match={'path': key + '.res'})]))\n"
            "campaign.run(max_workers=1)\n",
            FaultPlan(),  # env plan unused; the child installs its own
        )
        assert child.returncode == 70, child.stderr
        report = fsck_store(root, repair=True)
        assert len(report.stale_tmp) == 1
        assert report.entries_checked == 1  # exactly one point survived
        assert fsck_store(root).clean

        # The rerun reuses the survivor and recomputes the rest.
        reference = Campaign(
            recover_setup, ("default", "eri"), (0.1, 0.2), name="uninterrupted",
        ).run(max_workers=1)
        rerun = Campaign(
            recover_setup, ("default", "eri"), (0.1, 0.2), name="resume",
            result_store=ResultStore(root=root),
        ).run(max_workers=1)
        assert rerun.metadata["store_hits"] == 1
        assert rerun.metadata["num_evaluated"] == 3
        assert len(rerun.records) == len(reference.records)
        for ours, ref in zip(rerun.records, reference.records):
            assert ours.point == ref.point
            assert ours.outcome == ref.outcome  # bitwise


class TestRecoverStore:
    def test_removes_only_dead_writer_tmp(self, tmp_path):
        root = tmp_path / "store"
        shard = root / KEY[:2]
        shard.mkdir(parents=True)
        # Provably dead writer: a child that has already exited.
        probe = subprocess.Popen([sys.executable, "-c", "pass"])
        probe.wait()
        dead_tmp = shard / f"{KEY}{RESULT_SUFFIX}.tmp.{probe.pid}.1"
        dead_tmp.write_bytes(b"orphan")
        live_tmp = shard / f"{KEY}{RESULT_SUFFIX}.tmp.{os.getpid()}.1"
        live_tmp.write_bytes(b"in flight")
        odd_tmp = shard / f"{KEY}{RESULT_SUFFIX}.tmp.notapid"
        odd_tmp.write_bytes(b"unparseable")
        report = recover_store(root)
        assert report.stale_tmp == [dead_tmp]
        assert not dead_tmp.exists()
        assert live_tmp.exists()  # live peer: untouchable
        assert odd_tmp.exists()  # unverifiable: left alone

    def test_claims_only_removed_past_stale_threshold(self, tmp_path):
        root = tmp_path / "store"
        shard = root / KEY[:2]
        shard.mkdir(parents=True)
        fresh = shard / f"{KEY}.lock"
        fresh.touch()
        stale = shard / f"{'ef' * 16}.lock"
        stale.touch()
        now = time.time()
        os.utime(stale, (now - STALE_CLAIM_S - 10, now - STALE_CLAIM_S - 10))
        report = recover_store(root, now=now)
        assert report.orphaned_claims == [stale]
        assert fresh.exists() and not stale.exists()

    def test_future_mtime_claim_is_left_alone(self, tmp_path):
        # A claim stamped by a fast-skewed peer clock must never look
        # stale to recovery, no matter how large the skew.
        root = tmp_path / "store"
        shard = root / KEY[:2]
        shard.mkdir(parents=True)
        skewed = shard / f"{KEY}.lock"
        skewed.touch()
        now = time.time()
        os.utime(skewed, (now + 7200, now + 7200))
        assert recover_store(root, now=now).orphaned_claims == []
        assert skewed.exists()

    def test_campaign_clears_predecessor_debris_at_startup(
        self, tmp_path, recover_setup
    ):
        root = tmp_path / "results"
        shard = root / KEY[:2]
        shard.mkdir(parents=True)
        old_claim = shard / f"{KEY}.lock"
        old_claim.touch()
        past = time.time() - 2 * STALE_CLAIM_S
        os.utime(old_claim, (past, past))
        result = Campaign(
            recover_setup, ("eri",), (0.1,), name="startup-recovery",
            result_store=ResultStore(root=root),
        ).run(max_workers=1)
        assert len(result.records) == 1
        assert not old_claim.exists()

    def test_server_clears_predecessor_debris_at_startup(
        self, tmp_path, recover_setup
    ):
        from repro.service import SweepServer

        root = tmp_path / "results"
        shard = root / KEY[:2]
        shard.mkdir(parents=True)
        old_claim = shard / f"{KEY}.lock"
        old_claim.touch()
        past = time.time() - 2 * STALE_CLAIM_S
        os.utime(old_claim, (past, past))
        with SweepServer(
            {recover_setup.workload.name: recover_setup}, port=0,
            result_store=ResultStore(root=root),
        ):
            # The startup recovery pass runs in the constructor, before
            # the first request is accepted.
            assert not old_claim.exists()


class TestClockSkew:
    def test_backdated_stale_claim_broken_promptly(self, tmp_path):
        # A claim stamped by a slow peer clock (or simply abandoned long
        # ago) crosses the stale threshold: the waiter breaks it and
        # computes without waiting out its whole wait budget.
        store = ResultStore(root=tmp_path / "store")
        claim = store._claim_path(KEY)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.touch()
        past = time.time() - STALE_CLAIM_S - 10
        os.utime(claim, (past, past))
        start = time.monotonic()
        record, computed = store.compute_if_missing(
            KEY, lambda: "value", poll_s=0.01, wait_timeout_s=30.0
        )
        assert computed and record == "value"
        assert time.monotonic() - start < 10.0  # broke, did not wait out
        assert not claim.exists()

    def test_future_mtime_claim_never_goes_stale_but_wait_bounds(self, tmp_path):
        # The other direction: a fast-skewed peer stamped the claim in the
        # future, so its age stays negative forever.  The waiter must not
        # spin for good — the wait budget expires and it computes locally —
        # and it must not delete a claim it cannot prove abandoned.
        store = ResultStore(root=tmp_path / "store")
        claim = store._claim_path(KEY)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.touch()
        future = time.time() + 7200
        os.utime(claim, (future, future))
        record, computed = store.compute_if_missing(
            KEY, lambda: "value", poll_s=0.01, wait_timeout_s=0.2
        )
        assert computed and record == "value"
        assert claim.exists()  # the skewed peer's claim is not ours to break
        assert store.get(KEY) == "value"


class TestPruneVersusLiveWriter:
    def test_fresh_blobs_and_claims_survive_any_pressure(self, tmp_path):
        # A live writer just published one entry and claimed another key;
        # a concurrent prune under maximum pressure (age 0, size 0) must
        # not delete either.
        root = tmp_path / "store"
        store = ResultStore(root=root)
        store.put(KEY, {"value": 1})
        entry = _entry_path(root)
        claim = store._claim_path("cd" * 16)
        claim.parent.mkdir(parents=True, exist_ok=True)
        claim.touch()
        tmp = entry.with_name(f"{entry.name}.tmp.{os.getpid()}.1")
        tmp.write_bytes(b"staging")
        report = prune_store(root, max_age_days=0.0, max_size_mb=0.0)
        assert report.removed == 0
        assert report.strays_removed == 0
        assert entry.exists() and claim.exists() and tmp.exists()
        assert ResultStore(root=root).get(KEY) == {"value": 1}

    def test_aged_entries_still_prunable(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root=root).put(KEY, {"value": 1})
        entry = _entry_path(root)
        now = time.time()
        os.utime(entry, (now - 3600, now - 3600))
        report = prune_store(root, max_age_days=0.0, now=now)
        assert report.removed == 1
        assert not entry.exists()

    def test_min_age_zero_restores_aggressive_pruning(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root=root).put(KEY, {"value": 1})
        report = prune_store(root, max_size_mb=0.0, min_age_s=0.0)
        assert report.removed == 1
