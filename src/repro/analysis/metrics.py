"""Evaluation metrics.

The paper's evaluation reports relative quantities: peak-temperature
reduction versus area overhead (Figure 6, Table I) and the timing overhead
of applying the techniques.  This module collects those metric definitions
in one place so the experiment driver, the tests and the benchmark harness
all compute them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..placement import Placement
from ..thermal import ThermalMap
from ..timing import TimingReport


def temperature_reduction(baseline: ThermalMap, modified: ThermalMap) -> float:
    """Fractional reduction of the peak temperature rise above ambient.

    ``(rise_baseline - rise_modified) / rise_baseline`` — the quantity on
    the y axis of the paper's Figure 6 and in the last column of Table I.

    Raises:
        ValueError: If the baseline peak rise is not positive.
    """
    return modified.reduction_versus(baseline)


def gradient_reduction(baseline: ThermalMap, modified: ThermalMap) -> float:
    """Fractional reduction of the on-die temperature gradient."""
    base = baseline.gradient
    if base <= 0.0:
        return 0.0
    return (base - modified.gradient) / base


def area_overhead(baseline: Placement, modified: Placement) -> float:
    """Fractional core-area increase of ``modified`` over ``baseline``."""
    base = baseline.floorplan.core_area
    if base <= 0.0:
        raise ValueError("baseline core area must be positive")
    return modified.floorplan.core_area / base - 1.0


def timing_overhead(baseline: TimingReport, modified: TimingReport) -> float:
    """Fractional critical-path increase of ``modified`` over ``baseline``."""
    return modified.overhead_versus(baseline)


def wirelength_overhead(baseline: Placement, modified: Placement) -> float:
    """Fractional total-HPWL increase of ``modified`` over ``baseline``."""
    base = baseline.total_hpwl()
    if base <= 0.0:
        return 0.0
    return modified.total_hpwl() / base - 1.0


@dataclass
class ComparisonMetrics:
    """All before/after metrics for one transformation.

    Attributes:
        area_overhead: Core-area overhead fraction.
        temperature_reduction: Peak temperature-rise reduction fraction.
        gradient_reduction: Gradient reduction fraction.
        timing_overhead: Critical-path increase fraction (``None`` when
            timing was not analysed).
        wirelength_overhead: Total HPWL increase fraction.
        peak_rise_baseline: Baseline peak rise in Kelvin.
        peak_rise_modified: Modified peak rise in Kelvin.
    """

    area_overhead: float
    temperature_reduction: float
    gradient_reduction: float
    timing_overhead: Optional[float]
    wirelength_overhead: float
    peak_rise_baseline: float
    peak_rise_modified: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (``None`` timing reported as ``nan``)."""
        return {
            "area_overhead": self.area_overhead,
            "temperature_reduction": self.temperature_reduction,
            "gradient_reduction": self.gradient_reduction,
            "timing_overhead": float("nan") if self.timing_overhead is None else self.timing_overhead,
            "wirelength_overhead": self.wirelength_overhead,
            "peak_rise_baseline": self.peak_rise_baseline,
            "peak_rise_modified": self.peak_rise_modified,
        }


def compare(
    baseline_placement: Placement,
    baseline_map: ThermalMap,
    modified_placement: Placement,
    modified_map: ThermalMap,
    baseline_timing: Optional[TimingReport] = None,
    modified_timing: Optional[TimingReport] = None,
) -> ComparisonMetrics:
    """Compute the full before/after metric set for a transformation."""
    timing = None
    if baseline_timing is not None and modified_timing is not None:
        timing = timing_overhead(baseline_timing, modified_timing)
    return ComparisonMetrics(
        area_overhead=area_overhead(baseline_placement, modified_placement),
        temperature_reduction=temperature_reduction(baseline_map, modified_map),
        gradient_reduction=gradient_reduction(baseline_map, modified_map),
        timing_overhead=timing,
        wirelength_overhead=wirelength_overhead(baseline_placement, modified_placement),
        peak_rise_baseline=baseline_map.peak_rise,
        peak_rise_modified=modified_map.peak_rise,
    )
