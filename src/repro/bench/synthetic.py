"""The synthetic benchmark circuit.

The paper evaluates on "a synthetic benchmark circuit ... that consists of
about 12000 standard cells" and is "composed of nine arithmetic units of
various sizes", clocked at 1 GHz.  The synthetic circuit lets the authors
"control the size and position of hotspots using different workloads".

:func:`build_synthetic_circuit` assembles the same kind of design: nine
arithmetic units (multipliers, adders, a multiply-accumulate unit and a
carry-save adder tree) generated gate-by-gate from the default cell library
and merged into one flat netlist, each cell tagged with its unit name so
the placer can region-partition the design and the workloads can steer
per-unit activity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..netlist import CellLibrary, Netlist, default_library
from .arith import (
    array_multiplier,
    carry_lookahead_adder,
    carry_save_adder_tree,
    multiply_accumulate,
    ripple_carry_adder,
    wallace_multiplier,
)


@dataclass(frozen=True)
class UnitSpec:
    """Specification of one arithmetic unit of the synthetic benchmark.

    Attributes:
        name: Unit (and cell ``unit`` tag / name prefix) name.
        kind: Generator kind, one of ``"array_mult"``, ``"wallace_mult"``,
            ``"mac"``, ``"rca"``, ``"cla"``, ``"csa"``.
        width: Operand width in bits.
        operands: Number of operands (only used by the CSA tree).
    """

    name: str
    kind: str
    width: int
    operands: int = 4


#: The default nine units.  Sizes were chosen so the flattened design lands
#: near the paper's "about 12000 standard cells".
DEFAULT_UNITS: Tuple[UnitSpec, ...] = (
    UnitSpec("u0_mul32a", "array_mult", 32),
    UnitSpec("u1_mul32w", "wallace_mult", 32),
    UnitSpec("u2_mul30a", "array_mult", 30),
    UnitSpec("u3_mul24w", "wallace_mult", 24),
    UnitSpec("u4_mac24", "mac", 24),
    UnitSpec("u5_mul18a", "array_mult", 18),
    UnitSpec("u6_mul18w", "wallace_mult", 18),
    UnitSpec("u7_cla64", "cla", 64),
    UnitSpec("u8_csa32", "csa", 32, operands=8),
)


def _generate_unit(spec: UnitSpec, library: CellLibrary) -> Netlist:
    """Instantiate the generator named by ``spec.kind``."""
    generators: Dict[str, Callable[..., Netlist]] = {
        "array_mult": lambda: array_multiplier(spec.width, name=spec.name, library=library),
        "wallace_mult": lambda: wallace_multiplier(spec.width, name=spec.name, library=library),
        "mac": lambda: multiply_accumulate(spec.width, name=spec.name, library=library),
        "rca": lambda: ripple_carry_adder(spec.width, name=spec.name, library=library),
        "cla": lambda: carry_lookahead_adder(spec.width, name=spec.name, library=library),
        "csa": lambda: carry_save_adder_tree(
            spec.width, num_operands=spec.operands, name=spec.name, library=library
        ),
    }
    try:
        return generators[spec.kind]()
    except KeyError:
        raise ValueError(f"unknown unit kind {spec.kind!r}") from None


def build_synthetic_circuit(
    units: Sequence[UnitSpec] = DEFAULT_UNITS,
    name: str = "synthetic9",
    library: Optional[CellLibrary] = None,
) -> Netlist:
    """Build the nine-unit synthetic benchmark as one flat netlist.

    Args:
        units: Unit specifications (defaults to :data:`DEFAULT_UNITS`).
        name: Top-level design name.
        library: Cell library; a fresh default library when omitted.

    Returns:
        The flattened :class:`~repro.netlist.netlist.Netlist`; every cell's
        ``unit`` attribute names the arithmetic unit it belongs to and every
        port is prefixed with its unit name.

    Raises:
        ValueError: If two units share a name or a unit kind is unknown.
    """
    lib = library if library is not None else default_library()
    names = [spec.name for spec in units]
    if len(set(names)) != len(names):
        raise ValueError("unit names must be unique")

    top = Netlist(name, lib)
    for spec in units:
        unit_netlist = _generate_unit(spec, lib)
        top.merge(unit_netlist, prefix=f"{spec.name}__", unit=spec.name)
    return top


def unit_cell_counts(netlist: Netlist) -> Dict[str, int]:
    """Number of (non-filler) cells per unit."""
    counts: Dict[str, int] = {}
    for cell in netlist.logic_cells():
        counts[cell.unit] = counts.get(cell.unit, 0) + 1
    return counts


def small_synthetic_circuit(name: str = "synthetic_small",
                            library: Optional[CellLibrary] = None) -> Netlist:
    """A scaled-down variant of the benchmark for fast tests.

    Same structure (nine units, several kinds), roughly one tenth the cell
    count of the full benchmark.
    """
    units = (
        UnitSpec("u0_mul10a", "array_mult", 10),
        UnitSpec("u1_mul10w", "wallace_mult", 10),
        UnitSpec("u2_mul8a", "array_mult", 8),
        UnitSpec("u3_mul8w", "wallace_mult", 8),
        UnitSpec("u4_mac6", "mac", 6),
        UnitSpec("u5_mul6a", "array_mult", 6),
        UnitSpec("u6_mul6w", "wallace_mult", 6),
        UnitSpec("u7_cla16", "cla", 16),
        UnitSpec("u8_csa12", "csa", 12, operands=4),
    )
    return build_synthetic_circuit(units=units, name=name, library=library)
