"""Tests for the delay model and static timing analysis."""

import pytest

from repro.netlist import Netlist
from repro.timing import (
    DelayModel,
    StaticTimingAnalyzer,
    TimingReport,
    analyze_timing,
)


class TestDelayModel:
    def test_cell_derating_increases_with_temperature(self):
        model = DelayModel()
        assert model.cell_derating(25.0) == pytest.approx(1.0)
        assert model.cell_derating(35.0) == pytest.approx(1.04)
        assert model.cell_derating(125.0) == pytest.approx(1.4)

    def test_wire_derating(self):
        model = DelayModel()
        assert model.wire_derating(35.0) == pytest.approx(1.05)

    def test_cell_delay_grows_with_load(self, tiny_netlist):
        model = DelayModel()
        u3 = tiny_netlist.cells["u3"]
        unloaded = model.cell_delay_ps(u3, None)
        loaded = model.cell_delay_ps(u3, u3.pin("Y").net)
        assert loaded > unloaded

    def test_wire_delay_uses_placement(self, tiny_netlist):
        model = DelayModel()
        net = tiny_netlist.nets["n3"]
        before = model.wire_delay_ps(net)
        tiny_netlist.cells["u3"].place(0.0, 0.0, 0)
        tiny_netlist.cells["u4"].place(200.0, 0.0, 0)
        after = model.wire_delay_ps(net)
        assert after > before
        for name in ("u3", "u4"):
            cell = tiny_netlist.cells[name]
            cell.x = cell.y = cell.row = None

    def test_stage_delay_is_cell_plus_wire(self, tiny_netlist):
        model = DelayModel()
        u1 = tiny_netlist.cells["u1"]
        net = u1.pin("Y").net
        assert model.stage_delay_ps(u1, net) == pytest.approx(
            model.cell_delay_ps(u1, net) + model.wire_delay_ps(net)
        )


class TestStaticTimingAnalysis:
    def test_report_structure(self, tiny_netlist):
        report = analyze_timing(tiny_netlist)
        assert report.critical_path_ps > 0.0
        assert report.num_endpoints >= 1
        assert report.worst_path is not None
        assert report.worst_slack_ps == pytest.approx(
            report.clock_period_ps - report.critical_path_ps
        )

    def test_longer_chain_has_longer_path(self, library):
        def chain(depth):
            netlist = Netlist(f"chain{depth}", library)
            netlist.add_port("pi", "input")
            netlist.add_port("po", "output")
            netlist.connect_port("pi", "pi")
            prev = "pi"
            for i in range(depth):
                inv = netlist.add_cell(f"i{i}", "INV_X1")
                netlist.connect(prev, inv.pin("A"))
                prev = f"n{i}"
                netlist.connect(prev, inv.pin("Y"))
            netlist.connect_port(prev, "po")
            return analyze_timing(netlist).critical_path_ps

        assert chain(8) > chain(2)

    def test_temperature_increases_critical_path(self, small_circuit):
        cold = analyze_timing(small_circuit, temperature=25.0)
        hot = analyze_timing(small_circuit, temperature=85.0)
        assert hot.critical_path_ps > cold.critical_path_ps

    def test_meets_timing_flag(self, tiny_netlist):
        slow_clock = analyze_timing(tiny_netlist, clock_period_ps=10000.0)
        assert slow_clock.meets_timing
        fast_clock = analyze_timing(tiny_netlist, clock_period_ps=0.001)
        assert not fast_clock.meets_timing

    def test_overhead_versus(self):
        base = TimingReport(1000.0, 1000.0, 0.0, None, 1)
        worse = TimingReport(1020.0, 1000.0, -20.0, None, 1)
        assert worse.overhead_versus(base) == pytest.approx(0.02)
        with pytest.raises(ValueError):
            worse.overhead_versus(TimingReport(0.0, 1000.0, 0.0, None, 0))

    def test_empty_design_report(self, empty_netlist):
        report = analyze_timing(empty_netlist)
        assert report.critical_path_ps == 0.0
        assert report.num_endpoints == 0

    def test_worst_path_traces_cells(self, tiny_netlist):
        report = analyze_timing(tiny_netlist)
        assert report.worst_path.through_cells
        assert set(report.worst_path.through_cells) <= set(tiny_netlist.cells)

    def test_placement_affects_wire_delay(self, small_circuit, small_placement):
        placed = analyze_timing(small_circuit)
        # Analysis uses the cells' current (placed) coordinates; the small
        # benchmark critical path must be below the 1 GHz clock period by a
        # reasonable margin but not trivially small.
        assert 50.0 < placed.critical_path_ps


class TestAnalyzerOnBenchmark:
    def test_analyzer_with_explicit_model(self, small_circuit):
        analyzer = StaticTimingAnalyzer(
            small_circuit, delay_model=DelayModel(temperature=50.0), clock_period_ps=2000.0
        )
        report = analyzer.analyze()
        assert report.clock_period_ps == 2000.0
        assert report.critical_path_ps > 0.0
