"""Figure 5: power and thermal profiles of the first test set.

The paper shows, side by side, the 40x40 power profile and the 40x40
thermal profile of the scattered-hotspot configuration and observes that
"there is significant correlation between highly power consuming area and
thermal hotspots".  This benchmark regenerates both profiles, prints them
as coarse text maps, and checks that correlation quantitatively.
"""

from __future__ import annotations

import numpy as np

from repro.power import build_power_map
from repro.thermal import simulate_placement


def _ascii_map(values: np.ndarray, levels: str = " .:-=+*#%@") -> str:
    """Render a 2-D array as a coarse ASCII heat map (top row = max y)."""
    lo, hi = float(values.min()), float(values.max())
    span = hi - lo if hi > lo else 1.0
    rows = []
    for row in values[::-1]:
        indices = ((row - lo) / span * (len(levels) - 1)).astype(int)
        rows.append("".join(levels[i] for i in indices))
    return "\n".join(rows)


def test_fig5_power_and_thermal_profiles(scattered_setup, benchmark):
    setup = scattered_setup

    def run():
        power_map = build_power_map(setup.placement, setup.power, nx=40, ny=40)
        thermal_map = simulate_placement(
            setup.placement, setup.power, package=setup.package, nx=40, ny=40
        )
        return power_map, thermal_map

    power_map, thermal_map = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFigure 5 (left): power profile [W per thermal cell], 40x40 grid")
    print(_ascii_map(power_map.power_w[::2, ::2]))
    print(f"total power: {power_map.total_power * 1e3:.2f} mW, "
          f"peak bin: {power_map.power_w.max() * 1e6:.1f} uW")
    print("\nFigure 5 (right): thermal profile [C], 40x40 grid")
    print(_ascii_map(thermal_map.temperatures[::2, ::2]))
    print(f"peak {thermal_map.peak:.2f} C, rise {thermal_map.peak_rise:.2f} K, "
          f"gradient {thermal_map.gradient:.2f} K")

    # Paper: peak temperatures range from a few degrees to ~25 K above
    # ambient across configurations; this configuration must land inside.
    assert 2.0 < thermal_map.peak_rise < 30.0

    # Paper: "significant correlation between highly power consuming area
    # and thermal hotspots".  The correlation is evaluated over the core
    # area only (the die margin holds no cells, only spread heat).
    floorplan = setup.placement.floorplan
    nx, ny = power_map.nx, power_map.ny
    ix0 = int(floorplan.die_margin / power_map.bin_width_um)
    iy0 = int(floorplan.die_margin / power_map.bin_height_um)
    core_power = power_map.power_w[iy0: ny - iy0, ix0: nx - ix0].ravel()
    core_rise = thermal_map.rise_map()[iy0: ny - iy0, ix0: nx - ix0].ravel()
    correlation = float(np.corrcoef(core_power, core_rise)[0, 1])
    print(f"power/temperature correlation over the core: {correlation:.3f}")
    assert correlation > 0.35

    # The hottest thermal cell must sit in a high-power neighbourhood.
    iy, ix = thermal_map.peak_location()
    neighbourhood = power_map.power_w[
        max(iy - 3, 0): iy + 4, max(ix - 3, 0): ix + 4
    ]
    assert neighbourhood.max() > np.percentile(power_map.power_w, 90)
