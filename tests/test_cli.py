"""Command-line interface: ``repro quickstart / sweep / table1``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main

#: Fast settings shared by every CLI invocation under test.
FAST = ["--small", "--grid", "16", "--cycles", "6"]


def run_cli(args, tmp_path):
    code = main(args + FAST + ["--out", str(tmp_path)])
    assert code == 0
    return code


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.full is True  # Figure 6 is the paper-sized benchmark
        assert 0.15 in args.overheads
        assert args.strategies == ["default", "eri", "hw"]

    def test_quickstart_defaults_to_small(self):
        args = build_parser().parse_args(["quickstart"])
        assert args.full is False
        assert args.overhead == pytest.approx(0.15)
        assert args.strategy == "eri"

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--strategies", "bogus"])

    def test_unknown_strategy_exits_2_with_suggestion(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["sweep", "--strategies", "gradiant"])
        assert excinfo.value.code == 2
        assert "did you mean 'gradient'" in capsys.readouterr().err

    def test_bad_strategy_param_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["sweep", "--strategies", "hw:rings=9"])
        assert excinfo.value.code == 2
        assert "has no parameter" in capsys.readouterr().err

    def test_comma_separated_specs_keep_param_commas(self):
        args = build_parser().parse_args(
            ["sweep", "--strategies", "default,hw:ring_um=8,max_source_units=3,hybrid"]
        )
        assert args.strategies == [
            ["default", "hw:max_source_units=3,ring_um=8.0", "hybrid"]
        ]

    def test_quickstart_accepts_any_registered_spec(self):
        args = build_parser().parse_args(
            ["quickstart", "--strategy", "gradient:exponent=2"]
        )
        assert args.strategy == "gradient:exponent=2.0"


class TestQuickstart(object):
    def test_writes_json_record(self, tmp_path, capsys):
        run_cli(["quickstart", "--overhead", "0.2"], tmp_path)
        out = capsys.readouterr().out
        assert "reduction" in out
        payload = json.loads((tmp_path / "quickstart.json").read_text())
        assert payload["metadata"]["command"] == "quickstart"
        (record,) = payload["records"]
        assert record["strategy"] == "eri"
        assert record["requested_overhead"] == pytest.approx(0.2)
        assert record["temperature_reduction"] > 0.0
        assert record["timing_overhead"] is not None


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("sweep")
        main(["sweep", "--overheads", "0.1", "0.15", "--jobs", "1", "--csv"]
             + FAST + ["--out", str(out)])
        return out

    def test_writes_grid_json(self, sweep_dir):
        payload = json.loads((sweep_dir / "figure6.json").read_text())
        records = payload["records"]
        assert len(records) == 6  # 3 strategies x 2 overheads
        strategies = [r["strategy"] for r in records]
        assert strategies == ["default"] * 2 + ["eri"] * 2 + ["hw"] * 2
        assert all(r["temperature_reduction"] > 0.0 for r in records)
        assert payload["metadata"]["solver_cache"]["misses"] > 0

    def test_targeted_competitive_at_reference_point(self, sweep_dir):
        """On the fast benchmark the targeted schemes match or beat Default.

        The strict ERI >= HW >= Default ordering of Figure 6 is asserted on
        the paper-sized benchmark in ``benchmarks/test_fig6_efficiency.py``;
        at this coarse grid/small circuit the ERI/HW gap sits inside the
        row-snapping noise, so only the default-versus-targeted relation is
        stable enough to pin down.
        """
        payload = json.loads((sweep_dir / "figure6.json").read_text())
        by_point = {
            (r["strategy"], r["requested_overhead"]): r["temperature_reduction"]
            for r in payload["records"]
        }
        default = by_point[("default", 0.15)]
        assert by_point[("eri", 0.15)] >= 0.95 * default
        assert by_point[("hw", 0.15)] >= 0.95 * default

    def test_writes_csv_next_to_json(self, sweep_dir):
        lines = (sweep_dir / "figure6.csv").read_text().strip().splitlines()
        assert len(lines) == 7


class TestStrategies:
    def test_lists_registry(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("default", "eri", "hw", "hybrid", "gradient"):
            assert name in out
        assert "spec grammar" in out


class TestHybridSweep:
    def test_one_point_hybrid_sweep(self, tmp_path):
        run_cli(
            ["sweep", "--strategies", "hybrid", "--overheads", "0.15", "--jobs", "1"],
            tmp_path,
        )
        payload = json.loads((tmp_path / "figure6.json").read_text())
        (record,) = payload["records"]
        assert record["strategy"] == "hybrid"
        assert record["strategy_params"] == {}
        assert record["temperature_reduction"] > 0.0
        assert payload["metadata"]["strategies"] == ["hybrid"]

    def test_parameterized_sweep_records_params(self, tmp_path):
        run_cli(
            ["sweep", "--strategies", "gradient:exponent=2", "--overheads", "0.15",
             "--jobs", "1", "--csv"],
            tmp_path,
        )
        payload = json.loads((tmp_path / "figure6.json").read_text())
        (record,) = payload["records"]
        assert record["strategy"] == "gradient:exponent=2.0"
        assert record["strategy_params"] == {"exponent": 2.0}
        header = (tmp_path / "figure6.csv").read_text().splitlines()[0]
        assert "strategy_params" in header


class TestTable1:
    def test_writes_paired_rows(self, tmp_path):
        run_cli(["table1", "--rows", "3", "6"], tmp_path)
        payload = json.loads((tmp_path / "table1.json").read_text())
        records = payload["records"]
        assert [r["strategy"] for r in records] == ["default", "default", "eri", "eri"]
        assert records[2]["inserted_rows"] == 3
        assert records[3]["inserted_rows"] == 6
        assert payload["metadata"]["row_counts"] == [3, 6]
