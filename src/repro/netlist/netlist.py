"""Gate-level netlist container.

A :class:`Netlist` holds cell instances, nets and primary ports, and offers
the structural queries the rest of the system needs: levelization for the
vectorized logic simulator, total cell area for utilization bookkeeping, and
net/fanout statistics.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from .cell import CellInstance, Pin
from .library import CellLibrary, MasterCell
from .net import Net, Port


class Netlist:
    """A flat gate-level netlist.

    Attributes:
        name: Design name.
        library: The :class:`CellLibrary` instances refer to.
    """

    def __init__(self, name: str, library: CellLibrary) -> None:
        self.name = name
        self.library = library
        self.cells: Dict[str, CellInstance] = {}
        self.nets: Dict[str, Net] = {}
        self.ports: Dict[str, Port] = {}
        #: Structural version, bumped by every mutating method; the compiled
        #: array form (:meth:`compiled`) is cached against it.
        self._version = 0
        self._compiled = None

    def _invalidate(self) -> None:
        self._version += 1

    def invalidate_compiled(self) -> None:
        """Force recompilation of the cached array form.

        Mutations performed through :class:`Netlist` methods are tracked
        automatically; call this only after mutating nets or pins directly
        (e.g. ``net.add_sink(pin)`` without going through :meth:`connect`).
        """
        self._invalidate()

    def compiled(self):
        """The netlist lowered to levelized structure-of-arrays form.

        The :class:`~repro.netlist.compiled.CompiledNetlist` is built on
        first access and cached; any structural mutation through the
        :class:`Netlist` API invalidates it automatically.
        """
        from .compiled import CompiledNetlist

        cached = self._compiled
        if cached is None or cached.version != self._version:
            cached = CompiledNetlist(self)
            self._compiled = cached
        return cached

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def add_cell(self, name: str, master: str | MasterCell, unit: str = "") -> CellInstance:
        """Create and register a cell instance.

        Args:
            name: Unique instance name.
            master: Master cell name (looked up in the library) or object.
            unit: Logical block the cell belongs to.

        Returns:
            The created :class:`CellInstance`.

        Raises:
            ValueError: If an instance with that name already exists.
        """
        if name in self.cells:
            raise ValueError(f"duplicate cell instance {name!r}")
        master_cell = self.library[master] if isinstance(master, str) else master
        inst = CellInstance(name, master_cell, unit=unit)
        self.cells[name] = inst
        self._invalidate()
        return inst

    def add_net(self, name: str) -> Net:
        """Create and register a net, or return the existing one."""
        net = self.nets.get(name)
        if net is None:
            net = Net(name)
            self.nets[name] = net
            self._invalidate()
        return net

    def add_port(self, name: str, direction: str) -> Port:
        """Create and register a primary port.

        Raises:
            ValueError: If a port with that name already exists.
        """
        if name in self.ports:
            raise ValueError(f"duplicate port {name!r}")
        port = Port(name, direction)
        self.ports[name] = port
        self._invalidate()
        return port

    def connect(self, net_name: str, pin: Pin) -> Net:
        """Connect a cell pin to the named net (creating it if needed)."""
        net = self.add_net(net_name)
        if pin.is_output:
            net.set_driver(pin)
        else:
            net.add_sink(pin)
        self._invalidate()
        return net

    def connect_port(self, net_name: str, port_name: str) -> Net:
        """Connect a primary port to the named net (creating it if needed)."""
        net = self.add_net(net_name)
        port = self.ports[port_name]
        if port.is_input:
            net.set_driver_port(port)
        else:
            net.add_sink_port(port)
        self._invalidate()
        return net

    def remove_cell(self, name: str) -> None:
        """Remove a cell instance and disconnect its pins from their nets."""
        inst = self.cells.pop(name)
        for pin in inst.pins.values():
            net = pin.net
            if net is None:
                continue
            if net.driver_pin is pin:
                net.driver_pin = None
            if pin in net.sink_pins:
                net.sink_pins.remove(pin)
            pin.net = None
        self._invalidate()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def primary_inputs(self) -> List[Port]:
        """Primary input ports."""
        return [p for p in self.ports.values() if p.is_input]

    @property
    def primary_outputs(self) -> List[Port]:
        """Primary output ports."""
        return [p for p in self.ports.values() if p.is_output]

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_nets(self) -> int:
        return len(self.nets)

    def logic_cells(self) -> List[CellInstance]:
        """Cell instances that are not fillers."""
        return [c for c in self.cells.values() if not c.is_filler]

    def filler_cells(self) -> List[CellInstance]:
        """Filler cell instances."""
        return [c for c in self.cells.values() if c.is_filler]

    def sequential_cells(self) -> List[CellInstance]:
        """Flip-flop instances."""
        return [c for c in self.cells.values() if c.is_sequential]

    def combinational_cells(self) -> List[CellInstance]:
        """Non-sequential, non-filler instances."""
        return [c for c in self.cells.values() if not c.is_sequential and not c.is_filler]

    def total_cell_area(self, include_fillers: bool = False) -> float:
        """Sum of instance areas in square micrometres."""
        return sum(
            c.area for c in self.cells.values() if include_fillers or not c.is_filler
        )

    def units(self) -> List[str]:
        """Sorted list of distinct non-empty unit labels."""
        return sorted({c.unit for c in self.cells.values() if c.unit})

    def cells_in_unit(self, unit: str) -> List[CellInstance]:
        """All cell instances whose ``unit`` label equals ``unit``."""
        return [c for c in self.cells.values() if c.unit == unit]

    def fanout_cells(self, inst: CellInstance) -> List[CellInstance]:
        """Distinct cells driven by any output pin of ``inst``."""
        seen: Dict[str, CellInstance] = {}
        for pin in inst.output_pins:
            if pin.net is None:
                continue
            for sink in pin.net.sink_pins:
                seen[sink.cell.name] = sink.cell
        return list(seen.values())

    def fanin_cells(self, inst: CellInstance) -> List[CellInstance]:
        """Distinct cells driving any input pin of ``inst``."""
        seen: Dict[str, CellInstance] = {}
        for pin in inst.input_pins:
            if pin.net is None or pin.net.driver_pin is None:
                continue
            driver = pin.net.driver_pin.cell
            seen[driver.name] = driver
        return list(seen.values())

    # ------------------------------------------------------------------
    # Levelization
    # ------------------------------------------------------------------

    def levelize(self) -> List[CellInstance]:
        """Topologically order the combinational cells.

        Sequential cell outputs and primary inputs are treated as sources;
        sequential cell data inputs and primary outputs as sinks, so any
        cycle through a flip-flop is broken at the flip-flop boundary.

        Returns:
            Combinational cell instances in a valid evaluation order.

        Raises:
            ValueError: If the combinational logic contains a cycle.
        """
        comb = self.combinational_cells()
        indegree: Dict[str, int] = {c.name: 0 for c in comb}
        dependents: Dict[str, List[CellInstance]] = {c.name: [] for c in comb}

        for inst in comb:
            for pin in inst.input_pins:
                net = pin.net
                if net is None or net.driver_pin is None:
                    continue
                driver = net.driver_pin.cell
                if driver.is_sequential or driver.is_filler:
                    continue
                indegree[inst.name] += 1
                dependents[driver.name].append(inst)

        queue: deque = deque(c for c in comb if indegree[c.name] == 0)
        order: List[CellInstance] = []
        while queue:
            inst = queue.popleft()
            order.append(inst)
            for dep in dependents[inst.name]:
                indegree[dep.name] -= 1
                if indegree[dep.name] == 0:
                    queue.append(dep)

        if len(order) != len(comb):
            unresolved = [name for name, deg in indegree.items() if deg > 0]
            raise ValueError(
                "combinational cycle detected involving cells: "
                + ", ".join(sorted(unresolved)[:10])
            )
        return order

    # ------------------------------------------------------------------
    # Merging (used by the synthetic benchmark generator)
    # ------------------------------------------------------------------

    def merge(self, other: "Netlist", prefix: str, unit: Optional[str] = None) -> None:
        """Merge another netlist into this one, prefixing all names.

        The other netlist's primary ports become ports of this design named
        ``<prefix><port>``.  Cells and nets are copied with the same prefix.

        Args:
            other: The netlist to absorb.
            prefix: String prepended to every cell, net and port name.
            unit: Unit label assigned to the copied cells; defaults to the
                cells' existing labels, or ``prefix`` with a trailing ``_``
                stripped when a cell has no label.
        """
        default_unit = unit if unit is not None else prefix.rstrip("_")
        name_map: Dict[str, CellInstance] = {}
        for inst in other.cells.values():
            new_unit = unit if unit is not None else (inst.unit or default_unit)
            new = self.add_cell(prefix + inst.name, inst.master, unit=new_unit)
            if inst.is_placed:
                new.place(inst.x, inst.y, inst.row)
            name_map[inst.name] = new

        for port in other.ports.values():
            self.add_port(prefix + port.name, port.direction)

        for net in other.nets.values():
            new_name = prefix + net.name
            if net.driver_pin is not None:
                self.connect(new_name, name_map[net.driver_pin.cell.name].pin(net.driver_pin.name))
            if net.driver_port is not None:
                self.connect_port(new_name, prefix + net.driver_port.name)
            for pin in net.sink_pins:
                self.connect(new_name, name_map[pin.cell.name].pin(pin.name))
            for port in net.sink_ports:
                self.connect_port(new_name, prefix + port.name)

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep-copy the netlist (cells, nets, ports, placement data).

        The copy shares the (immutable) library and master cells but owns
        fresh cell instances, nets and ports, so transformations applied to
        the copy never disturb the original.  Instance, net and port names
        are preserved, which keeps per-cell annotations (e.g. power reports
        keyed by cell name) valid for the copy.
        """
        clone = Netlist(name if name is not None else self.name, self.library)
        # Clone structures directly (the source is valid by construction, so
        # the checked add/connect API would only re-validate it); this runs
        # once per strategy evaluation on the full design.
        clone_cells = clone.cells
        for inst in self.cells.values():
            new = CellInstance(inst.name, inst.master, unit=inst.unit)
            new.x = inst.x
            new.y = inst.y
            new.row = inst.row
            new.fixed = inst.fixed
            clone_cells[inst.name] = new
        clone_ports = clone.ports
        for port in self.ports.values():
            new_port = Port(port.name, port.direction)
            new_port.x = port.x
            new_port.y = port.y
            clone_ports[port.name] = new_port
        clone_nets = clone.nets
        for net in self.nets.values():
            new_net = Net(net.name)
            if net.driver_pin is not None:
                pin = clone_cells[net.driver_pin.cell.name].pins[net.driver_pin.name]
                new_net.driver_pin = pin
                pin.net = new_net
            if net.driver_port is not None:
                port = clone_ports[net.driver_port.name]
                new_net.driver_port = port
                port.net = new_net
            sinks = new_net.sink_pins
            for pin in net.sink_pins:
                new_pin = clone_cells[pin.cell.name].pins[pin.name]
                sinks.append(new_pin)
                new_pin.net = new_net
            for port in net.sink_ports:
                new_port = clone_ports[port.name]
                new_net.sink_ports.append(new_port)
                new_port.net = new_net
            clone_nets[net.name] = new_net
        clone._invalidate()
        return clone

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __reduce__(self):
        """Pickle via flat per-object tables instead of graph traversal.

        The Pin -> Net -> Pin object graph is as deep as the design's
        connectivity, so default recursive pickling overflows the
        interpreter stack on realistic netlists.  The state mirrors
        :meth:`copy`: names, coordinates and name-based connectivity,
        with the (immutable) library shared.  Caches (``_compiled``,
        content-digest memos) are deliberately not part of the state.
        """
        cells = [
            (c.name, c.master.name, c.unit, c.x, c.y, c.row, c.fixed)
            for c in self.cells.values()
        ]
        ports = [(p.name, p.direction, p.x, p.y) for p in self.ports.values()]
        nets = [
            (
                net.name,
                (net.driver_pin.cell.name, net.driver_pin.name)
                if net.driver_pin is not None
                else None,
                net.driver_port.name if net.driver_port is not None else None,
                [(pin.cell.name, pin.name) for pin in net.sink_pins],
                [port.name for port in net.sink_ports],
            )
            for net in self.nets.values()
        ]
        return (_netlist_from_state, (self.name, self.library, cells, ports, nets))

    # ------------------------------------------------------------------
    # Statistics / validation
    # ------------------------------------------------------------------

    def statistics(self) -> Dict[str, float]:
        """Summary statistics used in reports and sanity checks."""
        comb = self.combinational_cells()
        seq = self.sequential_cells()
        return {
            "num_cells": float(self.num_cells),
            "num_logic_cells": float(len(self.logic_cells())),
            "num_combinational": float(len(comb)),
            "num_sequential": float(len(seq)),
            "num_fillers": float(len(self.filler_cells())),
            "num_nets": float(self.num_nets),
            "num_ports": float(len(self.ports)),
            "total_cell_area_um2": self.total_cell_area(),
        }

    def check(self) -> List[str]:
        """Run structural sanity checks.

        Returns:
            A list of human-readable problems; empty when the netlist is
            structurally sound (every non-filler input pin driven, every net
            with a driver, no dangling drivers on multi-driven nets).
        """
        problems: List[str] = []
        for net in self.nets.values():
            if not net.has_driver and net.num_sinks > 0:
                problems.append(f"net {net.name} has sinks but no driver")
        for inst in self.cells.values():
            if inst.is_filler:
                continue
            for pin in inst.input_pins:
                if pin.net is None:
                    problems.append(f"input pin {pin.full_name} is unconnected")
        for port in self.primary_outputs:
            if port.net is None:
                problems.append(f"primary output {port.name} is unconnected")
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Netlist({self.name}, cells={self.num_cells}, nets={self.num_nets})"


def _netlist_from_state(name, library, cells, ports, nets) -> Netlist:
    """Rebuild a netlist from the flat state emitted by ``__reduce__``."""
    netlist = Netlist(name, library)
    clone_cells = netlist.cells
    for cell_name, master_name, unit, x, y, row, fixed in cells:
        inst = CellInstance(cell_name, library[master_name], unit=unit)
        inst.x = x
        inst.y = y
        inst.row = row
        inst.fixed = fixed
        clone_cells[cell_name] = inst
    clone_ports = netlist.ports
    for port_name, direction, x, y in ports:
        port = Port(port_name, direction)
        port.x = x
        port.y = y
        clone_ports[port_name] = port
    clone_nets = netlist.nets
    for net_name, driver_pin, driver_port, sink_pins, sink_ports in nets:
        net = Net(net_name)
        if driver_pin is not None:
            pin = clone_cells[driver_pin[0]].pins[driver_pin[1]]
            net.driver_pin = pin
            pin.net = net
        if driver_port is not None:
            port = clone_ports[driver_port]
            net.driver_port = port
            port.net = net
        for cell_name, pin_name in sink_pins:
            pin = clone_cells[cell_name].pins[pin_name]
            net.sink_pins.append(pin)
            pin.net = net
        for port_name in sink_ports:
            port = clone_ports[port_name]
            net.sink_ports.append(port)
            port.net = net
        clone_nets[net_name] = net
    netlist._invalidate()
    return netlist
