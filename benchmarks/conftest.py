"""Shared fixtures for the benchmark harness.

The benchmarks reproduce the paper's evaluation on the *full* synthetic
benchmark (about 12,000 standard cells).  Baseline preparation (placement,
logic simulation, power estimation, thermal solve) is shared per workload
through session-scoped fixtures so each figure/table only pays for its own
strategy evaluations.
"""

from __future__ import annotations

import pytest

from repro.bench import (
    build_synthetic_circuit,
    concentrated_hotspot_workload,
    scattered_hotspots_workload,
)
from repro.flow import ExperimentSetup, SolverCache
from repro.placement import place_design


@pytest.fixture(scope="session")
def full_circuit():
    """The full nine-unit, ~12k-cell synthetic benchmark."""
    return build_synthetic_circuit()


@pytest.fixture(scope="session")
def solver_cache():
    """One solver cache for the whole benchmark session.

    Both test-set baselines place the same circuit at the same utilization,
    so they share one die outline — and therefore one factorisation.
    """
    return SolverCache(maxsize=32)


@pytest.fixture(scope="session")
def scattered_setup(full_circuit, solver_cache):
    """Baseline for the paper's first test set (four scattered small hotspots)."""
    placement = place_design(full_circuit, utilization=0.85)
    workload = scattered_hotspots_workload(full_circuit, regions=placement.regions)
    return ExperimentSetup.prepare(
        full_circuit, workload, num_cycles=16, batch_size=16, seed=2010,
        cache=solver_cache,
    )


@pytest.fixture(scope="session")
def concentrated_setup(full_circuit, solver_cache):
    """Baseline for the paper's second test set (one large concentrated hotspot)."""
    workload = concentrated_hotspot_workload(full_circuit)
    return ExperimentSetup.prepare(
        full_circuit, workload, num_cycles=16, batch_size=16, seed=2010,
        cache=solver_cache,
    )
