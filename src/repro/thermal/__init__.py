"""Thermal substrate: package stack, mesh, RC network, solver, SPICE I/O."""

from .package import (
    Layer,
    Package,
    default_package,
    high_performance_package,
    low_cost_package,
)
from .grid import ThermalGrid
from .network import NetworkElements, ThermalNetwork
from .thermal_map import ThermalMap, map_from_solution
from .multigrid import MultigridConvergenceError, MultigridSolver
from .solver import (
    DEFAULT_PERMC_SPEC,
    MULTIGRID_AUTO_MIN_NODES,
    THERMAL_METHODS,
    ThermalSolver,
    cell_temperature_array,
    cell_temperatures,
    grid_for_placement,
    resolve_thermal_method,
    simulate_placement,
    simulate_with_leakage_feedback,
)
from .spice import (
    SpiceCircuit,
    parse_spice_netlist,
    solve_spice_netlist,
    write_spice_netlist,
)

__all__ = [
    "Layer",
    "Package",
    "default_package",
    "high_performance_package",
    "low_cost_package",
    "ThermalGrid",
    "NetworkElements",
    "ThermalNetwork",
    "ThermalMap",
    "map_from_solution",
    "DEFAULT_PERMC_SPEC",
    "MULTIGRID_AUTO_MIN_NODES",
    "THERMAL_METHODS",
    "MultigridConvergenceError",
    "MultigridSolver",
    "ThermalSolver",
    "cell_temperature_array",
    "cell_temperatures",
    "grid_for_placement",
    "resolve_thermal_method",
    "simulate_placement",
    "simulate_with_leakage_feedback",
    "SpiceCircuit",
    "parse_spice_netlist",
    "solve_spice_netlist",
    "write_spice_netlist",
]
