"""Process-sharded campaign execution over shared-memory baselines.

The thread executor scales until the Python-level work between the
GIL-releasing SciPy kernels saturates one interpreter; past that point the
campaign needs real processes.  The naive way — pickling each point's
:class:`~repro.flow.experiment.ExperimentSetup` into every worker — ships
the full baseline (netlist, placement, power report, temperature fields)
per task.  This module ships it once, and the bulky parts not at all:

* The baseline's numeric payloads — the binned power map, the solved
  temperature field, the warm-start rise vector, the per-cell power
  vectors — are copied into ``multiprocessing.shared_memory`` segments.
  Every worker maps the same physical pages read-only; nothing is pickled
  per task and memory stays O(1) in the worker count.
* The structural skeleton (netlist graph, placement rows, package stack)
  is pickled exactly once per worker at startup, with the array slots
  stripped; workers re-attach the shared segments into the empty slots.
* A task is then six scalars: ``(slot, workload, strategy spec,
  overhead, result key, attempt)``.

Workers evaluate points with a private :class:`SolverCache` (factorised
solvers hold SuperLU handles and cannot cross processes) and stream
records back over a result queue; with a disk-rooted
:class:`~repro.flow.store.ResultStore` attached each worker also publishes
every record as it completes, so progress survives even a hard kill of
the parent.  Evaluation is deterministic — identical inputs, identical
NumPy/SciPy operations — so sharded records are bitwise-identical to the
serial and threaded paths, which ``tests/test_shard.py`` asserts.

Fault tolerance: each worker advertises its in-flight slot through a
lock-free shared array (written *before* it starts evaluating, so the
information survives even an ``os._exit`` mid-solve).  When the parent
notices a dead worker it requeues that worker's in-flight point and
spawns a replacement, up to a respawn budget; a point whose evaluation
*raises* is retried under the campaign's
:class:`~repro.faults.RetryPolicy` and quarantined as a
:class:`~repro.flow.runner.FailedPoint` on exhaustion (or re-raised with
``fail_fast``).  Requeued and retried points re-run the same pure
evaluation, so surviving records stay bitwise-identical to a fault-free
run.

Workers ignore SIGINT: a Ctrl-C is handled by the parent campaign's
handler (stop dispatching, drain in-flight points, flush, return partial),
never by tearing workers down mid-solve.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import pickle
import queue as queue_module
import signal
import threading
import time
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults
from ..deadlines import Deadline, DeadlineExceeded, deadline_scope
from ..engine import get_engine, use_engine
from .cache import SolverCache
from .store import ResultStore

logger = logging.getLogger(__name__)

#: A worker's ``current slot`` value when it is idle.
_IDLE = -1

#: Extra slack the parent-side watchdog grants past ``point_timeout_s``
#: before SIGKILLing a worker with a stale heartbeat: the cooperative
#: deadline inside the worker should win whenever the hang is pollable;
#: the watchdog is the backstop for truly stuck (non-cooperative) code.
_WATCHDOG_GRACE_S = 2.0

#: How many times a point whose worker *died* is requeued before it is
#: quarantined (a deterministically crashing point would otherwise chew
#: through the whole respawn budget).
_MAX_CRASHES_PER_POINT = 3

#: ``(owner attribute, array attribute)`` slots of an ``ExperimentSetup``
#: whose ndarray payloads travel via shared memory instead of the pickled
#: skeleton.  Missing or non-array values (e.g. a dict-backed power report,
#: a ``None`` warm-start vector) simply stay in the skeleton.
_SHARED_SLOTS: Tuple[Tuple[str, str], ...] = (
    ("power_map", "power_w"),
    ("thermal_map", "temperatures"),
    ("thermal_map", "grid_rises"),
    ("thermal_map", "full_field"),
    ("power", "_switching"),
    ("power", "_internal"),
    ("power", "_leakage"),
    ("power", "_total"),
)

#: One stripped array slot: (owner attr, array attr, segment name, shape,
#: dtype string).
_SlotSpec = Tuple[str, str, str, Tuple[int, ...], str]


def pack_setups(setups: Dict[str, object]):
    """Strip the baselines' arrays into shared memory and pickle the rest.

    Returns:
        ``(segments, skeleton, specs)`` — the owned
        :class:`~multiprocessing.shared_memory.SharedMemory` segments (the
        caller must close and unlink them when the run ends), the pickled
        array-free setups dict, and the per-workload slot specs workers
        use to re-attach.  The live setups are restored before returning.
    """
    segments: List[shared_memory.SharedMemory] = []
    specs: Dict[str, List[_SlotSpec]] = {}
    saved: List[Tuple[object, str, object]] = []
    try:
        for workload, setup in setups.items():
            entries: List[_SlotSpec] = []
            for owner_attr, array_attr in _SHARED_SLOTS:
                owner = getattr(setup, owner_attr)
                value = getattr(owner, array_attr, None)
                if not isinstance(value, np.ndarray) or value.size == 0:
                    continue
                array = np.ascontiguousarray(value)
                segment = shared_memory.SharedMemory(create=True, size=array.nbytes)
                segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                entries.append(
                    (owner_attr, array_attr, segment.name, array.shape, array.dtype.str)
                )
                saved.append((owner, array_attr, value))
                setattr(owner, array_attr, None)
            specs[workload] = entries
        skeleton = pickle.dumps(setups, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
        raise
    finally:
        for owner, array_attr, value in saved:
            setattr(owner, array_attr, value)
    return segments, skeleton, specs


def attach_setups(skeleton: bytes, specs: Dict[str, List[_SlotSpec]]):
    """Worker-side inverse of :func:`pack_setups`.

    Returns:
        ``(setups, segments)`` — the reconstructed setups dict, whose array
        slots are read-only views over the parent's shared segments, and
        the attached segments (closed by the worker when it exits).
    """
    setups = pickle.loads(skeleton)
    segments: List[shared_memory.SharedMemory] = []
    for workload, entries in specs.items():
        setup = setups[workload]
        for owner_attr, array_attr, name, shape, dtype in entries:
            # Attaching re-registers the name with the (fork- or spawn-
            # inherited, shared) resource tracker; that is idempotent, and
            # the parent's unlink() removes it exactly once — so no
            # explicit unregister here, which would double-remove.
            segment = shared_memory.SharedMemory(name=name)
            segments.append(segment)
            view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)
            view.flags.writeable = False
            setattr(getattr(setup, owner_attr), array_attr, view)
    return setups, segments


def _worker_main(
    skeleton, specs, config, task_queue, result_queue, current, heartbeats,
    worker_index,
) -> None:
    """One shard worker: attach baselines, evaluate tasks until sentinel.

    ``current[worker_index]`` mirrors the slot being evaluated (``_IDLE``
    between tasks) and ``heartbeats[worker_index]`` the monotonic instant
    the task started.  Both live in shared memory written directly — not
    through a queue's feeder thread — so the parent can recover a dead
    worker's in-flight point even after an abrupt ``os._exit``, and its
    watchdog can SIGKILL a worker that stops making progress.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    plan = config.get("fault_plan")
    if plan is not None:
        faults.activate(plan)
    try:
        setups, segments = attach_setups(skeleton, specs)
    except Exception:
        result_queue.put(("fatal", None, traceback.format_exc()))
        return
    # Deferred so the module (and its workers) never import the runner at
    # the top level — runner imports shard, not the other way round.
    from .runner import CampaignPoint, CampaignRecord
    from .experiment import evaluate_strategy

    store: Optional[ResultStore] = config["store"]
    policy = config["retry_policy"]
    timeout = config.get("point_timeout_s")
    cache = SolverCache(method=config["method"])
    try:
        with use_engine(config["engine"]):
            while True:
                task = task_queue.get()
                if task is None:
                    break
                slot, workload, strategy, overhead, key, attempt = task
                heartbeats[worker_index] = time.monotonic()
                current[worker_index] = slot
                try:
                    # Cooperative per-attempt deadline: a pollable hang
                    # raises DeadlineExceeded here; only a truly stuck
                    # worker needs the parent's SIGKILL watchdog.
                    scope = (
                        deadline_scope(Deadline.after(timeout))
                        if timeout is not None
                        else nullcontext()
                    )
                    with scope:
                        context = {
                            "workload": workload,
                            "strategy": strategy,
                            "overhead": overhead,
                            "attempt": attempt,
                        }
                        faults.inject("shard.worker", context)
                        faults.inject("point.evaluate", context)
                        start = time.perf_counter()
                        outcome = evaluate_strategy(
                            setups[workload],
                            strategy,
                            overhead,
                            analyze_timing=config["analyze_timing"],
                            cache=cache,
                        )
                    record = CampaignRecord(
                        point=CampaignPoint(
                            workload=workload, strategy=strategy, overhead=overhead
                        ),
                        outcome=outcome,
                        elapsed_s=time.perf_counter() - start,
                    )
                    if store is not None and store.root is not None and key is not None:
                        # Publish from the worker too: completed points are
                        # durable even if the parent is killed outright.
                        store.put(key, record)
                    result_queue.put(("ok", slot, record))
                except Exception as error:
                    # The parent owns retry/quarantine decisions; report
                    # the failure with its retryability classification
                    # (and whether it was a blown deadline, for counters).
                    result_queue.put(
                        (
                            "error",
                            slot,
                            (
                                traceback.format_exc(),
                                policy.classify(error),
                                isinstance(error, DeadlineExceeded),
                            ),
                        )
                    )
                finally:
                    current[worker_index] = _IDLE
    finally:
        for segment in segments:
            try:
                segment.close()
            except OSError:
                pass


@dataclass
class ShardRun:
    """What :func:`run_sharded` hands back to the campaign.

    Attributes:
        records: Aligned with the input points: a ``CampaignRecord``, a
            :class:`~repro.flow.runner.FailedPoint` for quarantined
            points, or ``None`` for slots skipped after a stop request.
        retries: Evaluation errors that were requeued under the policy.
        respawns: Replacement workers spawned for dead ones.
        timeouts: Attempts lost to a blown point deadline — cooperative
            (the worker raised ``DeadlineExceeded``) or enforced (the
            watchdog SIGKILLed a stale-heartbeat worker).
    """

    records: List = field(default_factory=list)
    retries: int = 0
    respawns: int = 0
    timeouts: int = 0


def run_sharded(
    campaign,
    points: Sequence,
    keys: Optional[Sequence[Optional[str]]] = None,
    max_workers: Optional[int] = None,
    stop_event: Optional[threading.Event] = None,
    max_respawns: Optional[int] = None,
) -> ShardRun:
    """Evaluate campaign points across worker processes.

    The parent dispatches point tasks over a bounded window (so a stop
    request takes effect within one window, not after the whole grid has
    been queued) and collects records as workers finish them; slots whose
    points were skipped after a stop request stay ``None``.

    A worker that raises gets its point retried under the campaign's
    :class:`~repro.faults.RetryPolicy`; a worker that *dies* gets its
    in-flight point requeued and — budget permitting — a replacement
    worker spawned.  Points that exhaust either budget are quarantined as
    :class:`~repro.flow.runner.FailedPoint` entries (or, with the
    campaign's ``fail_fast``, abort the run).

    Args:
        campaign: The owning :class:`~repro.flow.runner.Campaign` (supplies
            setups, solver method, timing flag, result store, retry policy
            and fail-fast flag).
        points: The grid points to evaluate (typically the not-yet-stored
            remainder of the grid).
        keys: Optional per-point result-store keys, aligned with
            ``points``; workers publish under these as they finish.
        max_workers: Worker process count (default: one per CPU, at most
            one per point).
        stop_event: Graceful-stop flag shared with the campaign's SIGINT
            handler.
        max_respawns: Replacement-worker budget (default: ``max_workers``).

    Returns:
        A :class:`ShardRun` with per-point results and fault counters.

    Raises:
        RuntimeError: With the campaign's ``fail_fast``, the first point
            failure; always when workers fail to start or every worker
            dies with the respawn budget exhausted and ``fail_fast`` set.
    """
    total = len(points)
    run = ShardRun(records=[None] * total)
    if total == 0:
        return run
    if stop_event is None:
        stop_event = threading.Event()
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    max_workers = max(1, min(max_workers, total))
    if max_respawns is None:
        max_respawns = max_workers
    fail_fast = bool(getattr(campaign, "fail_fast", False))
    policy = campaign.retry_policy

    context = mp.get_context()
    segments, skeleton, specs = pack_setups(campaign.setups)
    task_queue = context.Queue()
    result_queue = context.Queue()
    config = {
        "engine": get_engine(),
        "method": campaign.cache.method,
        "analyze_timing": campaign.analyze_timing,
        "store": campaign.result_store,
        "retry_policy": policy,
        "point_timeout_s": getattr(campaign, "point_timeout_s", None),
        # Each worker gets a copy of the active plan, so `times=` counters
        # are per-process; cross-process-deterministic plans match on the
        # task context (attempt number) instead.
        "fault_plan": faults.get_active(),
    }
    point_timeout_s = config["point_timeout_s"]
    # One shared slot per worker ever spawned (originals + respawns); a
    # worker writes its in-flight slot there directly, surviving os._exit.
    # The parallel heartbeat array holds the monotonic instant each task
    # started, which is what the watchdog judges staleness against
    # (CLOCK_MONOTONIC is system-wide, so parent and workers compare).
    current = context.Array("i", max_workers + max_respawns, lock=False)
    heartbeats = context.Array("d", max_workers + max_respawns, lock=False)
    for index in range(len(current)):
        current[index] = _IDLE
        heartbeats[index] = 0.0

    def spawn(index: int):
        worker = context.Process(
            target=_worker_main,
            args=(
                skeleton, specs, config, task_queue, result_queue,
                current, heartbeats, index,
            ),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        worker.start()
        return worker

    attempts: Dict[int, int] = {}
    crashes: Dict[int, int] = {}
    workers: Dict[int, mp.process.BaseProcess] = {}
    error: Optional[RuntimeError] = None

    def dispatch(slot: int) -> None:
        point = points[slot]
        task_queue.put(
            (
                slot,
                point.workload,
                point.strategy,
                point.overhead,
                keys[slot] if keys is not None else None,
                attempts.setdefault(slot, 0),
            )
        )

    def quarantine(slot: int, message: str, tried: int) -> None:
        from .runner import FailedPoint

        nonlocal error
        if fail_fast:
            if error is None:
                error = RuntimeError(
                    f"shard worker failed on point {points[slot]}:\n{message}"
                )
            return
        logger.warning(
            "quarantining point %s after %d attempt(s): %s",
            points[slot], tried, message.strip().splitlines()[-1] if message.strip() else message,
        )
        run.records[slot] = FailedPoint(
            point=points[slot], error=message, attempts=tried
        )

    def kill_stale_workers() -> None:
        """Watchdog: SIGKILL workers whose heartbeat outran the deadline.

        This is the enforcement path the dead-worker reaper cannot cover —
        a worker stuck in non-cooperative native code never raises and
        never dies on its own.  The kill turns it into an ordinary dead
        worker, so the existing requeue/respawn/quarantine machinery
        absorbs the point.
        """
        if point_timeout_s is None:
            return
        stale_after = point_timeout_s + _WATCHDOG_GRACE_S
        now = time.monotonic()
        for index, worker in list(workers.items()):
            slot = current[index]
            beat = heartbeats[index]
            if slot == _IDLE or beat <= 0.0 or not worker.is_alive():
                continue
            if now - beat > stale_after:
                run.timeouts += 1
                logger.warning(
                    "watchdog: %s stuck on point %s for %.1fs "
                    "(deadline %.1fs); sending SIGKILL",
                    worker.name, points[slot], now - beat, point_timeout_s,
                )
                worker.kill()
                worker.join(timeout=5.0)

    try:
        for index in range(max_workers):
            workers[index] = spawn(index)
        next_worker_index = max_workers
        respawns_left = max_respawns

        next_slot = 0
        in_flight = 0
        window = 2 * max_workers
        last_watchdog = time.monotonic()
        while True:
            # Run the watchdog even when results are flowing steadily (the
            # queue.Empty branch below would otherwise be starved by busy
            # healthy workers while one worker sits stuck).
            if (
                point_timeout_s is not None
                and time.monotonic() - last_watchdog > 1.0
            ):
                kill_stale_workers()
                last_watchdog = time.monotonic()
            while (
                next_slot < total
                and in_flight < window
                and error is None
                and not stop_event.is_set()
            ):
                dispatch(next_slot)
                next_slot += 1
                in_flight += 1
            if in_flight == 0:
                break
            try:
                kind, slot, payload = result_queue.get(timeout=1.0)
            except queue_module.Empty:
                # Watchdog first: a stuck worker becomes a dead worker,
                # then the reaper below recovers its point.
                kill_stale_workers()
                # Reap dead workers: requeue their in-flight points and
                # spawn replacements while the budget lasts.
                dead = [
                    index
                    for index, worker in workers.items()
                    if not worker.is_alive()
                ]
                for index in dead:
                    worker = workers.pop(index)
                    lost = current[index]
                    logger.warning(
                        "shard worker %s died (exit code %s)",
                        worker.name, worker.exitcode,
                    )
                    if lost != _IDLE and run.records[lost] is None:
                        crashes[lost] = crashes.get(lost, 0) + 1
                        attempts[lost] = attempts.get(lost, 0) + 1
                        if crashes[lost] < _MAX_CRASHES_PER_POINT:
                            logger.warning(
                                "requeueing point %s lost to the dead worker",
                                points[lost],
                            )
                            dispatch(lost)
                        else:
                            quarantine(
                                lost,
                                f"shard worker died evaluating the point "
                                f"{crashes[lost]} times",
                                attempts[lost],
                            )
                            in_flight -= 1
                    if respawns_left > 0 and error is None and not stop_event.is_set():
                        respawns_left -= 1
                        run.respawns += 1
                        workers[next_worker_index] = spawn(next_worker_index)
                        next_worker_index += 1
                if not workers:
                    # No live workers and nothing to replace them with:
                    # everything still outstanding is undeliverable.
                    message = "all shard workers died and the respawn budget is exhausted"
                    if error is None and fail_fast:
                        error = RuntimeError(
                            f"{message} with {in_flight} points in flight"
                        )
                    if error is not None:
                        raise error
                    for slot in range(next_slot):
                        if run.records[slot] is None:
                            quarantine(slot, message, attempts.get(slot, 0) + 1)
                    stop_event.set()  # undispatched slots count as skipped
                    break
                continue
            if kind == "ok":
                run.records[slot] = payload
                in_flight -= 1
            elif kind == "error":
                message, retryable, timed_out = payload
                if timed_out:
                    run.timeouts += 1
                tried = attempts.get(slot, 0) + 1
                if (
                    retryable
                    and tried < policy.max_attempts
                    and error is None
                    and not stop_event.is_set()
                ):
                    attempts[slot] = tried
                    run.retries += 1
                    logger.warning(
                        "point %s failed on attempt %d/%d; requeueing",
                        points[slot], tried, policy.max_attempts,
                    )
                    dispatch(slot)
                else:
                    quarantine(slot, message, tried)
                    in_flight -= 1
            else:  # fatal: a worker died before taking any task
                if error is None:
                    error = RuntimeError(f"shard worker failed to start:\n{payload}")
        if error is not None:
            raise error
    finally:
        for _worker in workers.values():
            try:
                task_queue.put(None)
            except (OSError, ValueError):
                break
        for worker in workers.values():
            worker.join(timeout=10.0)
        for worker in workers.values():
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5.0)
        task_queue.close()
        result_queue.close()
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:
                pass
    return run


__all__ = ["run_sharded", "ShardRun", "pack_setups", "attach_setups"]
