"""Tests for global placement, legalization, fillers and the top-level placer."""

import numpy as np
import pytest

from repro.netlist import Netlist
from repro.placement import (
    Floorplan,
    Placement,
    QuadraticPlacer,
    Rect,
    assign_port_positions,
    cell_density_map,
    density_in_rect,
    filler_area,
    improve_placement,
    insert_fillers,
    pack_into_region,
    peak_density,
    remove_fillers,
    replace_at_utilization,
    slicing_partition,
    tetris_legalize,
)


class TestPortAssignment:
    def test_ports_on_core_boundary(self, small_circuit):
        floorplan = Floorplan.from_netlist(small_circuit, utilization=0.85)
        assign_port_positions(small_circuit, floorplan)
        for port in small_circuit.ports.values():
            assert port.x is not None and port.y is not None
            on_x_edge = port.x in (pytest.approx(0.0), pytest.approx(floorplan.core_width))
            on_y_edge = port.y in (pytest.approx(0.0), pytest.approx(floorplan.core_height))
            assert on_x_edge or on_y_edge


class TestQuadraticPlacer:
    def test_connected_cells_attract(self, library):
        netlist = Netlist("chain", library)
        netlist.add_port("pi", "input")
        netlist.add_port("po", "output")
        prev = "pi"
        netlist.connect_port("pi", "pi")
        for i in range(5):
            inv = netlist.add_cell(f"inv{i}", "INV_X1", unit="u")
            netlist.connect(prev, inv.pin("A"))
            prev = f"n{i}"
            netlist.connect(prev, inv.pin("Y"))
        netlist.connect_port(prev, "po")

        floorplan = Floorplan(core_width=40.0, core_height=36.0)
        netlist.ports["pi"].x, netlist.ports["pi"].y = 0.0, 18.0
        netlist.ports["po"].x, netlist.ports["po"].y = 40.0, 18.0
        placer = QuadraticPlacer(netlist, floorplan)
        result = placer.run()
        xs = [result.positions[f"inv{i}"][0] for i in range(5)]
        # The chain should be ordered monotonically between the two ports.
        assert xs == sorted(xs)
        assert 0.0 <= xs[0] and xs[-1] <= 40.0

    def test_positions_within_core(self, small_circuit):
        floorplan = Floorplan.from_netlist(small_circuit, utilization=0.85)
        assign_port_positions(small_circuit, floorplan)
        regions = slicing_partition(
            floorplan.core_rect,
            {u: sum(c.area for c in small_circuit.cells_in_unit(u))
             for u in small_circuit.units()},
        )
        result = QuadraticPlacer(small_circuit, floorplan, regions=regions).run()
        assert len(result.positions) == len(small_circuit.logic_cells())
        for x, y in result.positions.values():
            assert 0.0 <= x <= floorplan.core_width
            assert 0.0 <= y <= floorplan.core_height


class TestLegalization:
    def test_pack_into_region_is_legal(self, library):
        netlist = Netlist("pack", library)
        cells = [netlist.add_cell(f"c{i}", "FA_X1", unit="u") for i in range(30)]
        floorplan = Floorplan(core_width=60.0, core_height=10 * 1.8)
        placement = Placement(netlist, floorplan)
        region = Rect(10.0, 1.8, 50.0, 7.2)
        pack_into_region(placement, cells, region)
        assert placement.check_legal() == []
        for cell in cells:
            cx, cy = cell.center
            assert region.contains(cx, cy)

    def test_pack_into_region_rejects_overflow(self, library):
        netlist = Netlist("overflow", library)
        cells = [netlist.add_cell(f"c{i}", "FA_X1") for i in range(100)]
        floorplan = Floorplan(core_width=20.0, core_height=3.6)
        placement = Placement(netlist, floorplan)
        with pytest.raises(ValueError, match="do not fit"):
            pack_into_region(placement, cells, Rect(0, 0, 10.0, 1.8))

    def test_tetris_legalize_no_overlaps(self, library):
        netlist = Netlist("tetris", library)
        cells = [netlist.add_cell(f"c{i}", "NAND2_X1") for i in range(40)]
        floorplan = Floorplan(core_width=30.0, core_height=6 * 1.8)
        placement = Placement(netlist, floorplan)
        rng = np.random.default_rng(3)
        targets = {
            c.name: (float(rng.uniform(0, 30)), float(rng.uniform(0, 10.8))) for c in cells
        }
        tetris_legalize(placement, cells, targets=targets)
        assert placement.check_legal() == []


class TestFillers:
    def test_insert_fillers_fills_gaps(self, library):
        netlist = Netlist("fill", library)
        floorplan = Floorplan(core_width=10.0, core_height=3.6)
        placement = Placement(netlist, floorplan)
        a = netlist.add_cell("a", "NAND2_X1")
        placement.assign(a, 0, 2.0)
        inserted = insert_fillers(placement)
        assert inserted
        assert placement.check_legal() == []
        # Whitespace is now fully covered (rows are full up to site rounding).
        covered = a.area + filler_area(placement)
        assert covered == pytest.approx(floorplan.core_area, rel=0.01)

    def test_remove_fillers_round_trip(self, library):
        netlist = Netlist("fill2", library)
        floorplan = Floorplan(core_width=8.0, core_height=1.8)
        placement = Placement(netlist, floorplan)
        insert_fillers(placement)
        count = len(netlist.filler_cells())
        assert count > 0
        removed = remove_fillers(placement)
        assert removed == count
        assert netlist.filler_cells() == []


class TestPlaceDesign:
    def test_placement_is_legal(self, small_placement):
        assert small_placement.check_legal() == []

    def test_every_logic_cell_placed(self, small_placement):
        for cell in small_placement.netlist.logic_cells():
            assert cell.is_placed

    def test_utilization_close_to_target(self, small_placement):
        assert 0.75 <= small_placement.utilization() <= 0.85 + 1e-9

    def test_regions_cover_all_units(self, small_placement):
        assert set(small_placement.regions) == set(small_placement.netlist.units())

    def test_cells_inside_their_region(self, small_placement):
        # The region-constrained legalizer must keep each unit in its region.
        for unit, region in small_placement.regions.items():
            for cell in small_placement.netlist.cells_in_unit(unit):
                cx, cy = cell.center
                assert region.expanded(1.0).contains(cx, cy), (unit, cell.name)

    def test_replace_at_lower_utilization_grows_core(self, small_placement):
        relaxed = replace_at_utilization(small_placement, 0.65, use_quadratic=False,
                                         detailed=False)
        assert relaxed.floorplan.core_area > small_placement.floorplan.core_area
        assert relaxed.check_legal() == []

    def test_density_roughly_uniform(self, small_placement):
        density = cell_density_map(small_placement, nx=8, ny=8, over_die=False)
        # Interior bins should all hold cells (no big holes at 0.85 target).
        assert (density > 0).all()
        peak, _location = peak_density(density)
        assert peak <= 1.2

    def test_density_in_rect(self, small_placement):
        core = small_placement.floorplan.core_rect
        overall = density_in_rect(small_placement, core)
        assert overall == pytest.approx(small_placement.utilization(), rel=0.05)

    def test_detailed_improvement_does_not_break_legality(self, small_placement):
        clone = small_placement.copy()
        swaps = improve_placement(clone, max_passes=1)
        assert swaps >= 0
        assert clone.check_legal() == []
        assert clone.total_hpwl() <= small_placement.total_hpwl() + 1e-6
